// Printer farm — the paper's CLE illustration (Section 3.3).
//
// "Consider a printer management program consisting of clients, print
// servers and a job controller.  In the unlikely event that users did not
// care which printer they used, clients could fruitfully use CLE to invoke
// a print server component while the job controller moved the print server
// components around the network in response to printer availability."
//
// Two clients submit jobs through CLE attributes; a controller reacts to
// printers jamming and recovering by migrating the spooler component.
// Throughout, the clients refer to the SAME live component (its queue
// length carries across moves) — the property that distinguishes CLE from
// Jini's destroy-and-recreate (the paper's explicit contrast).
//
// Build & run:  ./build/examples/printer_farm
#include <iostream>

#include "core/mage.hpp"

namespace {

using namespace mage;

class PrintSpooler : public rts::MageObject {
 public:
  std::string class_name() const override { return "PrintSpooler"; }
  void serialize(serial::Writer& w) const override {
    w.write_i64(jobs_printed_);
    w.write_u32(static_cast<std::uint32_t>(queue_.size()));
    for (const auto& job : queue_) w.write_string(job);
  }
  void deserialize(serial::Reader& r) override {
    jobs_printed_ = r.read_i64();
    queue_.resize(r.read_u32());
    for (auto& job : queue_) job = r.read_string();
  }

  std::int64_t submit(std::string job) {
    queue_.push_back(std::move(job));
    return static_cast<std::int64_t>(queue_.size());
  }

  std::int64_t drain() {  // the local printer prints everything queued
    jobs_printed_ += static_cast<std::int64_t>(queue_.size());
    queue_.clear();
    return jobs_printed_;
  }

  std::int64_t printed() const { return jobs_printed_; }

 private:
  std::int64_t jobs_printed_ = 0;
  std::vector<std::string> queue_;
};

}  // namespace

int main() {
  rts::MageSystem system;
  const auto office = system.add_node("office");      // clients live here
  const auto printer1 = system.add_node("printer1");
  const auto printer2 = system.add_node("printer2");
  const auto printer3 = system.add_node("printer3");

  rts::ClassBuilder<PrintSpooler>(system.world(), "PrintSpooler")
      .method("submit", &PrintSpooler::submit, /*cost_us=*/200)
      .method("drain", &PrintSpooler::drain, /*cost_us=*/5000)
      .method("printed", &PrintSpooler::printed);

  // The spooler is a shared (public) component: the controller and all
  // clients coordinate on it by name.
  system.client(printer1).create_component("spooler", "PrintSpooler",
                                           /*is_public=*/true);

  // Two office clients; neither knows nor cares where the spooler runs.
  core::Cle alice(system.client(office), "spooler");
  core::Cle bob(system.client(office), "spooler");

  // The job controller reacts to availability and migrates the component.
  auto& controller = system.client(printer3);

  struct Step {
    const char* event;
    common::NodeId move_to;  // kNoNode = no migration this step
    const char* job;
  };
  const Step script[] = {
      {"printer1 online", common::kNoNode, "alice: quarterly-report.ps"},
      {"printer1 jammed -> controller moves spooler to printer2", printer2,
       "bob: seismic-plot.ps"},
      {"printer2 busy   -> controller moves spooler to printer3", printer3,
       "alice: core-samples.ps"},
      {"printer1 fixed  -> controller moves spooler back", printer1,
       "bob: drill-permits.ps"},
  };

  std::cout << "printer farm with a migrating spooler; clients use CLE\n\n";
  int step_index = 0;
  for (const auto& step : script) {
    if (!common::is_no_node(step.move_to)) {
      controller.move("spooler", step.move_to);
    }
    core::Cle& client = (step_index % 2 == 0) ? alice : bob;
    auto spooler = client.bind();  // CLE: find it wherever it is
    const auto queued =
        spooler.invoke<std::int64_t>("submit", std::string(step.job));
    const auto printed = spooler.invoke<std::int64_t>("drain");
    std::cout << "  " << step.event << "\n    spooler found at "
              << system.network().label(spooler.location()) << "; queued "
              << queued << " job, total printed so far " << printed << "\n";
    ++step_index;
  }

  // The monotonically increasing total proves every client invocation hit
  // the same live component across all four namespaces.
  core::Cle check(system.client(office), "spooler");
  auto spooler = check.bind();
  std::cout << "\nfinal: spooler at "
            << system.network().label(spooler.location()) << " with "
            << spooler.invoke<std::int64_t>("printed")
            << " jobs printed (same object across "
            << system.stats().counter("rts.migrations") << " migrations — "
            << "CLE tracked it; Jini would have created fresh instances)\n";
  std::cout << "simulated time: " << common::to_ms(system.simulation().now())
            << " ms\n";
  return 0;
}
