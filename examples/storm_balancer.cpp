// Many-client load balancer on the MULTI-CORE storm mesh — the rts-layer
// workload for the sharded simulation, now written entirely against the
// rts::AsyncClient facade (docs/API.md): no raw protocol structs, no
// hand-rolled Moved-hint chasing, no nested CallResult callbacks.
//
// Topology: N namespaces on a sim::ShardedSim (one event-queue shard per
// node, worker threads, conservative lookahead), each running a full
// rts::MageServer.  K "Session" components all start crammed onto two
// nodes.  Every node runs a generator that keeps a window of asynchronous
// invokes in flight against randomly chosen sessions — each invoke is one
// `client.invoke<int64>(name, "work").then(issue next)` chain; the facade
// chases Moved hints, honors epoch fences, and re-locates on its own.  A
// rebalancer on node 0 polls every node's load with `when_all` over
// hedged `load_of` probes and `move()`s one session from the hottest node
// to the coolest — the paper's Section 3.1 policy, running *inside* the
// simulated federation.
//
// The hedged/retriable channel stats the probe client exports
// (rmi.hedged_calls, rmi.hedge_wins, rmi.cancelled_calls, rmi.retries,
// rmi.deadline_exceeded) are printed with the run summary.
//
// The run executes three times — 1, 2, and 8 worker threads — and asserts
// all three produce identical per-node service counts, final placement,
// and migration counts: the sharded determinism contract, observed from
// the application layer through the async facade.
//
// Build & run:  ./build/example_storm_balancer
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/channel.hpp"
#include "rmi/transport.hpp"
#include "rts/async_client.hpp"
#include "rts/directory.hpp"
#include "rts/future.hpp"
#include "rts/server.hpp"
#include "sim/sharded.hpp"

namespace {

using namespace mage;

constexpr int kNodes = 8;
constexpr int kSessions = 24;
constexpr int kInvokesPerNode = 250;
constexpr int kGeneratorWindow = 4;
constexpr common::SimDuration kWorkCostUs = 200;
constexpr common::SimDuration kLoadTickUs = 5'000;
constexpr common::SimDuration kRebalanceTickUs = 10'000;

class Session : public rts::MageObject {
 public:
  std::string class_name() const override { return "Session"; }
  void serialize(serial::Writer& w) const override { w.write_i64(served_); }
  void deserialize(serial::Reader& r) override { served_ = r.read_i64(); }

  std::int64_t work() { return ++served_; }

 private:
  std::int64_t served_ = 0;
};

std::string session_name(int s) { return "sess" + std::to_string(s); }

// Fast LAN with a 220us cross-node floor (the conservative lookahead) and
// cheap compiled marshalling — modern_lan, but with enough propagation to
// keep the conservative windows well-fed.
net::CostModel balancer_model() {
  net::CostModel m = net::CostModel::modern_lan();
  m.propagation_us = 200;
  m.per_message_cpu_us = 20;
  return m;
}

// The probe client's policy: load probes are idempotent, so they may hedge
// (duplicate) and retry freely — the cookbook's "impatient read" recipe.
rmi::CallPolicy probe_policy() {
  rmi::CallPolicy policy;
  policy.attempt_timeout_us = 3'000;
  policy.attempt_transmissions = 8;
  policy.max_retries = 2;
  policy.backoff_base_us = 2'000;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter = 0.25;  // seeded from node 0's shard RNG
  policy.hedge_after_us = 550;
  return policy;
}

struct RunResult {
  std::vector<std::int64_t> served_per_node;  // generator completions
  std::vector<std::size_t> final_placement;   // sessions hosted per node
  std::int64_t migrations = 0;
  std::int64_t redirects = 0;
  std::int64_t relocates = 0;
  std::int64_t invocations = 0;
  std::int64_t hedged = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t cancelled = 0;
  std::int64_t retries = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t windows = 0;
  double wall_sec = 0;
};

RunResult run(int threads) {
  const net::CostModel model = balancer_model();
  sim::ShardedSim ssim(kNodes, /*seed=*/0xB0B5,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  rts::ClassWorld world;
  rts::ClassBuilder<Session>(world, "Session").method("work", &Session::work,
                                                      kWorkCostUs);
  rts::Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(net.add_node("n" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::MageServer>> servers;
  std::vector<std::unique_ptr<rts::AsyncClient>> clients;
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<rts::MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("Session");
    // Default policy: no channel retries/hedges — mage.invoke is not
    // idempotent; only transport retransmission is at-most-once safe.
    clients.push_back(std::make_unique<rts::AsyncClient>(*servers[i]));
  }
  // Node 0 additionally runs the balancer: a hedged+retriable probe client
  // for the idempotent load polls, and a mover for the convergent moves.
  rts::AsyncClient prober(*servers[0], probe_policy());
  rts::AsyncClient& mover = *clients[0];

  // Deliberately imbalanced deployment: every session starts on node 0 or
  // 1, so the load policy has real work to do.
  for (int s = 0; s < kSessions; ++s) {
    const int home = s % 2;
    rts::ComponentInfo info;
    info.name = session_name(s);
    info.class_name = "Session";
    info.home = ids[home];
    info.is_public = true;
    directory.announce(info);
    servers[home]->registry().bind(info.name, world.instantiate("Session"));
  }

  // --- generators: one per node, window of async invoke chains -------------
  struct Generator {
    std::int64_t issued = 0;
    std::int64_t completed = 0;
  };
  std::vector<Generator> gens(kNodes);
  std::int64_t failures = 0;

  // Issue the next invoke for generator g: one future chain per in-flight
  // request; completions re-issue on the generator node's own shard, with
  // the next session drawn from that shard's RNG.
  std::function<void(int)> issue = [&](int g) {
    Generator& gen = gens[g];
    if (gen.issued >= kInvokesPerNode) return;
    ++gen.issued;
    const int s =
        static_cast<int>(net.node_sim(ids[g]).rng().next_below(kSessions));
    clients[g]
        ->invoke<std::int64_t>(session_name(s), "work")
        .then([&, g](std::int64_t&) {
          ++gens[g].completed;
          issue(g);
        })
        .on_error([&](const std::string&) { ++failures; });
  };

  // --- per-node load metric: invocations served per tick -------------------
  // Each node samples its own shard-local "rts.invocations" counter and
  // publishes the delta as its load — all on the owning shard, per the
  // set_load threading contract.  The recurring tick functions live in a
  // pre-sized vector (stable addresses, no shared_ptr self-capture cycle);
  // actions still queued when the run stops only ever get destroyed, never
  // invoked, so the raw pointers cannot dangle into a running callback.
  std::vector<std::function<void(std::int64_t)>> load_ticks(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    auto& sim = net.node_sim(ids[i]);
    load_ticks[i] = [&net, &sim, id = ids[i],
                     self = &load_ticks[i]](std::int64_t last) {
      const std::int64_t now = sim.stats().counter("rts.invocations");
      net.set_load(id, static_cast<double>(now - last));
      sim.schedule_after(kLoadTickUs, [self, now] { (*self)(now); },
                         sim::Wake::No);
    };
    sim.schedule_at(0, [self = &load_ticks[i]] { (*self)(0); }, sim::Wake::No);
  }

  // --- rebalancer on node 0: poll loads, migrate hot -> cool ---------------
  std::int64_t moves_requested = 0;
  std::function<void()> rebalance = [&] {
    std::vector<rts::MageFuture<double>> probes;
    probes.reserve(kNodes);
    for (int i = 0; i < kNodes; ++i) probes.push_back(prober.load_of(ids[i]));
    rts::when_all(probes)
        .then([&](std::vector<double>& loads) {
          int hot = 0, cool = 0;
          for (int j = 1; j < kNodes; ++j) {
            if (loads[j] > loads[hot]) hot = j;
            if (loads[j] < loads[cool]) cool = j;
          }
          if (hot != cool && loads[hot] > 0) {
            // Migrate one session node 0 believes lives on `hot`.
            for (int s = 0; s < kSessions; ++s) {
              if (mover.believed_host(session_name(s)) != ids[hot]) continue;
              ++moves_requested;
              // Best-effort: a move that raced another is just skipped.
              mover.move(session_name(s), ids[cool])
                  .on_error([](const std::string&) {});
              break;
            }
          }
        })
        .on_error([](const std::string&) {
          // A probe round that lost a node is skipped; the next tick polls
          // again.
        });
    net.node_sim(ids[0]).schedule_after(kRebalanceTickUs,
                                        [&rebalance] { rebalance(); },
                                        sim::Wake::No);
  };
  net.node_sim(ids[0]).schedule_at(0, [&rebalance] { rebalance(); },
                                   sim::Wake::No);

  // Prime every generator's window (driver-side, before workers start).
  for (int g = 0; g < kNodes; ++g) {
    for (int w = 0; w < kGeneratorWindow; ++w) issue(g);
  }

  const std::int64_t total =
      static_cast<std::int64_t>(kNodes) * kInvokesPerNode;
  const auto start = std::chrono::steady_clock::now();
  const bool done = ssim.run_until(
      [&] {
        std::int64_t sum = failures;
        for (const auto& g : gens) sum += g.completed;
        return sum == total;
      },
      threads);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!done) {
    std::cerr << "storm_balancer drained before all invokes completed\n";
    std::exit(1);
  }
  if (failures != 0) {
    std::cerr << "storm_balancer: " << failures << " invokes failed\n";
    std::exit(1);
  }

  RunResult result;
  result.wall_sec = wall;
  result.windows = ssim.windows();
  result.migrations = ssim.counter("rts.migrations");
  result.invocations = ssim.counter("rts.invocations");
  result.redirects = ssim.counter("rts.async_redirects");
  result.relocates = ssim.counter("rts.async_relocates");
  result.hedged = ssim.counter("rmi.hedged_calls");
  result.hedge_wins = ssim.counter("rmi.hedge_wins");
  result.cancelled = ssim.counter("rmi.cancelled_calls");
  result.retries = ssim.counter("rmi.retries");
  result.deadline_exceeded = ssim.counter("rmi.deadline_exceeded");
  for (const auto& g : gens) result.served_per_node.push_back(g.completed);
  for (int i = 0; i < kNodes; ++i) {
    result.final_placement.push_back(
        servers[i]->registry().local_names().size());
  }
  (void)moves_requested;
  return result;
}

}  // namespace

int main() {
  std::cout << "storm_balancer: " << kNodes << " namespaces, " << kSessions
            << " sessions (all starting on 2 nodes), " << kInvokesPerNode
            << " invokes/node through the AsyncClient facade\n\n";

  const int worker_counts[] = {1, 2, 8};
  std::vector<RunResult> results;
  for (int threads : worker_counts) {
    results.push_back(run(threads));
    const RunResult& r = results.back();
    std::cout << threads << " worker" << (threads == 1 ? ":  " : "s: ")
              << r.invocations << " invocations, " << r.migrations
              << " migrations, " << r.redirects << " redirects chased, "
              << r.relocates << " relocates, " << r.windows << " windows, "
              << r.wall_sec << " s\n";
  }
  const RunResult& base = results.front();
  const RunResult& last = results.back();

  std::cout << "\nchannel stats (8-worker run): " << last.hedged
            << " hedged calls (" << last.hedge_wins << " hedge wins), "
            << last.cancelled << " losers cancelled, " << last.retries
            << " channel retries, " << last.deadline_exceeded
            << " deadline expiries\n";
  std::cout << "final placement (sessions per node): ";
  for (auto c : last.final_placement) std::cout << c << " ";
  std::cout << "\nserved per node: ";
  for (auto c : last.served_per_node) std::cout << c << " ";
  std::cout << "\n\n";

  for (std::size_t i = 1; i < results.size(); ++i) {
    const RunResult& r = results[i];
    if (r.served_per_node != base.served_per_node ||
        r.final_placement != base.final_placement ||
        r.migrations != base.migrations || r.redirects != base.redirects ||
        r.invocations != base.invocations) {
      std::cerr << "FAIL: " << worker_counts[i] << "-worker run diverged "
                << "from the 1-worker run — sharded determinism contract "
                << "broken at the rts layer\n";
      return 1;
    }
  }
  if (last.migrations == 0) {
    std::cerr << "FAIL: load policy never migrated a session\n";
    return 1;
  }
  // The policy must actually have spread the cluster: the two seed nodes
  // cannot still hold everything.
  if (last.final_placement[0] + last.final_placement[1] ==
      static_cast<std::size_t>(kSessions)) {
    std::cerr << "FAIL: all sessions still on the two seed nodes\n";
    return 1;
  }
  std::cout << "OK: identical per-node service counts and placement at 1/2/8 "
            << "workers; " << last.migrations << " migrations under load\n";
  return 0;
}
