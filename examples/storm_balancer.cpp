// Many-client load balancer on the MULTI-CORE storm mesh — the rts-layer
// workload for the sharded simulation (ROADMAP: "a many-client
// load-balancer scenario driving the storm mesh through the rts layer
// (invoke + migration under load), not just raw transport echoes").
//
// Topology: N namespaces on a sim::ShardedSim (one event-queue shard per
// node, worker threads, conservative lookahead), each running a full
// rts::MageServer.  K "Session" components all start crammed onto two
// nodes.  Every node runs a generator that keeps a window of asynchronous
// `mage.invoke` calls in flight against randomly chosen sessions, chasing
// Moved hints along forwarding chains exactly like a MAGE client stub.  A
// rebalancer on node 0 periodically polls every node's load over
// `mage.get_load` and issues `mage.move` to migrate one session from the
// hottest node to the coolest — the paper's Section 3.1 policy, now
// running *inside* the simulated federation (all protocol, no driver
// shortcuts), while invocations keep hammering the mesh.
//
// What this exercises that bench_storm cannot: full rts protocol stacks
// (invoke dispatch, weak migration with in-transit redirection, forwarding
// chains, class shipping, engine warmup) running concurrently on separate
// shards, with object migrations crossing shard boundaries mid-storm.
//
// The run executes twice — 1 worker thread, then several — and asserts
// both produce identical per-node service counts and final object
// placement: the sharded determinism contract, observed from the
// application layer.
//
// Build & run:  ./build/example_storm_balancer
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "rts/directory.hpp"
#include "rts/protocol.hpp"
#include "rts/server.hpp"
#include "serial/writer.hpp"
#include "sim/sharded.hpp"

namespace {

using namespace mage;
namespace proto = mage::rts::proto;

constexpr int kNodes = 8;
constexpr int kSessions = 24;
constexpr int kInvokesPerNode = 250;
constexpr int kGeneratorWindow = 4;
constexpr common::SimDuration kWorkCostUs = 200;
constexpr common::SimDuration kLoadTickUs = 5'000;
constexpr common::SimDuration kRebalanceTickUs = 10'000;

class Session : public rts::MageObject {
 public:
  std::string class_name() const override { return "Session"; }
  void serialize(serial::Writer& w) const override { w.write_i64(served_); }
  void deserialize(serial::Reader& r) override { served_ = r.read_i64(); }

  std::int64_t work() { return ++served_; }

 private:
  std::int64_t served_ = 0;
};

std::string session_name(int s) { return "sess" + std::to_string(s); }

// Fast LAN with a 220us cross-node floor (the conservative lookahead) and
// cheap compiled marshalling — modern_lan, but with enough propagation to
// keep the conservative windows well-fed.
net::CostModel balancer_model() {
  net::CostModel m = net::CostModel::modern_lan();
  m.propagation_us = 200;
  m.per_message_cpu_us = 20;
  return m;
}

struct RunResult {
  std::vector<std::int64_t> served_per_node;     // generator completions
  std::vector<std::size_t> final_placement;      // sessions hosted per node
  std::int64_t migrations = 0;
  std::int64_t redirects = 0;
  std::int64_t invocations = 0;
  std::int64_t windows = 0;
  double wall_sec = 0;
};

RunResult run(int threads) {
  const net::CostModel model = balancer_model();
  sim::ShardedSim ssim(kNodes, /*seed=*/0xB0B5,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  rts::ClassWorld world;
  rts::ClassBuilder<Session>(world, "Session").method("work", &Session::work,
                                                      kWorkCostUs);
  rts::Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) ids.push_back(net.add_node("n" + std::to_string(i)));
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::MageServer>> servers;
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<rts::MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("Session");
  }

  // Deliberately imbalanced deployment: every session starts on node 0 or
  // 1, so the load policy has real work to do.
  for (int s = 0; s < kSessions; ++s) {
    const int home = s % 2;
    rts::ComponentInfo info;
    info.name = session_name(s);
    info.class_name = "Session";
    info.home = ids[home];
    info.is_public = true;
    directory.announce(info);
    servers[home]->registry().bind(info.name, world.instantiate("Session"));
  }

  // --- generators: one per node, window of async invokes ------------------
  struct Generator {
    int node = 0;
    std::int64_t issued = 0;     // sessions drawn so far
    std::int64_t completed = 0;  // Ok replies received
    std::int64_t redirects = 0;  // Moved hints chased
    std::vector<common::NodeId> believed;  // session -> last known host
  };
  std::vector<Generator> gens(kNodes);

  // One invoke, chasing Moved hints until it lands.  Runs entirely on the
  // generator node's shard (calls and callbacks stay on the caller).
  std::function<void(int, int)> invoke_session = [&](int g, int s) {
    proto::InvokeRequest request;
    request.name = session_name(s);
    request.method = "work";
    transports[g]->call(
        gens[g].believed[s], proto::verbs::kInvoke, request.encode(),
        [&, g, s](rmi::CallResult result) {
          Generator& gen = gens[g];
          if (!result.ok) {
            throw common::MageError("invoke transport failure: " +
                                    result.error);
          }
          auto reply = proto::InvokeReply::decode(result.body);
          if (reply.status == proto::Status::Moved &&
              reply.hint != common::kNoNode) {
            ++gen.redirects;
            gen.believed[s] = reply.hint;  // collapse the chain client-side
            invoke_session(g, s);
            return;
          }
          if (reply.status != proto::Status::Ok) {
            // Chain lost (mid-transfer race): restart at the origin server.
            ++gen.redirects;
            gen.believed[s] = directory.info(session_name(s)).home;
            invoke_session(g, s);
            return;
          }
          ++gen.completed;
          // Next client request, freshly drawn from this shard's RNG.
          if (gen.issued < kInvokesPerNode) {
            const int next =
                static_cast<int>(net.node_sim(ids[g]).rng().next_below(kSessions));
            ++gen.issued;
            invoke_session(g, next);
          }
        });
  };

  for (int g = 0; g < kNodes; ++g) {
    gens[g].node = g;
    gens[g].believed.resize(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      gens[g].believed[s] = directory.info(session_name(s)).home;
    }
  }

  // --- per-node load metric: invocations served per tick -------------------
  // Each node samples its own shard-local "rts.invocations" counter and
  // publishes the delta as its load — all on the owning shard, per the
  // set_load threading contract.  The recurring tick functions live in a
  // pre-sized vector (stable addresses, no shared_ptr self-capture cycle);
  // actions still queued when the run stops only ever get destroyed, never
  // invoked, so the raw pointers cannot dangle into a running callback.
  std::vector<std::function<void(std::int64_t)>> load_ticks(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    auto& sim = net.node_sim(ids[i]);
    load_ticks[i] = [&net, &sim, id = ids[i],
                     self = &load_ticks[i]](std::int64_t last) {
      const std::int64_t now = sim.stats().counter("rts.invocations");
      net.set_load(id, static_cast<double>(now - last));
      sim.schedule_after(kLoadTickUs, [self, now] { (*self)(now); },
                         sim::Wake::No);
    };
    sim.schedule_at(0, [self = &load_ticks[i]] { (*self)(0); }, sim::Wake::No);
  }

  // --- rebalancer on node 0: poll loads, migrate hot -> cool ---------------
  std::int64_t moves_requested = 0;
  std::vector<double> poll_results(kNodes, 0.0);
  int poll_pending = 0;
  std::function<void()> rebalance = [&] {
    poll_pending = kNodes;
    for (int i = 0; i < kNodes; ++i) {
      transports[0]->call(
          ids[i], proto::verbs::kGetLoad, {}, [&, i](rmi::CallResult r) {
            if (r.ok) {
              poll_results[i] = proto::LoadReply::decode(r.body).load;
            }
            if (--poll_pending > 0) return;
            // All loads in: pick hottest and coolest.
            int hot = 0, cool = 0;
            for (int j = 1; j < kNodes; ++j) {
              if (poll_results[j] > poll_results[hot]) hot = j;
              if (poll_results[j] < poll_results[cool]) cool = j;
            }
            if (hot != cool && poll_results[hot] > 0) {
              // Migrate one session node 0 believes lives on `hot`.
              for (int s = 0; s < kSessions; ++s) {
                if (gens[0].believed[s] != ids[hot]) continue;
                proto::MoveRequest move_req;
                move_req.name = session_name(s);
                move_req.to = ids[cool];
                ++moves_requested;
                transports[0]->call(ids[hot], proto::verbs::kMove,
                                    move_req.encode(), [](rmi::CallResult) {
                                      // Best-effort: a failed move (raced
                                      // with another) is just skipped.
                                    });
                break;
              }
            }
            net.node_sim(ids[0]).schedule_after(
                kRebalanceTickUs, [&rebalance] { rebalance(); },
                sim::Wake::No);
          });
    }
  };
  net.node_sim(ids[0]).schedule_at(0, [&rebalance] { rebalance(); },
                                   sim::Wake::No);

  // Prime every generator's window (driver-side, before workers start).
  for (int g = 0; g < kNodes; ++g) {
    for (int w = 0; w < kGeneratorWindow && gens[g].issued < kInvokesPerNode;
         ++w) {
      const int s =
          static_cast<int>(net.node_sim(ids[g]).rng().next_below(kSessions));
      ++gens[g].issued;
      invoke_session(g, s);
    }
  }

  const std::int64_t total =
      static_cast<std::int64_t>(kNodes) * kInvokesPerNode;
  const auto start = std::chrono::steady_clock::now();
  const bool done = ssim.run_until(
      [&] {
        std::int64_t sum = 0;
        for (const auto& g : gens) sum += g.completed;
        return sum == total;
      },
      threads);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!done) {
    std::cerr << "storm_balancer drained before all invokes completed\n";
    std::exit(1);
  }

  RunResult result;
  result.wall_sec = wall;
  result.windows = ssim.windows();
  result.migrations = ssim.counter("rts.migrations");
  result.invocations = ssim.counter("rts.invocations");
  for (const auto& g : gens) {
    result.served_per_node.push_back(g.completed);
    result.redirects += g.redirects;
  }
  for (int i = 0; i < kNodes; ++i) {
    result.final_placement.push_back(servers[i]->registry().local_names().size());
  }
  return result;
}

}  // namespace

int main() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  // At least 2 workers even on 1 core: the determinism comparison against
  // the 1-worker run is the point, speedup is not.
  const int threads = hw >= 4 ? 4 : 2;

  std::cout << "storm_balancer: " << kNodes << " namespaces, " << kSessions
            << " sessions (all starting on 2 nodes), " << kInvokesPerNode
            << " invokes/node through the rts layer\n\n";

  const RunResult single = run(1);
  const RunResult multi = run(threads);

  for (const auto* r : {&single, &multi}) {
    std::cout << (r == &single ? "1 worker:  " : "N workers: ")
              << r->invocations << " invocations, " << r->migrations
              << " migrations, " << r->redirects << " redirects chased, "
              << r->windows << " windows, " << r->wall_sec << " s\n";
  }

  std::cout << "\nfinal placement (sessions per node): ";
  for (auto c : multi.final_placement) std::cout << c << " ";
  std::cout << "\nserved per node: ";
  for (auto c : multi.served_per_node) std::cout << c << " ";
  std::cout << "\n\n";

  if (single.served_per_node != multi.served_per_node ||
      single.final_placement != multi.final_placement ||
      single.migrations != multi.migrations) {
    std::cerr << "FAIL: thread counts diverged — sharded determinism "
                 "contract broken at the rts layer\n";
    return 1;
  }
  if (multi.migrations == 0) {
    std::cerr << "FAIL: load policy never migrated a session\n";
    return 1;
  }
  // The policy must actually have spread the cluster: the two seed nodes
  // cannot still hold everything.
  if (multi.final_placement[0] + multi.final_placement[1] ==
      static_cast<std::size_t>(kSessions)) {
    std::cerr << "FAIL: all sessions still on the two seed nodes\n";
    return 1;
  }
  std::cout << "OK: identical per-node service counts and placement at 1 and "
            << threads << " workers; " << multi.migrations
            << " migrations under load\n";
  return 0;
}
