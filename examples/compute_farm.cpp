// Compute farm — the paper's opening motivation.
//
// "Large scale scientific computation ... is moving from its traditional
// super computer environment to a distributed one ...  Indeed, new
// companies have formed that capitalize on this trend by renting out
// processor pools or farms."  (Section 1, citing computefarm.com.)
//
// A client rents a processor pool: it discovers which hosts advertise CPU
// capacity, then scatters work units across them with condensed remote
// evaluation (the Section 5 single-exchange protocol) and gathers the
// partial results.  A straggling host is detected by discovery and simply
// not rented.
//
// Build & run:  ./build/examples/compute_farm
#include <iostream>
#include <numeric>

#include "core/mage.hpp"

namespace {

using namespace mage;

// One rented work unit: numerically integrate a slice of a function.
class Integrator : public rts::MageObject {
 public:
  std::string class_name() const override { return "Integrator"; }
  void serialize(serial::Writer& w) const override { w.write_f64(last_); }
  void deserialize(serial::Reader& r) override { last_ = r.read_f64(); }

  // Trapezoidal integration of f(x) = x^2 over [lo, hi].
  double integrate(double lo, double hi) {
    constexpr int kSteps = 1000;
    const double h = (hi - lo) / kSteps;
    double sum = 0.5 * (lo * lo + hi * hi);
    for (int i = 1; i < kSteps; ++i) {
      const double x = lo + i * h;
      sum += x * x;
    }
    return last_ = sum * h;
  }

 private:
  double last_ = 0;
};

}  // namespace

int main() {
  rts::MageSystem system;
  const auto client = system.add_node("client");
  std::vector<common::NodeId> pool;
  for (const char* label : {"farm1", "farm2", "farm3", "farm4"}) {
    pool.push_back(system.add_node(label));
  }

  rts::ClassBuilder<Integrator>(system.world(), "Integrator")
      .method("integrate", &Integrator::integrate, /*cost_us=*/12'000);

  // The farm advertises CPU capacity; farm3 is down for maintenance.
  system.server(pool[0]).resource_board().advertise("cpu", 450);
  system.server(pool[1]).resource_board().advertise("cpu", 450);
  system.server(pool[3]).resource_board().advertise("cpu", 900);
  auto& renter = system.client(client);

  const auto hosts = renter.discover("cpu", pool);
  std::cout << "discovered " << hosts.size() << " rentable hosts:";
  for (const auto& host : hosts) {
    std::cout << " " << system.network().label(host.node) << "("
              << host.capacity << "MHz)";
  }
  std::cout << "\n\n";

  // Scatter: integrate x^2 over [0, 12] in one slice per rented host.
  const double lo = 0.0, hi = 12.0;
  const double slice = (hi - lo) / static_cast<double>(hosts.size());
  double total = 0;
  const auto t0 = system.simulation().now();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const double a = lo + slice * static_cast<double>(i);
    const double b = a + slice;
    // One condensed exchange per work unit: ship code, instantiate,
    // compute, return the partial result.
    const double partial = renter.exec_at<double>(
        hosts[i].node, "Integrator", "unit" + std::to_string(i),
        "integrate", a, b);
    std::cout << "  " << system.network().label(hosts[i].node)
              << " integrated [" << a << ", " << b << "] -> " << partial
              << "\n";
    total += partial;
  }
  const double elapsed_ms = common::to_ms(system.simulation().now() - t0);

  const double exact = (hi * hi * hi - lo * lo * lo) / 3.0;
  std::cout << "\nintegral of x^2 over [0,12]: farm result " << total
            << ", closed form " << exact << " (error "
            << std::abs(total - exact) << ")\n";
  std::cout << "rented " << hosts.size() << " hosts for " << elapsed_ms
            << " simulated ms ("
            << system.stats().counter("rts.condensed_execs")
            << " condensed execs, "
            << system.stats().counter("rmi.calls") << " RMI calls total)\n";
  return std::abs(total - exact) < 1.0 ? 0 : 1;
}
