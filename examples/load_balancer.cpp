// Load-directed migration — the paper's Section 3.1 motivating policy.
//
//   public Remote bind() {
//     if ( cloc.getLoad() > 100 ) {
//       target = selectNewHost();
//       cachedStub = send(target);
//       return cachedStub;
//     }
//   }
//
// A worker component serves requests on a small farm whose host loads
// drift over time.  Every invocation goes through a user-defined mobility
// attribute whose bind() implements exactly the policy above: stay put
// while the current host is cool, migrate to the least-loaded host when it
// overheats.  The run prints the migration trail and compares total
// service time against a no-migration baseline.
//
// Build & run:  ./build/examples/load_balancer
#include <iostream>

#include "core/mage.hpp"

namespace {

using namespace mage;

class Worker : public rts::MageObject {
 public:
  std::string class_name() const override { return "Worker"; }
  void serialize(serial::Writer& w) const override {
    w.write_i64(requests_);
  }
  void deserialize(serial::Reader& r) override { requests_ = r.read_i64(); }

  std::int64_t handle() { return ++requests_; }

 private:
  std::int64_t requests_ = 0;
};

// The paper's policy as a mobility attribute.
class LoadPolicyMa : public core::MobilityAttribute {
 public:
  LoadPolicyMa(rts::MageClient& client, common::ComponentName name,
               std::vector<common::NodeId> farm, double threshold)
      : core::MobilityAttribute(client, std::move(name)),
        farm_(std::move(farm)),
        threshold_(threshold) {}

  [[nodiscard]] core::Model model() const override {
    return core::Model::Grev;
  }

  [[nodiscard]] int migrations() const { return migrations_; }

 protected:
  core::RemoteHandle do_bind() override {
    const auto at = resolve();
    if (client_.load_of(at) <= threshold_) {
      return handle_at(at);  // cachedStub: no need to move
    }
    core::LeastLoadedPolicy select_new_host;
    const auto target = select_new_host.select(client_, farm_);
    if (target == at) return handle_at(at);
    client_.move(name_, target, at);
    cloc_ = target;
    ++migrations_;
    return handle_at(target);
  }

 private:
  std::vector<common::NodeId> farm_;
  double threshold_;
  int migrations_ = 0;
};

// Synthetic diurnal-ish load for host `n` at request step `t`.
double load_at(std::uint32_t n, int t) {
  // Each host's load ramps up in its own phase window, exceeding the
  // threshold (100) for a stretch, then cooling down.
  const int phase = (t + static_cast<int>(n) * 7) % 21;
  return phase < 7 ? 40.0 + 25.0 * phase : 30.0;
}

}  // namespace

int main() {
  constexpr double kThreshold = 100.0;

  auto run = [&](bool adaptive) {
    rts::MageSystem system;
    std::vector<common::NodeId> farm;
    for (const char* label : {"hostA", "hostB", "hostC"}) {
      farm.push_back(system.add_node(label));
    }
    const auto gateway = system.add_node("gateway");
    rts::ClassBuilder<Worker>(system.world(), "Worker")
        .method("handle", &Worker::handle, /*cost_us=*/800);
    system.client(farm[0]).create_component("worker", "Worker",
                                            /*is_public=*/true);
    auto& client = system.client(gateway);

    LoadPolicyMa policy(client, "worker", farm, kThreshold);
    core::Cle plain(client, "worker");

    constexpr int kRequests = 40;
    for (int t = 0; t < kRequests; ++t) {
      for (std::size_t i = 0; i < farm.size(); ++i) {
        system.network().set_load(farm[i],
                                  load_at(static_cast<std::uint32_t>(i), t));
      }
      auto handle = adaptive ? policy.bind() : plain.bind();
      // Requests on an overloaded host are slowed by queueing: model as
      // extra service latency proportional to load above threshold.
      const double host_load = system.network().load(handle.location());
      if (host_load > kThreshold) {
        client.charge(common::msec_f((host_load - kThreshold) * 3.0));
      }
      (void)handle.invoke<std::int64_t>("handle");
      if (adaptive && t < 12) {
        std::cout << "  t=" << t << " load("
                  << system.network().label(handle.location())
                  << ")=" << host_load << (host_load > kThreshold
                                               ? "  [over threshold]"
                                               : "")
                  << " served at "
                  << system.network().label(handle.location()) << "\n";
      }
    }
    struct Outcome {
      double total_ms;
      int migrations;
    };
    return Outcome{common::to_ms(system.simulation().now()),
                   adaptive ? policy.migrations() : 0};
  };

  std::cout << "adaptive run (first steps shown):\n";
  const auto adaptive = run(true);
  const auto fixed = run(false);

  std::cout << "\n                      total service time   migrations\n";
  std::cout << "  load-policy MA       " << adaptive.total_ms << " ms        "
            << adaptive.migrations << "\n";
  std::cout << "  fixed placement      " << fixed.total_ms << " ms        0\n";
  std::cout << "\nThe attribute pays migration latency to escape hot hosts "
               "and wins overall — the programmer wrote only the policy; "
               "placement, discovery and movement came from MAGE.\n";
  return adaptive.total_ms < fixed.total_ms ? 0 : 1;
}
