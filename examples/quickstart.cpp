// Quickstart: a two-namespace MAGE federation, one mobile counter.
//
// Demonstrates the core loop of the programming model:
//   1. boot a federation and register a class,
//   2. create a component,
//   3. bind mobility attributes to move it around,
//   4. watch mobility coercion kick in when the configuration already
//      matches the attribute's model.
//
// Build & run:  ./build/examples/quickstart
#include <cstdint>
#include <iostream>

#include "core/mage.hpp"

namespace {

// The paper's test object: "a minimal extension of UnicastRemote ... a
// single integer attribute, which it increments".
class Counter : public mage::rts::MageObject {
 public:
  std::string class_name() const override { return "Counter"; }
  void serialize(mage::serial::Writer& w) const override {
    w.write_i64(value_);
  }
  void deserialize(mage::serial::Reader& r) override {
    value_ = r.read_i64();
  }

  std::int64_t increment() { return ++value_; }
  std::int64_t get() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

}  // namespace

int main() {
  using namespace mage;

  // --- boot the federation -------------------------------------------------
  rts::MageSystem system;  // JDK-1.2.2-calibrated cost model
  const auto lab = system.add_node("lab");
  const auto server = system.add_node("server");

  rts::ClassBuilder<Counter>(system.world(), "Counter")
      .method("increment", &Counter::increment)
      .method("get", &Counter::get);

  auto& client = system.client(lab);
  client.create_component("counter", "Counter");
  std::cout << "created 'counter' in namespace " << lab.value() << " ("
            << system.network().label(lab) << ")\n";

  // --- REV: push the counter to the server and run it there ------------------
  core::Rev rev(client, "counter", server);
  auto handle = rev.bind();
  std::cout << "REV bind moved counter to node " << handle.location().value()
            << "; increment -> " << handle.invoke<std::int64_t>("increment")
            << "\n";

  // --- bind again: the counter is already at the target, so mobility
  // --- coercion turns REV into RPC (Table 2) --------------------------------
  auto handle2 = rev.bind();
  std::cout << "second REV bind coerced to RPC (no move); increment -> "
            << handle2.invoke<std::int64_t>("increment") << "\n";

  // --- COD: pull the counter back into our namespace -------------------------
  core::Cod cod(client, "counter");
  auto local = cod.bind();
  std::cout << "COD bind pulled counter back to node "
            << local.location().value() << "; increment -> "
            << local.invoke<std::int64_t>("increment") << "\n";

  // --- CLE: invoke wherever it currently lives -------------------------------
  core::Cle cle(client, "counter");
  auto wherever = cle.bind();
  std::cout << "CLE bind found counter at node "
            << wherever.location().value() << "; get -> "
            << wherever.invoke<std::int64_t>("get") << "\n";

  std::cout << "\nsimulated time elapsed: "
            << common::to_ms(system.simulation().now()) << " ms\n";
  std::cout << "RMI calls made: " << system.stats().counter("rmi.calls")
            << ", migrations: " << system.stats().counter("rts.migrations")
            << "\n\n"
            << system.describe();
  return 0;
}
