// Lifeline global load balancing over a relocatable DistMap — the
// distributed-collections showcase.
//
// An unbalanced tree (structural ids, branching a pure hash of seed+id)
// is expanded exactly once per node into a DistMap<u64,i64> whose eight
// partitions all start crammed on two of six namespaces.  Six driver
// chains pump windowed `expand` calls through the AsyncClient facade
// while per-node lifeline rebalancers steal hot partitions toward idle
// nodes — work follows data, and the load spreads.  Chaos mode overlays
// loss bursts and a network partition racing the migrations; drivers
// requeue failed expands (first-write-wins idempotent, so retries are
// safe) and the partition-table self-repairs from Moved hints.
//
// Each seed runs at 1, 2, and 8 worker threads, clean and chaotic, and
// asserts: bit-identical content digests across worker counts, exactly-
// once expansion (per-key exec counters all 1, map size == tree size),
// and at least one load-driven partition migration.
//
// Build & run:  ./build/example_glb_tree
#include <cstdint>
#include <iostream>
#include <vector>

#include "support/glb_harness.hpp"

namespace {

constexpr std::uint64_t kSeeds[] = {11, 23, 47};
constexpr int kWorkerCounts[] = {1, 2, 8};

bool run_seed(std::uint64_t seed, bool chaos) {
  mage::glb::GlbParams params;
  params.seed = seed;
  params.chaos = chaos;

  std::vector<mage::glb::GlbRun> runs;
  for (int threads : kWorkerCounts) {
    runs.push_back(mage::glb::run_glb(params, threads));
  }
  const auto& r = runs.front();
  std::cout << "  seed " << seed << (chaos ? " (chaos):" : " (clean):")
            << " tree=" << r.tree_size << " digest=" << std::hex << r.digest
            << std::dec << " migrations=" << r.migrations
            << " steals=" << r.lifeline_steals << " repairs=" << r.table_repairs
            << " requeues=" << r.requeues << " dup_hits=" << r.dup_hits
            << (chaos ? " faults=" + std::to_string(r.faults_applied) : "")
            << "\n";

  bool ok = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    if (!run.completed) {
      std::cout << "  FAIL: run did not drain at " << kWorkerCounts[i]
                << " workers\n";
      ok = false;
      continue;
    }
    if (!run.exactly_once()) {
      std::cout << "  FAIL: exactly-once violated at " << kWorkerCounts[i]
                << " workers (violations=" << run.exec_violations
                << " count=" << run.map_count << "/" << run.tree_size
                << " sum=" << run.map_sum << " processed=" << run.processed
                << ")\n";
      ok = false;
    }
    if (run.migrations < 1) {
      std::cout << "  FAIL: no load-driven partition migration at "
                << kWorkerCounts[i] << " workers\n";
      ok = false;
    }
    if (run.digest != r.digest || run.processed != r.processed ||
        run.migrations != r.migrations ||
        run.lifeline_steals != r.lifeline_steals) {
      std::cout << "  FAIL: divergence at " << kWorkerCounts[i]
                << " workers (digest=" << std::hex << run.digest << std::dec
                << " migrations=" << run.migrations
                << " steals=" << run.lifeline_steals << ")\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  mage::glb::GlbParams defaults;
  std::cout << "glb_tree: " << defaults.nodes << " namespaces, "
            << defaults.partitions
            << " DistMap partitions (all seeded on 2 nodes), lifeline "
               "rebalancers, 1/2/8 workers\n";
  bool ok = true;
  for (const bool chaos : {false, true}) {
    for (const std::uint64_t seed : kSeeds) ok &= run_seed(seed, chaos);
  }
  if (!ok) {
    std::cout << "FAILED\n";
    return 1;
  }
  std::cout << "OK: exactly-once expansion, identical digests at 1/2/8 "
               "workers, load-driven migration under clean and chaotic "
               "networks\n";
  return 0;
}
