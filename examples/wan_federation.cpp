// WAN federation — the paper's Section 7 future work, running.
//
// "We are exploring a version of MAGE that runs on and scales to WANs
// consisting of large, heterogenous networks, fragmented into competing
// and disjoint administrative domains, each with different services,
// resources and security needs — in short, the Internet.  We also are
// working on adding access control and resource allocation models."
//
// This example builds that Internet in miniature: two administrative
// domains (a corporate HQ and a field deployment) separated by a WAN hop.
// The field domain's edge nodes have tight hosting capacity; HQ's archive
// refuses to host foreign code at all; an analytics component is confined
// to the field domain by a restricted mobility attribute; and class
// statics (a shared schema version) stay coherent from both sides of the
// WAN.
//
// Build & run:  ./build/examples/wan_federation
#include <iostream>

#include "core/mage.hpp"

namespace {

using namespace mage;

class Analyzer : public rts::MageObject {
 public:
  std::string class_name() const override { return "Analyzer"; }
  void serialize(serial::Writer& w) const override {
    w.write_i64(batches_);
  }
  void deserialize(serial::Reader& r) override { batches_ = r.read_i64(); }

  std::int64_t analyze(std::int64_t readings) {
    ++batches_;
    return readings / 2;  // "insights"
  }
  std::int64_t batches() const { return batches_; }

 private:
  std::int64_t batches_ = 0;
};

}  // namespace

int main() {
  rts::MageSystem system;
  const auto hq = system.add_node("hq");
  const auto archive = system.add_node("hq-archive");
  const auto edge1 = system.add_node("field-edge1");
  const auto edge2 = system.add_node("field-edge2");

  // Two administrative domains with an 90 ms WAN between them.
  system.assign_domain(hq, "hq");
  system.assign_domain(archive, "hq");
  system.assign_domain(edge1, "field");
  system.assign_domain(edge2, "field");
  system.set_interdomain_latency(common::msec(90));

  rts::ClassBuilder<Analyzer>(system.world(), "Analyzer")
      .method("analyze", &Analyzer::analyze, /*cost_us=*/2000)
      .method("batches", &Analyzer::batches);
  system.world().set_statics_home("Analyzer", hq);

  // Security: the archive hosts nothing foreign and lets nobody move its
  // objects; the field edges accept transfers only from their own domain.
  system.server(archive).access().set_default(rts::Verdict::Deny);
  for (auto edge : {edge1, edge2}) {
    system.server(edge).access().deny_domain(rts::Operation::TransferIn,
                                             "hq");
    system.server(edge).access().allow_domain(rts::Operation::TransferIn,
                                              "field");
    // ... but HQ operators may still look things up and invoke them.
  }
  // Resources: each edge node can host at most one visiting component.
  system.server(edge1).resources().max_objects = 1;
  system.server(edge2).resources().max_objects = 1;

  auto& operations = system.client(edge1);  // a field operator
  operations.create_component("analyzer", "Analyzer", /*is_public=*/true);
  operations.static_put<std::int64_t>("Analyzer", "schema", 3);

  std::cout << "federation up: domains hq{hq, hq-archive} and "
               "field{field-edge1, field-edge2}, 90 ms WAN between them\n\n";

  // 1. A restricted attribute confines the analyzer to the field domain.
  core::RestrictedAttribute confined(
      std::make_unique<core::Grev>(operations, "analyzer", edge2),
      /*allowed_locations=*/{edge1, edge2},
      /*allowed_targets=*/{edge1, edge2});
  auto handle = confined.bind();
  std::cout << "1. restricted GREV moved analyzer to "
            << system.network().label(handle.location()) << "; analyze -> "
            << handle.invoke<std::int64_t>("analyze", std::int64_t{10'000})
            << " insights\n";

  // 2. Trying to pull it across the WAN into HQ violates the restriction.
  core::RestrictedAttribute escape_attempt(
      std::make_unique<core::Grev>(system.client(hq), "analyzer", hq),
      {edge1, edge2}, {edge1, edge2});
  try {
    (void)escape_attempt.bind();
  } catch (const common::CoercionError& e) {
    std::cout << "2. HQ's attempt to pull the analyzer home was rejected by "
                 "the restricted attribute:\n      "
              << e.what() << "\n";
  }

  // 3. Even an unrestricted GREV cannot stash it on the archive: ACL.
  try {
    core::Grev to_archive(system.client(hq), "analyzer", archive);
    (void)to_archive.bind();
  } catch (const common::MageError& e) {
    std::cout << "3. archive refused the transfer outright (ACL):\n      "
              << e.what() << "\n";
  }

  // 4. Capacity: edge2 already hosts the analyzer; a second component
  //    bounces and lands on edge1 instead.
  operations.create_component("analyzer2", "Analyzer", /*is_public=*/true);
  common::NodeId placed = common::kNoNode;
  for (auto candidate : {edge2, edge1}) {
    try {
      placed = operations.move("analyzer2", candidate);
      break;
    } catch (const common::MageError&) {
      std::cout << "4. " << system.network().label(candidate)
                << " is full (capacity 1); trying the next edge...\n";
    }
  }
  std::cout << "   analyzer2 placed at " << system.network().label(placed)
            << "\n";

  // 5. HQ can still *invoke* across the WAN (reads were never denied), and
  //    class statics are coherent from both domains.
  core::Cle from_hq(system.client(hq), "analyzer");
  auto wan_handle = from_hq.bind();
  const auto t0 = system.simulation().now();
  (void)wan_handle.invoke<std::int64_t>("analyze", std::int64_t{2'000});
  std::cout << "5. HQ invoked the analyzer over the WAN in "
            << common::to_ms(system.simulation().now() - t0)
            << " ms; schema version read at the field = "
            << operations.static_get<std::int64_t>("Analyzer", "schema")
            << ", at HQ = "
            << system.client(hq).static_get<std::int64_t>("Analyzer",
                                                          "schema")
            << "\n";

  std::cout << "\naccess denials recorded: "
            << system.stats().counter("rts.access_denials")
            << ", capacity rejections: "
            << system.stats().counter("rts.capacity_rejections")
            << ", migrations: " << system.stats().counter("rts.migrations")
            << "\n";
  return 0;
}
