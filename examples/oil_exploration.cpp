// Oil exploration — the paper's running example (Sections 3.6 and 4.4).
//
// An oil company's sensors generate enormous amounts of geologic data that
// should be filtered *in place*, at the sensor.  A GeoDataFilter component
// migrates: REV instantiates it at sensor1; when sensor1 is exhausted an
// MA attribute moves it to sensor2; finally COD brings the filtered data
// home to the research lab for processing.  The second half replaces the
// three attributes with the paper's user-defined CombinedMA, whose bind()
// encapsulates the whole itinerary as one fine-grained migration policy.
//
// Build & run:  ./build/examples/oil_exploration
#include <iostream>
#include <map>

#include "core/mage.hpp"

namespace {

using namespace mage;

// The component: gathers raw readings at its current namespace and keeps a
// running filtered summary (its heap state, which migrates with it).
class GeoDataFilterImpl : public rts::MageObject {
 public:
  std::string class_name() const override { return "GeoDataFilterImpl"; }
  void serialize(serial::Writer& w) const override {
    w.write_i64(samples_filtered_);
    w.write_f64(signal_);
  }
  void deserialize(serial::Reader& r) override {
    samples_filtered_ = r.read_i64();
    signal_ = r.read_f64();
  }

  // Filters one batch of sensor data where the component currently runs;
  // returns the cumulative number of samples filtered.
  std::int64_t filter_data(std::int64_t batch) {
    samples_filtered_ += batch;
    signal_ += static_cast<double>(batch) * 0.001;
    return samples_filtered_;
  }

  // Final processing back at the lab: returns the refined signal.
  double process_data() { return signal_; }

 private:
  std::int64_t samples_filtered_ = 0;
  double signal_ = 0.0;
};

void print_location(rts::MageSystem& system, const std::string& phase) {
  for (auto node : system.nodes()) {
    if (system.server(node).registry().has_local("geoData")) {
      std::cout << "  [" << phase << "] geoData is at "
                << system.network().label(node) << "\n";
      return;
    }
  }
}

// The paper's CombinedMA: one user-defined mobility attribute combining
// REV, MA and COD into a single fine-grained migration policy.  "Since
// programmers can define their own mobility attributes ... they can use
// mobility attributes to control the placement of their components, while
// keeping their application code clean, spare and focused on its problem
// domain."
class CombinedMA : public core::MobilityAttribute {
 public:
  CombinedMA(rts::MageClient& client, std::string class_name,
             common::ComponentName name, std::vector<common::NodeId> sensors,
             common::NodeId lab)
      : core::MobilityAttribute(client, std::move(name)),
        class_name_(std::move(class_name)),
        sensors_(std::move(sensors)),
        lab_(lab),
        rev_(client, class_name_, this->name(), sensors_.front()),
        cod_(client, this->name()) {}

  [[nodiscard]] core::Model model() const override {
    return core::Model::Grev;  // the combined policy covers the full space
  }

  [[nodiscard]] bool more_sensors() const {
    return next_sensor_ < sensors_.size();
  }

 protected:
  core::RemoteHandle do_bind() override {
    // selectTarget(status): next unexhausted sensor, else the lab.
    if (next_sensor_ == 0) {
      ++next_sensor_;
      return rev_.bind();  // first placement: REV instantiates at sensor1
    }
    if (next_sensor_ < sensors_.size()) {
      // Hop to the next sensor as an agent (a fresh single-stop itinerary).
      core::MAgent hop(client_, name(), sensors_[next_sensor_++]);
      return hop.bind();
    }
    return cod_.bind();  // exhausted: bring the results home
  }

 private:
  std::string class_name_;
  std::vector<common::NodeId> sensors_;
  common::NodeId lab_;
  std::size_t next_sensor_ = 0;
  core::Rev rev_;
  core::Cod cod_;
};

}  // namespace

int main() {
  rts::MageSystem system;
  const auto lab = system.add_node("researchLab");
  const auto sensor1 = system.add_node("sensor1");
  const auto sensor2 = system.add_node("sensor2");

  rts::ClassBuilder<GeoDataFilterImpl>(system.world(), "GeoDataFilterImpl",
                                       /*code_size=*/6144)
      .method("filterData", &GeoDataFilterImpl::filter_data,
              /*cost_us=*/1500)  // filtering is real work
      .method("processData", &GeoDataFilterImpl::process_data,
              /*cost_us=*/4000);

  auto& client = system.client(lab);

  std::cout << "== Phase 1: the paper's three explicit attributes ==\n";

  // REV rev = new REV("GeoDataFilterImpl", "geoData", "sensor1");
  // filter = (GeoDataFilter) rev.bind();  filter.filterData();
  core::Rev rev(client, "GeoDataFilterImpl", "geoData", sensor1);
  auto filter = rev.bind();
  print_location(system, "after REV.bind");
  std::cout << "  filtered at sensor1: "
            << filter.invoke<std::int64_t>("filterData", std::int64_t{5000})
            << " samples\n";

  // Sensor1 exhausted: MAgent magent = new MAgent("geoData", "sensor2");
  core::MAgent magent(client, "geoData", sensor2);
  filter = magent.bind();
  print_location(system, "after MAgent.bind");
  std::cout << "  filtered at sensor2 (cumulative): "
            << filter.invoke<std::int64_t>("filterData", std::int64_t{3000})
            << " samples\n";

  // COD cod = new COD("geoData");  // target is local
  // Bracketed with the Section 4.4 lock protocol:
  //   lock("geoData", cod.getTarget()); ... unlock("geoData");
  core::Cod cod(client, "geoData");
  auto lock = client.lock("geoData", cod.target());
  filter = cod.bind();
  print_location(system, "after COD.bind");
  std::cout << "  processed at the lab: signal = "
            << filter.invoke<double>("processData") << " (lock was a "
            << (lock.kind == rts::LockKind::Stay ? "stay" : "move")
            << " lock)\n";
  client.unlock(lock);

  std::cout << "\n== Phase 2: the same itinerary as one CombinedMA ==\n";
  CombinedMA combined(client, "GeoDataFilterImpl", "geoData2",
                      {sensor1, sensor2}, lab);
  // while (iterator.moreSensors()) { filter = combinedMA.bind(); ... }
  std::int64_t batch = 4000;
  while (combined.more_sensors()) {
    auto f = combined.bind();
    std::cout << "  filterData at "
              << system.network().label(f.location()) << " -> "
              << f.invoke<std::int64_t>("filterData", batch) << " samples\n";
    batch -= 1500;  // later sensors have less left to give
  }
  auto f = combined.bind();  // sensors exhausted: comes home
  std::cout << "  processData at " << system.network().label(f.location())
            << " -> signal = " << f.invoke<double>("processData") << "\n";

  std::cout << "\nsimulated time: "
            << common::to_ms(system.simulation().now()) << " ms, migrations: "
            << system.stats().counter("rts.migrations")
            << ", rmi calls: " << system.stats().counter("rmi.calls")
            << "\n";
  return 0;
}
