#!/usr/bin/env python3
"""Multi-core storm scaling + chaos record check.

Reads the `threaded` block bench_storm writes when run with --threads and
enforces (a) the determinism digest held and (b) the multi-thread speedup
is commensurate with the cores actually available — the ISSUE-3 acceptance
bar of >= 3x applies on an 8-core runner, scaled down on smaller ones and
skipped on single-core machines where no parallel speedup is possible.

When bench_storm ran with --chaos it also writes a `chaos` block (the
degraded-mode runs under a scheduled fault program); this script validates
it: digest-identical across worker counts, every request executed exactly
once, zero eviction-caused re-executions (the reply cache is adequately
sized in chaos mode), zero wire-FIFO violations, and a genuinely chaotic
run (faults applied, scheduled drops, retransmissions all nonzero).

Chaos runs also host the HA control plane (ISSUE 6): a director quorum
whose members the schedule crashes one at a time, probed by a resolver
client.  Each chaos run must therefore carry a `failover` block proving
the control plane actually failed over: elections held, client
directory failovers, and successful resolves, all nonzero.
Pass --require-chaos to fail when the block is missing.

Threaded runs also emit a `batch` block (ROADMAP item 1: per-link invoke
coalescing + adaptive reply-cache sizing).  This script validates it:
digest-identical across worker counts, zero ordering violations, batching
genuinely coalescing (>= 2 invokes per frame on average), the adaptive
ring actually growing from its floor, and evictions held under 1% of
calls (the workload that used to churn 111k evictions on 120k calls).
The raw-throughput bar scales with the cores available, like the speedup
ladder: 1M calls/sec needs real hardware parallelism; a 1-core container
is held to the determinism and structural checks plus a lower floor.
Pass --require-batch to fail when the block is missing.

GLB runs (ISSUE 9: relocatable distributed collections) emit a `glb`
block when bench_storm runs with --glb: three seeded lifeline
global-load-balancing workloads over migrating DistMap partitions, each
run chaotic at 1 and 8 workers.  This script validates it: digests (and
every structural counter) identical across worker counts, every tree
node expanded exactly once, at least one load-driven partition
migration per seed, and the fault schedule genuinely applied.
Pass --require-glb to fail when the block is missing.

WAN runs (ISSUE 10: affinity mapping + per-pair lookahead) emit a
`scaling` block when bench_storm runs with --wan: per-runner-class curves
over the 64/128-node site-clustered WAN meshes.  This script validates
each curve structurally (worker ladder starts at 1 and strictly
increases, digests identical across worker counts AND across node:shard
mappings, windows recorded, messages flowing) and — only when the runner
actually has >= 4 hardware threads — requires a real > 1.0x speedup at
some non-oversubscribed point.  Oversubscribed points (workers >
hardware_threads) are annotated by the bench and never counted toward or
against the speedup, so a 1-core container cannot record a fake
regression.  Pass --require-speedup to fail when the block is missing.

Usage: check_storm_scaling.py <BENCH_storm.json> [--require-chaos]
                              [--require-batch] [--require-glb]
                              [--require-speedup]
"""
import json
import os
import sys


def required_speedup(hardware_threads, workers):
    usable = min(hardware_threads, workers)
    if usable >= 8:
        return 3.0
    if usable >= 4:
        return 1.5
    if usable >= 2:
        return 1.1
    return None  # single core: only determinism is checkable


def required_batch_rate(hardware_threads):
    # The acceptance bar: > 1M calls/sec on a dev-class multi-core box.
    # Shared 1-core CI containers run the identical binary 2-4x slower and
    # with heavy wall-clock noise, so the floor scales like the speedup
    # ladder above rather than pretending the hardware is equal.
    if hardware_threads >= 4:
        return 1_000_000.0
    if hardware_threads >= 2:
        return 600_000.0
    return 400_000.0


def gate_failure(message):
    print(f"FAIL: {message}", file=sys.stderr)
    if os.environ.get("BENCH_GATE_MODE") == "warn":
        print("BENCH_GATE_MODE=warn: reporting only, not failing")
        return 0
    return 1


def check_batch(data, require_batch):
    batch = data.get("batch")
    if not batch:
        if require_batch:
            print("no batch block in BENCH_storm.json — run with --threads",
                  file=sys.stderr)
            return 1
        return 0
    failures = []
    if not batch.get("deterministic", False):
        failures.append("batch digests diverged across worker counts")
    for which in ("single", "multi"):
        run = batch.get(which, {})
        tag = f"batch {which}"
        calls = run.get("calls", 0)
        if run.get("order_violations", -1) != 0:
            failures.append(f"{tag}: per-link ordering violations")
        batches = run.get("batches_sent", 0)
        invokes = run.get("batched_invokes", 0)
        if batches <= 0 or invokes < 2 * batches:
            failures.append(f"{tag}: batching never coalesced "
                            f"({invokes} invokes / {batches} frames)")
        if run.get("reply_cache_grows", 0) < 1:
            failures.append(f"{tag}: adaptive reply cache never grew")
        evictions = run.get("reply_cache_evictions", calls)
        if evictions * 100 >= calls:
            failures.append(f"{tag}: {evictions} evictions on {calls} calls "
                            "(>= 1%) despite adaptive sizing")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    hw = data.get("hardware_threads", 1)
    rate = max(batch["single"].get("calls_per_sec", 0.0),
               batch["multi"].get("calls_per_sec", 0.0))
    need = required_batch_rate(hw)
    frames = batch["multi"]["batches_sent"]
    per_frame = batch["multi"]["batched_invokes"] / max(frames, 1)
    print(f"batch: {rate:,.0f} calls/sec "
          f"({batch['vs_unbatched']:.2f}x of unbatched), "
          f"{per_frame:.0f} invokes/frame, "
          f"{batch['multi']['reply_cache_evictions']} evictions on "
          f"{batch['multi']['calls']} calls; deterministic held "
          f"(required rate on {hw} hardware threads: {need:,.0f})")
    if rate < need:
        return gate_failure(f"batch rate {rate:,.0f} calls/sec below "
                            f"required {need:,.0f}")
    return 0


def check_glb(data, require_glb):
    glb = data.get("glb")
    if not glb:
        if require_glb:
            print("no glb block in BENCH_storm.json — run with --glb",
                  file=sys.stderr)
            return 1
        return 0
    failures = []
    if not glb.get("deterministic", False):
        failures.append("glb digests/counters diverged across worker counts")
    if not glb.get("exactly_once", False):
        failures.append("some glb tree node was not expanded exactly once")
    if not glb.get("migrated", False):
        failures.append("a glb run finished without any partition migration")
    runs = glb.get("runs", [])
    if len(runs) < 3:
        failures.append(f"glb ran only {len(runs)} seeds (need >= 3)")
    for run in runs:
        tag = f"glb seed {run.get('seed')}"
        if run.get("exec_violations", -1) != 0:
            failures.append(f"{tag}: per-key exec-count violations")
        if run.get("processed", 0) != run.get("tree_size", -1):
            failures.append(f"{tag}: processed {run.get('processed')} of "
                            f"{run.get('tree_size')} tree nodes")
        if run.get("migrations", 0) < 1:
            failures.append(f"{tag}: no load-driven partition migrations")
        if run.get("faults_applied", 0) < 1:
            failures.append(f"{tag}: chaos schedule did not apply")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    total_nodes = sum(r["tree_size"] for r in runs)
    total_migrations = sum(r["migrations"] for r in runs)
    total_steals = sum(r["lifeline_steals"] for r in runs)
    print(f"glb: {len(runs)} seeds, {total_nodes} tree nodes expanded "
          f"exactly once under chaos; {total_migrations} migrations "
          f"({total_steals} lifeline steals); digests identical across "
          f"worker counts")
    return 0


def check_wan_scaling(data, require_speedup):
    curves = data.get("scaling")
    if not curves:
        if require_speedup:
            print("no scaling block in BENCH_storm.json — run with --wan",
                  file=sys.stderr)
            return 1
        return 0
    hw = data.get("hardware_threads", 1)
    failures = []
    soft_failures = []  # speedup shortfalls honor BENCH_GATE_MODE=warn
    for curve in curves:
        tag = f"wan {curve.get('nodes')}n/{curve.get('sites')}s"
        if not curve.get("deterministic", False):
            failures.append(f"{tag}: digests diverged across worker counts")
        if not curve.get("mapping_independent", False):
            failures.append(f"{tag}: per-node delivery order depends on the "
                            "node:shard mapping")
        points = curve.get("points", [])
        if not points or points[0].get("workers") != 1:
            failures.append(f"{tag}: ladder must start at 1 worker")
        workers = [p.get("workers", 0) for p in points]
        if workers != sorted(set(workers)):
            failures.append(f"{tag}: worker ladder {workers} is not "
                            "strictly increasing")
        for p in points:
            ptag = f"{tag} @{p.get('workers')}w"
            if p.get("windows", 0) < 1:
                failures.append(f"{ptag}: no windows recorded")
            if p.get("messages_sent", 0) < 1:
                failures.append(f"{ptag}: messages_sent is zero — the "
                                "counter registry is not wired through")
        usable = [p for p in points if not p.get("oversubscribed", False)]
        speedup = curve.get("speedup", 0.0)
        note = ""
        if hw >= 4 and len(usable) >= 2:
            if speedup <= 1.0:
                soft_failures.append(
                    f"{tag}: speedup {speedup:.2f}x is not > 1.0x despite "
                    f"{hw} hardware threads (non-oversubscribed ladder "
                    f"{[p['workers'] for p in usable]})")
        else:
            note = (f" (not enforced: {hw} hardware threads, "
                    f"{len(usable)} non-oversubscribed points)")
        print(f"{tag}: {speedup:.2f}x best speedup over "
              f"{[p['workers'] for p in points]} workers, "
              f"{points[0].get('windows')} windows at 1w; "
              "deterministic + mapping-independent held" + note)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if soft_failures:
        rc = 0
        for f in soft_failures:
            rc |= gate_failure(f)
        return rc
    return 0


def check_chaos(data, require_chaos):
    chaos = data.get("chaos")
    if not chaos:
        if require_chaos:
            print("no chaos block in BENCH_storm.json — run with --chaos",
                  file=sys.stderr)
            return 1
        return 0
    failures = []
    if not chaos.get("deterministic", False):
        failures.append("chaos digests diverged across worker counts")
    if not chaos.get("exactly_once", False):
        failures.append("some chaos request did not execute exactly once")
    for which in ("single", "multi"):
        run = chaos.get(which, {})
        tag = f"chaos {which}"
        if run.get("evicted_reexecutions", -1) != 0:
            failures.append(f"{tag}: eviction-caused re-executions despite "
                            "an adequately sized reply cache")
        if run.get("fifo_violations", -1) != 0:
            failures.append(f"{tag}: wire-FIFO violations")
        if run.get("faults_applied", 0) < 8:
            failures.append(f"{tag}: fault schedule did not fully apply")
        if run.get("messages_dropped_by_schedule", 0) <= 0:
            failures.append(f"{tag}: scheduled faults dropped nothing")
        if run.get("retransmissions", 0) <= 0:
            failures.append(f"{tag}: no retransmissions under chaos")
        failover = run.get("failover")
        if not failover:
            failures.append(f"{tag}: no failover block — chaos runs must "
                            "exercise the replicated directory")
        else:
            if failover.get("elections_held", 0) < 1:
                failures.append(f"{tag}: no elections held")
            if failover.get("directory_failovers", 0) < 1:
                failures.append(f"{tag}: no directory failovers")
            if failover.get("directory_resolves", 0) < 1:
                failures.append(f"{tag}: no directory resolves")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    fo = chaos["multi"]["failover"]
    print(f"chaos: {chaos['speedup']:.2f}x degraded-mode speedup, "
          f"{chaos['degraded_vs_clean']:.2f}x of clean throughput, "
          f"{chaos['multi']['faults_applied']} faults applied, "
          f"{chaos['multi']['messages_dropped_by_schedule']} scheduled "
          "drops; deterministic + exactly-once held; "
          f"{fo['elections_held']} elections "
          f"({fo['election_time_us']} sim-us), "
          f"{fo['directory_failovers']} directory failovers "
          f"({fo['failover_time_us']} sim-us)")
    return 0


def main():
    flags = {"--require-chaos", "--require-batch", "--require-glb",
             "--require-speedup"}
    args = [a for a in sys.argv[1:] if a not in flags]
    require_chaos = "--require-chaos" in sys.argv[1:]
    require_batch = "--require-batch" in sys.argv[1:]
    require_glb = "--require-glb" in sys.argv[1:]
    require_speedup = "--require-speedup" in sys.argv[1:]
    with open(args[0]) as f:
        data = json.load(f)
    threaded = data.get("threaded")
    if not threaded:
        print("no threaded block in BENCH_storm.json — run with --threads",
              file=sys.stderr)
        return 1
    if not threaded.get("deterministic", False):
        print("FAIL: per-node order digests diverged across thread counts",
              file=sys.stderr)
        return 1

    if check_chaos(data, require_chaos) != 0:
        return 1
    if check_batch(data, require_batch) != 0:
        return 1
    if check_glb(data, require_glb) != 0:
        return 1
    if check_wan_scaling(data, require_speedup) != 0:
        return 1

    hw = data.get("hardware_threads", 1)
    workers = threaded["threads"]
    speedup = threaded["speedup"]
    need = required_speedup(hw, workers)
    print(f"storm scaling: {speedup:.2f}x with {workers} workers on "
          f"{hw} hardware threads"
          + (f" (required: {need:.1f}x)" if need else " (1 core: not enforced)"))
    if need is not None and speedup < need:
        print(f"FAIL: speedup {speedup:.2f}x below required {need:.1f}x",
              file=sys.stderr)
        if os.environ.get("BENCH_GATE_MODE") == "warn":
            print("BENCH_GATE_MODE=warn: reporting only, not failing")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
