#!/usr/bin/env python3
"""Multi-core storm scaling check.

Reads the `threaded` block bench_storm writes when run with --threads and
enforces (a) the determinism digest held and (b) the multi-thread speedup
is commensurate with the cores actually available — the ISSUE-3 acceptance
bar of >= 3x applies on an 8-core runner, scaled down on smaller ones and
skipped on single-core machines where no parallel speedup is possible.

Usage: check_storm_scaling.py <BENCH_storm.json>
"""
import json
import os
import sys


def required_speedup(hardware_threads, workers):
    usable = min(hardware_threads, workers)
    if usable >= 8:
        return 3.0
    if usable >= 4:
        return 1.5
    if usable >= 2:
        return 1.1
    return None  # single core: only determinism is checkable


def main():
    with open(sys.argv[1]) as f:
        data = json.load(f)
    threaded = data.get("threaded")
    if not threaded:
        print("no threaded block in BENCH_storm.json — run with --threads",
              file=sys.stderr)
        return 1
    if not threaded.get("deterministic", False):
        print("FAIL: per-node order digests diverged across thread counts",
              file=sys.stderr)
        return 1

    hw = data.get("hardware_threads", 1)
    workers = threaded["threads"]
    speedup = threaded["speedup"]
    need = required_speedup(hw, workers)
    print(f"storm scaling: {speedup:.2f}x with {workers} workers on "
          f"{hw} hardware threads"
          + (f" (required: {need:.1f}x)" if need else " (1 core: not enforced)"))
    if need is not None and speedup < need:
        print(f"FAIL: speedup {speedup:.2f}x below required {need:.1f}x",
              file=sys.stderr)
        if os.environ.get("BENCH_GATE_MODE") == "warn":
            print("BENCH_GATE_MODE=warn: reporting only, not failing")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
