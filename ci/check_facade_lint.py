#!/usr/bin/env python3
"""Facade lint: application code must not speak the raw rts protocol.

`rts::AsyncClient` (docs/API.md) is the way to program MAGE; the raw
protocol structs (`proto::InvokeRequest`, `proto::LookupRequest`) are an
implementation detail of the facade and the server.  This grep-based
gate fails the build when:

  * anything under examples/ mentions InvokeRequest or LookupRequest
    (examples are the documented programming model — they must go
    through the facade), or
  * a file under src/rts/ outside the protocol/facade allowlist
    constructs or names those structs (new runtime code must route
    invocations through AsyncClient/MageClient, not hand-roll them).
    The allowlist is matched by path relative to src/rts/, so the
    distributed-collections layer (src/rts/dist/) can never opt out —
    partitions and rebalancers are applications of the facade, not
    extensions of the protocol.

Usage: python3 ci/check_facade_lint.py [repo-root]
"""
import pathlib
import re
import sys

TOKENS = re.compile(r"\b(InvokeRequest|LookupRequest)\b")

# The protocol definition itself, the server that serves the verbs, and
# the two client facades that implement the chase.  Everything else in
# src/rts/ — including all of src/rts/dist/ — is "application-side"
# runtime code and must use the facades.  Entries are paths relative to
# src/rts/ (not basenames) so a nested file can never shadow its way in.
RTS_ALLOWLIST = {
    "protocol.hpp",
    "protocol.cpp",
    "server.hpp",
    "server.cpp",
    "client.hpp",
    "client.cpp",
    "async_client.hpp",
    "async_client.cpp",
}


def scan(path: pathlib.Path) -> list[tuple[int, str]]:
    hits = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if TOKENS.search(line):
            hits.append((lineno, line.strip()))
    return hits


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    failures = []

    for path in sorted((root / "examples").glob("**/*")):
        if path.suffix in (".cpp", ".hpp"):
            for lineno, line in scan(path):
                failures.append(
                    f"{path.relative_to(root)}:{lineno}: raw protocol struct "
                    f"in an example (use rts::AsyncClient): {line}"
                )

    rts_root = root / "src" / "rts"
    for path in sorted(rts_root.glob("**/*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        if path.relative_to(rts_root).as_posix() in RTS_ALLOWLIST:
            continue
        for lineno, line in scan(path):
            failures.append(
                f"{path.relative_to(root)}:{lineno}: raw protocol struct "
                f"outside the facade/protocol allowlist: {line}"
            )

    if failures:
        print("facade lint FAILED:")
        for failure in failures:
            print("  " + failure)
        print(
            "\nRoute invocations through rts::AsyncClient (docs/API.md); "
            "only the protocol/server/client files may touch these structs."
        )
        return 1
    print("facade lint OK: no raw protocol structs outside the allowlist")
    return 0


if __name__ == "__main__":
    sys.exit(main())
