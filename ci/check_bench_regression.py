#!/usr/bin/env python3
"""Bench-regression gate for the RMI hot path.

Compares a freshly measured build/BENCH_hotpath.json against the committed
baseline BENCH_hotpath.json and fails when the steady-state cost per call
(ns/call, the inverse of calls_per_sec) regressed by more than the
threshold.  Also re-enforces the hard contracts the bench itself asserts,
so a tampered or truncated JSON cannot slip through:

  * zero payload bytes deep-copied per call,
  * at most one heap allocation per steady-state send.

Usage:
  check_bench_regression.py <committed.json> <fresh.json> [--max-regression-pct N]

Environment:
  BENCH_GATE_MODE=warn   report the comparison but always exit 0 (escape
                         hatch for known-noisy runners)
"""
import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def ns_per(value_per_sec):
    return 1e9 / value_per_sec


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("committed")
    parser.add_argument("fresh")
    parser.add_argument("--max-regression-pct", type=float, default=15.0)
    args = parser.parse_args()

    committed = load(args.committed)["current"]
    fresh = load(args.fresh)["current"]

    failures = []
    rows = []
    for key, unit in (("calls_per_sec", "ns/call"),
                      ("events_per_sec", "ns/event")):
        base = ns_per(committed[key])
        now = ns_per(fresh[key])
        delta_pct = (now - base) / base * 100.0
        verdict = "ok"
        if delta_pct > args.max_regression_pct:
            verdict = "REGRESSION"
            failures.append(
                f"{key}: {now:.1f} {unit} vs committed {base:.1f} {unit} "
                f"(+{delta_pct:.1f}% > {args.max_regression_pct:.0f}% budget)")
        rows.append((unit, base, now, delta_pct, verdict))

    print(f"{'metric':<10} {'committed':>12} {'fresh':>12} {'delta':>9}")
    for unit, base, now, delta_pct, verdict in rows:
        print(f"{unit:<10} {base:>12.1f} {now:>12.1f} {delta_pct:>+8.1f}% {verdict}")

    if fresh.get("payload_bytes_copied_per_call", 0) != 0:
        failures.append("zero-copy contract broken: payload bytes copied "
                        f"per call = {fresh['payload_bytes_copied_per_call']}")
    if fresh.get("allocations_per_send", 99) > 1.0:
        failures.append("allocation contract broken: "
                        f"{fresh['allocations_per_send']} allocations/send")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        if os.environ.get("BENCH_GATE_MODE") == "warn":
            print("BENCH_GATE_MODE=warn: reporting only, not failing")
            return 0
        return 1
    print("bench gate: no regression beyond "
          f"{args.max_regression_pct:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
