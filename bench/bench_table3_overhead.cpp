// Table 3 — "MAGE Overhead Measurements".
//
// Reproduces the paper's headline experiment: the cost of one invocation
// under each distributed programming model, implemented with mobility
// attributes, on a simulated testbed calibrated to the paper's (two
// dual-450 MHz PIII hosts, 10 Mb/s Ethernet, Sun JDK 1.2.2).
//
//   Model        paper single  paper amortized(10)
//   Java RMI          33 ms          20 ms
//   MAGE RMI          34 ms          23 ms
//   TCOD              66 ms          22 ms
//   TREV             130 ms          82 ms
//   MA               110 ms          63 ms
//
// "Single" runs a cold federation (first-ever invocation: connection
// setup, class shipping, MAGE engine warm-up).  "Amortized" averages 10
// iterations including the cold first one, exactly as the paper describes.
// Absolute numbers come from the calibrated cost model; the *shape* — each
// model a multiple of Java RMI determined by its RMI call count — emerges
// from the protocols themselves.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

struct Measurement {
  double single_ms = 0;
  double amortized_ms = 0;
  std::int64_t warm_rmi_calls = 0;  // RMI calls in one warm iteration
};

// Runs `iterations` of `body(i)` on a fresh system; returns mean ms/iter
// and the RMI call count of the final (warm) iteration.
template <typename Setup, typename Body>
Measurement measure(Setup setup, Body body) {
  Measurement m;
  {
    auto system = make_system();
    setup(*system);
    const auto t0 = system->simulation().now();
    body(*system, 0);
    m.single_ms = common::to_ms(system->simulation().now() - t0);
  }
  {
    constexpr int kIterations = 10;  // the paper's amortization window
    auto system = make_system();
    setup(*system);
    const auto t0 = system->simulation().now();
    std::int64_t calls_before_last = 0;
    for (int i = 0; i < kIterations; ++i) {
      if (i == kIterations - 1) {
        calls_before_last = system->stats().counter("rmi.calls");
      }
      body(*system, i);
    }
    m.amortized_ms =
        common::to_ms(system->simulation().now() - t0) / kIterations;
    m.warm_rmi_calls =
        system->stats().counter("rmi.calls") - calls_before_last;
  }
  return m;
}

constexpr common::NodeId kClient{1};
constexpr common::NodeId kServer{2};

// --- Java RMI: a raw transport call, no MAGE -----------------------------------

Measurement java_rmi() {
  return measure(
      [](rts::MageSystem& system) {
        // A plain RMI server object: increments on every call.
        auto counter = std::make_shared<std::int64_t>(0);
        system.transport(kServer).register_service(
            "app.increment",
            [counter](common::NodeId, const serial::BufferChain&,
                      rmi::Replier replier) {
              serial::Writer w;
              w.write_i64(++*counter);
              replier.ok(w.take());
            });
      },
      [](rts::MageSystem& system, int) {
        (void)system.transport(kClient).call_sync(kServer, "app.increment",
                                                  {});
      });
}

// --- MAGE RMI: the RPC mobility attribute ----------------------------------------

Measurement mage_rmi() {
  return measure(
      [](rts::MageSystem& system) {
        // Deployment: the test object lives on the server; the client's
        // registry knows the binding (RMI-style shared static knowledge).
        system.client(kServer).create_component("testObject", "TestObject");
        system.server(kClient).registry().update_forward("testObject",
                                                         kServer);
        system.warm_all();  // RPC never touches migration machinery anyway
      },
      [](rts::MageSystem& system, int) {
        core::Rpc rpc(system.client(kClient), "testObject", kServer);
        auto stub = rpc.bind();
        (void)stub.invoke<std::int64_t>("increment");
      });
}

// --- TCOD: traditional code-on-demand --------------------------------------------
//
// "The test object's class file ... is migrated to the local host, the
// local host instantiates a test object and invokes the appropriate
// method.  Finally, the results are returned (local)."

Measurement tcod() {
  return measure(
      [](rts::MageSystem& system) {
        system.install_class(kServer, "TestObject");  // origin holds the class
      },
      [](rts::MageSystem& system, int) {
        core::Cod cod(system.client(kClient), "TestObject", "codObject",
                      kServer, core::FactoryMode::Factory);
        auto stub = cod.bind();
        (void)stub.invoke<std::int64_t>("increment");
      });
}

// --- TREV: traditional remote evaluation -------------------------------------------
//
// "For TREV, we do the reverse.  The class file is local and migrated to
// the remote host where it is instantiated and invoked.  The result is
// sent back to the local host."

Measurement trev() {
  return measure(
      [](rts::MageSystem& system) {
        system.install_class(kClient, "TestObject");
      },
      [](rts::MageSystem& system, int) {
        core::Rev rev(system.client(kClient), "TestObject", "revObject",
                      kServer, core::FactoryMode::Factory);
        auto stub = rev.bind();
        (void)stub.invoke<std::int64_t>("increment");
      });
}

// --- MA: mobile agent ---------------------------------------------------------------
//
// "MA is similar to TREV except that the result stays at the remote host."

Measurement ma() {
  return measure(
      [](rts::MageSystem& system) {
        // Ten agent instances staged locally (agents carry their state out).
        for (int i = 0; i < 10; ++i) {
          system.client(kClient).create_component(
              "agent" + std::to_string(i), "TestObject");
        }
      },
      [](rts::MageSystem& system, int i) {
        core::MAgent agent(system.client(kClient),
                           "agent" + std::to_string(i), kServer);
        auto stub = agent.bind();
        stub.invoke_oneway("increment");  // result stays at the remote host
      });
}

struct PaperRow {
  const char* name;
  double paper_single;
  double paper_amortized;
  Measurement (*run)();
};

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage::bench;
  banner("Table 3: MAGE Overhead Measurements (paper vs. reproduction)");

  const PaperRow rows[] = {
      {"Java's RMI", 33, 20, java_rmi},
      {"Mage's RMI", 34, 23, mage_rmi},
      {"Traditional COD (TCOD)", 66, 22, tcod},
      {"Traditional REV (TREV)", 130, 82, trev},
      {"MA", 110, 63, ma},
  };

  Table table({"Distributed Programming Model", "Single paper (ms)",
               "Single measured (ms)", "Amortized(10) paper (ms)",
               "Amortized(10) measured (ms)", "warm RMI calls/iter"});
  double java_warm = 1.0;
  std::vector<Measurement> results;
  for (const auto& row : rows) {
    const auto m = row.run();
    results.push_back(m);
    if (std::string(row.name) == "Java's RMI") java_warm = m.amortized_ms;
    table.add_row({row.name, fmt_ms(row.paper_single, 0),
                   fmt_ms(m.single_ms), fmt_ms(row.paper_amortized, 0),
                   fmt_ms(m.amortized_ms),
                   std::to_string(m.warm_rmi_calls)});
  }
  table.print();

  std::cout << "\nShape checks (the paper's qualitative claims):\n";
  auto check = [](bool ok, const std::string& what) {
    std::cout << "  [" << (ok ? "ok" : "FAIL") << "] " << what << "\n";
    return ok;
  };
  const auto& java = results[0];
  const auto& mage_r = results[1];
  const auto& cod = results[2];
  const auto& rev = results[3];
  const auto& agent = results[4];
  bool all = true;
  all &= check(mage_r.amortized_ms > java.amortized_ms &&
                   mage_r.amortized_ms < java.amortized_ms * 1.4,
               "MAGE RMI is a thin wrapper: slightly above Java RMI");
  all &= check(cod.single_ms > 1.7 * mage_r.single_ms,
               "TCOD single is roughly double an RMI single (class ship)");
  all &= check(cod.amortized_ms < mage_r.amortized_ms * 1.15,
               "TCOD amortized is comparable to an RMI call");
  all &= check(rev.amortized_ms > 3.2 * java.amortized_ms &&
                   rev.amortized_ms < 4.8 * java.amortized_ms,
               "TREV amortized ~ 4 Java RMI calls (the paper: 'REV "
               "involves four Java RMI calls')");
  all &= check(agent.amortized_ms > 2.4 * java.amortized_ms &&
                   agent.amortized_ms < 3.6 * java.amortized_ms,
               "MA amortized ~ 3 Java RMI calls (no result return)");
  all &= check(rev.single_ms > agent.single_ms,
               "TREV single > MA single (result return)");
  all &= check(rev.amortized_ms > agent.amortized_ms,
               "TREV amortized > MA amortized");
  (void)java_warm;
  std::cout << (all ? "\nAll shape checks passed.\n"
                    : "\nSOME SHAPE CHECKS FAILED.\n");
  return all ? 0 : 1;
}
