// Figure 8 — "Mobile Object Locking".
//
// Two nearly simultaneous invocations apply different mobility attributes
// to one shared object; their lock requests carry different computation
// targets.  The harness shows the lock queue serializing them, the
// stay/move classification, and the unfair stay-preference in action,
// with a timeline of grants.
#include "support/bench_util.hpp"

#include <optional>

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Figure 8: mobile object locking — contention timeline");

  auto system = make_system(net::CostModel::jdk122_classic(), 3);
  system->warm_all();
  system->install_class_everywhere("TestObject");
  const common::NodeId host{3}, a{1}, b{2};
  system->client(host).create_component("C", "TestObject",
                                        /*is_public=*/true);

  // A.f and B.g both want C (the paper's example).  A wants to move C to
  // its own namespace (move lock); B wants to run it where it is (stay
  // lock); a second stay-lock request from the host itself demonstrates
  // the unfair preference.
  auto& sim = system->simulation();

  struct Event {
    double at_ms;
    std::string what;
  };
  std::vector<Event> timeline;
  auto log_event = [&](const std::string& what) {
    timeline.push_back({common::to_ms(sim.now()), what});
  };

  // Holder: the host's own activity grabs the lock first.
  auto holder = system->client(host).lock("C", host);
  log_event("host acquires " +
            std::string(holder.kind == rts::LockKind::Stay ? "STAY" : "MOVE") +
            " lock (runs first)");

  std::optional<rts::proto::LockReply> reply_a, reply_b;
  system->client(a).lock_async(host, "C", a, [&](rts::proto::LockReply r) {
    reply_a = r;
    log_event("A granted MOVE lock (target=A)");
  });
  sim.run_for(common::msec(5));
  system->client(b).lock_async(host, "C", host,
                               [&](rts::proto::LockReply r) {
                                 reply_b = r;
                                 log_event("B granted STAY lock (target=host)");
                               });
  sim.run_for(common::msec(60));
  log_event("queue: [A:move, B:stay] — host still holds the lock");

  system->client(host).unlock(holder);
  sim.run_until([&] { return reply_b.has_value(); });
  log_event("host released; B's STAY lock jumped A's earlier MOVE request "
            "(unfair preference: migration is expensive)");

  // B runs in place, then releases.
  {
    core::Cle cle(system->client(b), "C");
    auto stub = cle.bind();
    (void)stub.invoke<std::int64_t>("increment");
    log_event("B invokes C in place under its stay lock");
    system->client(b).unlock_async(host, "C", reply_b->lock_id, [] {});
  }
  sim.run_until([&] { return reply_a.has_value(); });
  log_event("B released; A finally gets its MOVE lock");

  // A moves C home and invokes.
  {
    core::Grev grev(system->client(a), "C", a);
    auto stub = grev.bind();
    (void)stub.invoke<std::int64_t>("increment");
    log_event("A moves C to its namespace and invokes");
    rts::LockHandle handle{"C", host, reply_a->lock_id,
                           rts::LockKind::Move};
    system->client(a).unlock(handle);
    log_event("A releases at the old host (grant outlives the migration)");
  }

  Table table({"t (ms)", "event"});
  for (const auto& event : timeline) {
    table.add_row({fmt_ms(event.at_ms), event.what});
  }
  table.print();

  std::cout << "\nlock grants: stay="
            << system->stats().counter("rts.locks_stay")
            << " move=" << system->stats().counter("rts.locks_move")
            << "; object ends at namespace "
            << system->network().label(
                   [&]() -> common::NodeId {
                     for (auto node : system->nodes()) {
                       if (system->server(node).registry().has_local("C")) {
                         return node;
                       }
                     }
                     return common::kNoNode;
                   }())
            << " with value 2 (both invocations applied, neither lost)\n";

  const bool ok = reply_b.has_value() && reply_a.has_value() &&
                  reply_b->kind == rts::LockKind::Stay &&
                  reply_a->kind == rts::LockKind::Move;
  std::cout << (ok ? "stay/move classification and unfair ordering match "
                     "Section 4.4\n"
                   : "LOCKING BEHAVIOUR MISMATCH\n");
  return ok ? 0 : 1;
}
