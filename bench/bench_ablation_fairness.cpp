// Ablation — lock fairness (Section 4.4).
//
// "Because object migration is so expensive, MAGE's current locking
// implementation unfairly favors invocations that stay lock their
// object."  We run a contended workload — a stream of stay-lock
// invocations at the host racing a stream of move-lock migrations — under
// the unfair (paper) policy and strict FIFO, and report total throughput,
// migrations performed, and move-lock waiting time.  The trade-off the
// paper accepted becomes visible: unfairness buys throughput by starving
// movers.
#include "support/bench_util.hpp"

#include <optional>

namespace mage::bench {
namespace {

struct FairnessResult {
  double makespan_ms;
  std::int64_t migrations;
  double mean_move_wait_ms;
  std::int64_t completed_stays;
};

FairnessResult run(bool fair) {
  auto system = make_system(net::CostModel::jdk122_classic(), 3);
  system->warm_all();
  system->install_class_everywhere("TestObject");
  const common::NodeId host{1}, stayer{2}, mover{3};
  system->client(host).create_component("C", "TestObject",
                                        /*is_public=*/true);
  system->server(host).locks().set_fair(fair);
  auto& sim = system->simulation();

  // Warm both links so connection setup does not bunch the requests and
  // mask the arrival interleaving the policies disagree about.
  system->client(stayer).ping(host);
  system->client(mover).ping(host);

  constexpr int kStayers = 6;
  constexpr int kMovers = 3;

  // Drive all requests as asynchronous activities racing for the lock.
  int completed_stays = 0;
  int completed_moves = 0;
  std::vector<common::SimTime> move_requested(kMovers), move_granted(kMovers);

  // Stay activities: lock(host) -> invoke in place -> unlock.  Requests
  // are staggered so stays and moves interleave in arrival order.
  for (int i = 0; i < kStayers; ++i) {
    sim.schedule_after(i * 12'000, [&, i] {
      (void)i;
      system->client(stayer).lock_async(
          host, "C", host, [&](rts::proto::LockReply reply) {
            if (reply.status != rts::proto::Status::Ok) return;
            // Invoke in place, then unlock (async chain).
            rts::proto::InvokeRequest invoke;
            invoke.name = "C";
            invoke.method = "increment";
            system->transport(stayer).call(
                host, rts::proto::verbs::kInvoke, invoke.encode(),
                [&, reply](rmi::CallResult) {
                  system->client(stayer).unlock_async(
                      host, "C", reply.lock_id, [&] { ++completed_stays; });
                });
          });
    });
  }
  // Move activities: lock(mover) -> (would migrate) -> unlock.  To keep the
  // lock queue the single variable, the mover releases without migrating
  // but we charge a simulated migration cost.
  for (int i = 0; i < kMovers; ++i) {
    sim.schedule_after(6'000 + i * 12'000, [&, i] {
      move_requested[i] = sim.now();
      system->client(mover).lock_async(
          host, "C", mover, [&, i](rts::proto::LockReply reply) {
            if (reply.status != rts::proto::Status::Ok) return;
            move_granted[i] = sim.now();
            system->stats().add("bench.migrations");
            sim.schedule_after(common::msec(40) /* migration cost */, [&,
                                                                       reply] {
              system->client(mover).unlock_async(host, "C", reply.lock_id,
                                                 [&] { ++completed_moves; });
            });
          });
    });
  }

  const auto t0 = sim.now();
  sim.run_until([&] {
    return completed_stays == kStayers && completed_moves == kMovers;
  });

  FairnessResult result{};
  result.makespan_ms = common::to_ms(sim.now() - t0);
  result.migrations = system->stats().counter("bench.migrations");
  double total_wait = 0;
  for (int i = 0; i < kMovers; ++i) {
    total_wait += common::to_ms(move_granted[i] - move_requested[i]);
  }
  result.mean_move_wait_ms = total_wait / kMovers;
  result.completed_stays = completed_stays;
  return result;
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: unfair stay-preference (paper) vs FIFO lock granting");

  const auto unfair = run(false);
  const auto fair = run(true);

  Table table({"policy", "makespan (ms)", "mean move-lock wait (ms)",
               "stay invocations", "migrations"});
  table.add_row({"unfair (paper default)", fmt_ms(unfair.makespan_ms),
                 fmt_ms(unfair.mean_move_wait_ms),
                 std::to_string(unfair.completed_stays),
                 std::to_string(unfair.migrations)});
  table.add_row({"strict FIFO", fmt_ms(fair.makespan_ms),
                 fmt_ms(fair.mean_move_wait_ms),
                 std::to_string(fair.completed_stays),
                 std::to_string(fair.migrations)});
  table.print();

  std::cout << "\nUnder the unfair policy, queued stay locks jump ahead of "
               "earlier move requests: movers wait longer ("
            << fmt_ms(unfair.mean_move_wait_ms) << " vs "
            << fmt_ms(fair.mean_move_wait_ms)
            << " ms) — the starvation risk the paper accepts because "
               "object migration is so much more expensive than an "
               "in-place invocation.\n";
  return 0;
}
