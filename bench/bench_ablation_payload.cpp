// Ablation — object state size vs migration cost.
//
// The paper's test object carries one integer "so its marshalling overhead
// is minimal".  Real components are not minimal: weak migration ships the
// whole heap state through interpreted serialization and a 10 Mb/s wire.
// This sweep shows when moving the computation stops paying for itself —
// the quantitative backbone of MAGE's raison d'être ("computation and
// resources must be dynamically collocated").
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

// Migration latency for an object with `bytes` of heap state.
double migrate_ms(std::int64_t bytes) {
  auto system = make_system(net::CostModel::jdk122_classic(), 2);
  system->warm_all();
  system->install_class_everywhere("Bulky");
  auto& client = system->client(common::NodeId{1});
  client.create_component("blob", "Bulky");
  common::NodeId cloc{1};
  client.invoke<serial::Unit>(cloc, "blob", "resize", bytes);
  // Warm the connection and caches with a tiny round trip first.
  client.ping(common::NodeId{2});

  const auto t0 = system->simulation().now();
  client.move("blob", common::NodeId{2});
  return common::to_ms(system->simulation().now() - t0);
}

// Cost of N remote invocations versus move-then-local for the same N.
std::pair<double, double> rpc_vs_move(std::int64_t state_bytes,
                                      int invocations) {
  double rpc_ms = 0, move_ms = 0;
  {
    auto system = make_system(net::CostModel::jdk122_classic(), 2);
    system->warm_all();
    system->install_class_everywhere("Bulky");
    auto& client = system->client(common::NodeId{1});
    system->client(common::NodeId{2}).create_component("blob", "Bulky");
    common::NodeId cloc{2};
    client.invoke<serial::Unit>(cloc, "blob", "resize", state_bytes);
    const auto t0 = system->simulation().now();
    for (int i = 0; i < invocations; ++i) {
      (void)client.invoke<std::int64_t>(cloc, "blob", "size");
    }
    rpc_ms = common::to_ms(system->simulation().now() - t0);
  }
  {
    auto system = make_system(net::CostModel::jdk122_classic(), 2);
    system->warm_all();
    system->install_class_everywhere("Bulky");
    auto& client = system->client(common::NodeId{1});
    system->client(common::NodeId{2}).create_component("blob", "Bulky");
    common::NodeId cloc{2};
    client.invoke<serial::Unit>(cloc, "blob", "resize", state_bytes);
    const auto t0 = system->simulation().now();
    core::Cod cod(client, "blob");
    auto stub = cod.bind();  // pull it local
    for (int i = 0; i < invocations; ++i) {
      (void)stub.invoke<std::int64_t>("size");
    }
    move_ms = common::to_ms(system->simulation().now() - t0);
  }
  return {rpc_ms, move_ms};
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation A: migration latency vs object state size");
  Table latency({"state (bytes)", "migration (ms)", "of which wire (est. ms)"});
  const auto model = net::CostModel::jdk122_classic();
  for (std::int64_t bytes :
       {0L, 1024L, 8192L, 65536L, 262144L, 1048576L}) {
    latency.add_row({std::to_string(bytes), fmt_ms(migrate_ms(bytes)),
                     fmt_ms(common::to_ms(model.wire_time(
                         static_cast<std::size_t>(bytes))))});
  }
  latency.print();

  banner("Ablation B: N remote invocations vs move-once-then-local "
         "(the colocation crossover)");
  Table crossover({"state (bytes)", "N", "RPC total (ms)",
                   "COD move+local total (ms)", "winner"});
  for (std::int64_t bytes : {1024L, 65536L, 524288L}) {
    for (int n : {1, 3, 10, 30}) {
      const auto [rpc_ms, move_ms] = rpc_vs_move(bytes, n);
      crossover.add_row({std::to_string(bytes), std::to_string(n),
                         fmt_ms(rpc_ms), fmt_ms(move_ms),
                         rpc_ms < move_ms ? "RPC" : "move (COD)"});
    }
  }
  crossover.print();

  std::cout << "\nSmall state or few invocations: stay remote (RPC).  Many "
               "invocations: pull the component local once and go LPC — "
               "the colocation pay-off mobility attributes exist to "
               "capture.  The crossover shifts right as state grows, since "
               "migration cost scales with heap size on a 10 Mb/s wire.\n";
  return 0;
}
