// Ablation — condensing RMI calls (the Section 5 proposal, implemented).
//
// "This condensing can be achieved by better utilizing the in and out
// variables of a single Java RMI call."  Traditional REV costs four RMI
// exchanges per iteration (server resolve, class revalidation,
// instantiate, invoke).  The condensed protocol (mage.exec) folds class
// check, instantiation, invocation and result return into ONE exchange.
// This bench re-runs the TREV cell of Table 3 both ways.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

constexpr common::NodeId kClient{1};
constexpr common::NodeId kServer{2};

struct Cell {
  double single_ms;
  double amortized_ms;
  std::int64_t warm_calls;
};

template <typename Body>
Cell run(Body body) {
  Cell cell{};
  {
    auto system = make_system();
    system->install_class(kClient, "TestObject");
    const auto t0 = system->simulation().now();
    body(*system);
    cell.single_ms = common::to_ms(system->simulation().now() - t0);
  }
  {
    auto system = make_system();
    system->install_class(kClient, "TestObject");
    const auto t0 = system->simulation().now();
    std::int64_t calls_before_last = 0;
    for (int i = 0; i < 10; ++i) {
      if (i == 9) calls_before_last = system->stats().counter("rmi.calls");
      body(*system);
    }
    cell.amortized_ms =
        common::to_ms(system->simulation().now() - t0) / 10;
    cell.warm_calls =
        system->stats().counter("rmi.calls") - calls_before_last;
  }
  return cell;
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: traditional 4-call REV vs condensed single-call exec");

  const Cell traditional = run([](rts::MageSystem& system) {
    core::Rev rev(system.client(kClient), "TestObject", "worker", kServer,
                  core::FactoryMode::Factory);
    (void)rev.bind().invoke<std::int64_t>("increment");
  });
  const Cell condensed = run([](rts::MageSystem& system) {
    (void)system.client(kClient).exec_at<std::int64_t>(
        kServer, "TestObject", "worker", "increment");
  });

  Table table({"protocol", "single (ms)", "amortized(10) (ms)",
               "warm RMI calls/iter"});
  table.add_row({"traditional REV (paper Table 3)",
                 fmt_ms(traditional.single_ms),
                 fmt_ms(traditional.amortized_ms),
                 std::to_string(traditional.warm_calls)});
  table.add_row({"condensed exec (Section 5 proposal)",
                 fmt_ms(condensed.single_ms), fmt_ms(condensed.amortized_ms),
                 std::to_string(condensed.warm_calls)});
  table.print();

  const double speedup = traditional.amortized_ms / condensed.amortized_ms;
  std::cout << "\ncondensing " << traditional.warm_calls
            << " exchanges into " << condensed.warm_calls << " yields a "
            << fmt_ms(speedup, 2)
            << "x warm speedup — confirming the paper's diagnosis that "
               "\"Java's RMI is obviously the dominant cost\".\n";
  return speedup > 2.0 ? 0 : 1;
}
