// Ablation — what would MAGE cost today?
//
// Section 5 closes: "MAGE would directly benefit from having a more
// optimized Java RMI implementation and condensing the number of RMI
// calls ... Being even more ambitious, we could bypass this overhead by
// implementing our own migration protocol directly with TCP/IP."  We rerun
// Table 3's amortized column under a modern cost model (gigabit LAN,
// compiled marshalling) and show the models' *ratios* survive even though
// absolute costs collapse by three orders of magnitude — the model shape
// is protocol-determined, not hardware-determined.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

constexpr common::NodeId kClient{1};
constexpr common::NodeId kServer{2};

template <typename Setup, typename Body>
double amortized_ms(net::CostModel model, Setup setup, Body body) {
  auto system = make_system(model);
  setup(*system);
  constexpr int kIterations = 10;
  const auto t0 = system->simulation().now();
  for (int i = 0; i < kIterations; ++i) body(*system, i);
  return common::to_ms(system->simulation().now() - t0) / kIterations;
}

struct ModelBench {
  const char* name;
  double (*run)(net::CostModel);
};

double run_rmi(net::CostModel model) {
  return amortized_ms(
      model,
      [](rts::MageSystem& s) {
        s.client(kServer).create_component("o", "TestObject");
        s.server(kClient).registry().update_forward("o", kServer);
      },
      [](rts::MageSystem& s, int) {
        core::Rpc rpc(s.client(kClient), "o", kServer);
        (void)rpc.bind().invoke<std::int64_t>("increment");
      });
}

double run_cod(net::CostModel model) {
  return amortized_ms(
      model,
      [](rts::MageSystem& s) { s.install_class(kServer, "TestObject"); },
      [](rts::MageSystem& s, int) {
        core::Cod cod(s.client(kClient), "TestObject", "o", kServer,
                      core::FactoryMode::Factory);
        (void)cod.bind().invoke<std::int64_t>("increment");
      });
}

double run_rev(net::CostModel model) {
  return amortized_ms(
      model,
      [](rts::MageSystem& s) { s.install_class(kClient, "TestObject"); },
      [](rts::MageSystem& s, int) {
        core::Rev rev(s.client(kClient), "TestObject", "o", kServer,
                      core::FactoryMode::Factory);
        (void)rev.bind().invoke<std::int64_t>("increment");
      });
}

double run_ma(net::CostModel model) {
  return amortized_ms(
      model,
      [](rts::MageSystem& s) {
        for (int i = 0; i < 10; ++i) {
          s.client(kClient).create_component("agent" + std::to_string(i),
                                             "TestObject");
        }
      },
      [](rts::MageSystem& s, int i) {
        core::MAgent agent(s.client(kClient), "agent" + std::to_string(i),
                           kServer);
        agent.bind().invoke_oneway("increment");
      });
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: Table 3 amortized costs, 2001 testbed vs modern LAN");

  const ModelBench models[] = {
      {"MAGE RMI", run_rmi},
      {"TCOD", run_cod},
      {"TREV", run_rev},
      {"MA", run_ma},
  };

  const auto classic = net::CostModel::jdk122_classic();
  const auto modern = net::CostModel::modern_lan();

  Table table({"model", "2001 testbed (ms)", "ratio vs RMI",
               "modern LAN (ms)", "ratio vs RMI"});
  double classic_rmi = 0, modern_rmi = 0;
  for (const auto& m : models) {
    const double c = m.run(classic);
    const double n = m.run(modern);
    if (std::string(m.name) == "MAGE RMI") {
      classic_rmi = c;
      modern_rmi = n;
    }
    table.add_row({m.name, fmt_ms(c, 2), fmt_ms(c / classic_rmi, 2) + "x",
                   fmt_ms(n, 3), fmt_ms(n / modern_rmi, 2) + "x"});
  }
  table.print();

  std::cout << "\nAbsolute costs drop ~three orders of magnitude, but the "
               "per-model ratios (TREV ~= 4 RMI, MA ~= 3 RMI, TCOD ~= 1 "
               "RMI) persist: the overhead structure is a property of the "
               "protocols' RMI call counts, exactly as Section 5 argues.\n";
  return 0;
}
