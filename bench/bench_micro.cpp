// Micro-benchmarks (google-benchmark): wall-clock cost of the
// reproduction's own building blocks.  Unlike the table/figure harnesses,
// which report *simulated* 2001 milliseconds, these measure how fast the
// C++ implementation itself runs — serialization, event dispatch, a full
// simulated RMI exchange, migration, and a whole Table 3 cell.
#include <benchmark/benchmark.h>

#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

void BM_SerializeRoundTrip(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Bulky bulky;
  bulky.resize(static_cast<std::int64_t>(size));
  for (auto _ : state) {
    serial::Writer w;
    bulky.serialize(w);
    serial::Reader r(w.bytes());
    Bulky back;
    back.deserialize(r);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(64)->Arg(4096)->Arg(262144);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i % 100, [] {});
    }
    sim.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_SimulatedRmiCall(benchmark::State& state) {
  auto system = make_system(net::CostModel::zero());
  system->transport(common::NodeId{2})
      .register_service("noop",
                        [](common::NodeId, const serial::BufferChain&,
                           rmi::Replier replier) { replier.ok({}); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(system->transport(common::NodeId{1})
                                 .call_sync(common::NodeId{2}, "noop", {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRmiCall);

void BM_RemoteInvocation(benchmark::State& state) {
  auto system = make_system(net::CostModel::zero());
  system->warm_all();
  system->client(common::NodeId{1}).create_component("o", "TestObject");
  system->client(common::NodeId{1}).move("o", common::NodeId{2});
  auto& client = system->client(common::NodeId{1});
  common::NodeId cloc{2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.invoke<std::int64_t>(cloc, "o", "increment"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteInvocation);

void BM_Migration(benchmark::State& state) {
  auto system = make_system(net::CostModel::zero());
  system->warm_all();
  auto& client = system->client(common::NodeId{1});
  client.create_component("o", "TestObject");
  common::NodeId current{1};
  for (auto _ : state) {
    const common::NodeId next{current == common::NodeId{1} ? 2u : 1u};
    client.move("o", next, current);
    current = next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Migration);

void BM_GrevBindInvoke(benchmark::State& state) {
  auto system = make_system(net::CostModel::zero());
  system->warm_all();
  system->install_class_everywhere("TestObject");
  auto& client = system->client(common::NodeId{1});
  client.create_component("o", "TestObject");
  int i = 0;
  for (auto _ : state) {
    const common::NodeId target{(i++ % 2 == 0) ? 2u : 1u};
    core::Grev grev(client, "o", target);
    auto stub = grev.bind();
    benchmark::DoNotOptimize(stub.invoke<std::int64_t>("increment"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrevBindInvoke);

void BM_Table3Cell_TrevAmortized(benchmark::State& state) {
  // Wall-clock cost of regenerating one full Table 3 cell (fresh
  // federation + 10 TREV iterations).
  for (auto _ : state) {
    auto system = make_system();
    system->install_class(common::NodeId{1}, "TestObject");
    for (int i = 0; i < 10; ++i) {
      core::Rev rev(system->client(common::NodeId{1}), "TestObject", "o",
                    common::NodeId{2}, core::FactoryMode::Factory);
      benchmark::DoNotOptimize(rev.bind().invoke<std::int64_t>("increment"));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_Table3Cell_TrevAmortized);

}  // namespace
}  // namespace mage::bench

BENCHMARK_MAIN();
