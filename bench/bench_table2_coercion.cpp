// Table 2 — "Component Location and Programming Model Behavior".
//
// Regenerates the mobility-coercion table *behaviourally*: for every
// (model, component-location) cell we build a fresh federation, place the
// component, bind a real attribute, and classify what actually happened —
// did the component move (Default), did the bind degrade to a plain stub
// (RPC) or a local call (LPC), or did an exception fire?
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

using core::BindAction;
using core::Model;
using core::Situation;

constexpr common::NodeId kSelf{1};
constexpr common::NodeId kTarget{2};
constexpr common::NodeId kElsewhere{3};

common::NodeId place_for(Situation situation) {
  switch (situation) {
    case Situation::Local:
      return kSelf;
    case Situation::RemoteAtTarget:
      return kTarget;
    case Situation::RemoteNotAtTarget:
      return kElsewhere;
  }
  return kSelf;
}

// Runs one cell; returns the observed behaviour as a Table 2 string.
std::string run_cell(Model model, Situation situation) {
  if (model == Model::Cod && situation == Situation::RemoteAtTarget) {
    return "n/a";  // COD's target is the caller: the cell cannot be built
  }
  auto system = make_system(net::CostModel::zero(), 3);
  system->warm_all();
  system->client(place_for(situation)).create_component("obj", "TestObject");
  auto& client = system->client(kSelf);

  std::unique_ptr<core::MobilityAttribute> attribute;
  switch (model) {
    case Model::MobileAgent:
      attribute = std::make_unique<core::MAgent>(client, "obj", kTarget);
      break;
    case Model::Rev:
      attribute = std::make_unique<core::Rev>(client, "obj", kTarget);
      break;
    case Model::Cod:
      attribute = std::make_unique<core::Cod>(client, "obj");
      break;
    case Model::Rpc:
      attribute = std::make_unique<core::Rpc>(client, "obj", kTarget);
      break;
    case Model::Cle:
      attribute = std::make_unique<core::Cle>(client, "obj");
      break;
    default:
      return "?";
  }

  const auto migrations_before = system->stats().counter("rts.migrations");
  try {
    auto handle = attribute->bind();
    (void)handle.invoke<std::int64_t>("increment");
    const bool moved =
        system->stats().counter("rts.migrations") > migrations_before;
    if (moved) return "Default Behavior";
    // No move.  For RPC and CLE, staying put *is* the default behaviour;
    // for the mobile models the bind was coerced — to LPC when the
    // component is already local (COD), to RPC otherwise (MA/REV).
    if (model == Model::Rpc || model == Model::Cle) {
      return "Default Behavior";
    }
    if (handle.location() == kSelf) return "LPC";
    return "RPC";
  } catch (const common::CoercionError&) {
    return "Exception thrown";
  }
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;
  using core::Model;
  using core::Situation;

  banner("Table 2: Component Location and Programming Model Behavior");

  struct PaperRow {
    Model model;
    const char* local;
    const char* at_target;
    const char* not_at_target;
  };
  const PaperRow paper[] = {
      {Model::MobileAgent, "Default Behavior", "RPC", "Default Behavior"},
      {Model::Rev, "Default Behavior", "RPC", "Default Behavior"},
      {Model::Cod, "LPC", "n/a", "Default Behavior"},
      {Model::Rpc, "Exception thrown", "Default Behavior",
       "Exception thrown"},
      {Model::Cle, "Default Behavior", "Default Behavior",
       "Default Behavior"},
  };

  Table table({"Model", "Local", "Remote, At Target",
               "Remote, Not At Target", "matches paper"});
  bool all_match = true;
  for (const auto& row : paper) {
    const std::string local = run_cell(row.model, Situation::Local);
    const std::string at = run_cell(row.model, Situation::RemoteAtTarget);
    const std::string not_at =
        run_cell(row.model, Situation::RemoteNotAtTarget);
    const bool match = local == row.local && at == row.at_target &&
                       not_at == row.not_at_target;
    all_match &= match;
    table.add_row({core::model_name(row.model), local, at, not_at,
                   match ? "yes" : "NO"});
  }
  table.print();

  std::cout << (all_match
                    ? "\nEvery cell of Table 2 reproduced behaviourally.\n"
                    : "\nMISMATCH against the paper's Table 2.\n");
  return all_match ? 0 : 1;
}
