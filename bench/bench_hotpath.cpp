// Hot-path benchmark: the RMI/simulation spine under load.
//
// Two workloads, measured in *wall-clock* time (not simulated time):
//
//   1. RMI storm — 100k echo calls with a 4 KB payload through the full
//      spine (EventQueue -> Network -> Transport -> serial), reporting
//      calls/sec, payload bytes deep-copied per call, and heap allocations
//      per send (counted via a replaced global operator new);
//   2. event churn — 1M schedule/pop cycles through the event queue,
//      reporting events/sec.
//
// Two contracts are asserted, not just measured: a steady-state call
// deep-copies ZERO payload bytes, and a steady-state send performs at most
// ONE heap allocation (the envelope header block).
//
// Results are written to BENCH_hotpath.json next to the working directory so
// the perf trajectory of this spine is tracked across PRs.  The `baseline`
// block is the measurement taken on the pre-Buffer deep-copying spine
// (recorded once, from the same machine, at the commit that introduced this
// bench); `current` is re-measured on every run.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/alloc_counter.hpp"
#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"
#include "rmi/transport.hpp"
#include "sim/simulation.hpp"

namespace {

using mage::common::alloc_count;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct StormResult {
  double calls_per_sec = 0;
  double bytes_copied_per_call = 0;
  double allocations_per_send = 0;
};

constexpr int kCalls = 100'000;
constexpr std::size_t kPayloadBytes = 4096;
constexpr std::int64_t kChurnEvents = 1'000'000;

// Pre-optimisation spine, measured on the dev container at the commit that
// introduced this bench (deep-copying payload vectors,
// shared_ptr<std::function> events, std::map dispatch, un-cancellable retry
// timers).  The old spine had no copy-counter hook; per-call copy volume
// was ~8 payload copies (see docs/PERF.md).
constexpr double kBaselineCallsPerSec = 276285;
constexpr double kBaselineEventsPerSec = 11673676;

// Measured with a reply cache smaller than the call count, warmed past its
// capacity, so the whole measured loop runs in the long-run regime: entry
// ring wrapped and continuously evicting.  That is where the allocation
// budget must hold (the ring's one-time append-only fill is warm-up).
constexpr std::size_t kCacheCapacity = 1024;

StormResult run_rmi_storm() {
  using namespace mage;
  sim::Simulation sim(42);
  net::Network net(sim, net::CostModel::zero());
  const auto a = net.add_node("client");
  const auto b = net.add_node("server");
  rmi::Transport ta(net, a, kCacheCapacity);
  rmi::Transport tb(net, b, kCacheCapacity);

  const common::VerbId echo = common::intern_verb("echo");
  tb.register_service(echo,
                      [](common::NodeId, const serial::BufferChain& body,
                         rmi::Replier replier) { replier.ok(body); });

  const serial::Buffer payload(
      std::vector<std::uint8_t>(kPayloadBytes, 0x5A));

  // Warm up: connection setup, allocator, event pool, stats handles, and
  // 2x the reply-cache capacity so both entry rings have wrapped.
  for (std::size_t i = 0; i < 2 * kCacheCapacity; ++i) {
    (void)ta.call_sync(b, echo, payload);
  }

  serial::Buffer::reset_copy_counters();
  rmi::Envelope::reset_header_counters();
  const std::uint64_t allocs_before = alloc_count();
  const auto start = Clock::now();
  for (int i = 0; i < kCalls; ++i) {
    (void)ta.call_sync(b, echo, payload);
  }
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = alloc_count() - allocs_before;

  StormResult r;
  r.calls_per_sec = kCalls / elapsed;
  r.bytes_copied_per_call =
      static_cast<double>(serial::Buffer::deep_copy_bytes()) / kCalls;
  // Two sends per call round trip: request + reply.
  r.allocations_per_send = static_cast<double>(allocs) / (2.0 * kCalls);
  // The zero-copy contract: a steady-state RMI call must not deep-copy a
  // single payload byte anywhere in the spine.
  if (serial::Buffer::deep_copy_count() != 0) {
    std::cerr << "FAIL: " << serial::Buffer::deep_copy_count()
              << " payload deep-copies on the steady-state path\n";
    std::exit(1);
  }
  // The allocation contract: a steady-state send is at most one heap
  // allocation (the envelope header block).
  if (r.allocations_per_send > 1.0) {
    std::cerr << "FAIL: " << r.allocations_per_send
              << " allocations per steady-state send (budget: 1)\n";
    std::exit(1);
  }
  // The framing contract: every steady-state echo send (single-buffer
  // body, request and reply alike) must take the single-fragment fast
  // path — 2 fast headers per call, 0 list headers.
  if (rmi::Envelope::list_path_headers() != 0 ||
      rmi::Envelope::fast_path_headers() !=
          static_cast<std::uint64_t>(2 * kCalls)) {
    std::cerr << "FAIL: single-fragment fast path not engaged: "
              << rmi::Envelope::fast_path_headers() << " fast / "
              << rmi::Envelope::list_path_headers() << " list headers over "
              << kCalls << " calls (want " << 2 * kCalls << " / 0)\n";
    std::exit(1);
  }
  return r;
}

// A self-perpetuating timer: each firing reschedules itself, so the queue
// stays warm and every cycle is one schedule + one pop.  A plain functor,
// like the raw lambdas the transport/network layers schedule.
struct Tick {
  mage::sim::Simulation& sim;
  std::int64_t& remaining;
  void operator()() const {
    if (--remaining <= 0) return;
    sim.schedule_after(1, Tick{sim, remaining});
  }
};

double run_event_churn() {
  using namespace mage;
  sim::Simulation sim(7);

  std::int64_t remaining = kChurnEvents;
  const auto start = Clock::now();
  for (int i = 0; i < 64; ++i) sim.schedule_after(1, Tick{sim, remaining});
  sim.run_until_idle();
  const double elapsed = seconds_since(start);
  return static_cast<double>(kChurnEvents) / elapsed;
}

}  // namespace

int main() {
  const StormResult storm = run_rmi_storm();
  const double events_per_sec = run_event_churn();

  std::cout << "rmi storm:    " << static_cast<std::int64_t>(storm.calls_per_sec)
            << " calls/sec (" << kCalls << " calls, " << kPayloadBytes
            << " B payload)\n";
  std::cout << "              " << storm.bytes_copied_per_call
            << " payload bytes deep-copied per call\n";
  std::cout << "              " << storm.allocations_per_send
            << " heap allocations per send\n";
  std::cout << "event churn:  " << static_cast<std::int64_t>(events_per_sec)
            << " events/sec (" << kChurnEvents << " events)\n";
  std::cout << "speedup:      " << storm.calls_per_sec / kBaselineCallsPerSec
            << "x calls/sec, " << events_per_sec / kBaselineEventsPerSec
            << "x events/sec vs pre-optimisation baseline\n";

  std::ofstream json("BENCH_hotpath.json");
  json << "{\n"
       << "  \"bench\": \"hotpath\",\n"
       << "  \"calls\": " << kCalls << ",\n"
       << "  \"payload_bytes\": " << kPayloadBytes << ",\n"
       << "  \"churn_events\": " << kChurnEvents << ",\n"
       << "  \"baseline\": {\n"
       << "    \"calls_per_sec\": " << kBaselineCallsPerSec << ",\n"
       << "    \"events_per_sec\": " << kBaselineEventsPerSec << "\n"
       << "  },\n"
       << "  \"current\": {\n"
       << "    \"calls_per_sec\": " << storm.calls_per_sec << ",\n"
       << "    \"events_per_sec\": " << events_per_sec << ",\n"
       << "    \"payload_bytes_copied_per_call\": "
       << storm.bytes_copied_per_call << ",\n"
       << "    \"allocations_per_send\": " << storm.allocations_per_send
       << ",\n"
       << "    \"calls_speedup\": " << storm.calls_per_sec / kBaselineCallsPerSec
       << ",\n"
       << "    \"events_speedup\": " << events_per_sec / kBaselineEventsPerSec
       << "\n"
       << "  }\n"
       << "}\n";
  std::cout << "wrote BENCH_hotpath.json\n";
  return 0;
}
