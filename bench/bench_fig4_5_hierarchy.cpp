// Figures 4 & 5 — the MobilityAttribute abstract class and its hierarchy.
//
// These figures are code artifacts; their executable analogue is the live
// hierarchy itself.  This harness instantiates every built-in attribute
// against a federation and prints, for each: its class, its design-space
// triple, its bind() contract, and the abstract interface every one of
// them shares — regenerating the figures from the running system.
#include "support/bench_util.hpp"

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Figure 4: the MobilityAttribute abstract class (live interface)");
  std::cout <<
      "  class MobilityAttribute {\n"
      "    RemoteHandle bind();                 // find, coerce, move, stub\n"
      "    RemoteHandle bind(ComponentName);    // rebind to another component\n"
      "    NodeId find();                       // current location (re-found\n"
      "                                         //   when shared, Section 3.5)\n"
      "    bool is_shared();                    // public vs private component\n"
      "    virtual Model model() = 0;\n"
      "    virtual ModelTriple triple();        // <Location, Target, Moves>\n"
      "    virtual NodeId target();\n"
      "   protected:\n"
      "    virtual RemoteHandle do_bind() = 0;  // the model's behaviour\n"
      "  };\n";

  banner("Figure 5: the concrete hierarchy, verified live");

  auto system = make_system(net::CostModel::zero(), 3);
  system->warm_all();
  system->install_class_everywhere("TestObject");
  const common::NodeId n1{1}, n2{2};
  auto& client = system->client(n1);
  client.create_component("obj", "TestObject");

  core::Lpc lpc(client, "obj");
  core::Rpc rpc(client, "obj", n1);
  core::Cod cod(client, "obj");
  core::Rev rev(client, "obj", n2);
  core::Grev grev(client, "obj", n2);
  core::Cle cle(client, "obj");
  core::MAgent ma(client, "obj", n2);

  struct Row {
    core::MobilityAttribute* attr;
    const char* bind_contract;
  };
  const Row rows[] = {
      {&lpc, "requires local; plain local call"},
      {&rpc, "stub to the immobile object; throws off-target"},
      {&cod, "pull component into the caller's namespace"},
      {&rev, "push component to target, single hop, synchronous"},
      {&grev, "move from ANY namespace to ANY target"},
      {&cle, "find it; execute wherever it is"},
      {&ma, "weak-migrate along an itinerary; async invocations"},
  };

  Table table({"class", "model()", "triple()", "bind() contract"});
  for (const auto& row : rows) {
    table.add_row({core::model_name(row.attr->model()),
                   core::model_name(row.attr->model()),
                   core::to_string(row.attr->triple()),
                   row.bind_contract});
  }
  table.print();

  // Prove the hierarchy is substitutable: drive every attribute through
  // the abstract base pointer.
  std::vector<core::MobilityAttribute*> all = {&cle, &cod, &grev, &ma};
  std::int64_t value = 0;
  for (auto* attr : all) {
    auto handle = attr->bind();
    value = handle.invoke<std::int64_t>("increment");
  }
  std::cout << "\npolymorphic bind through the base class across "
            << all.size() << " models: counter reached " << value
            << " (one shared object, four models, zero code changes)\n";
  return value == 4 ? 0 : 1;
}
