// Ablation — RMI call accounting (Section 5's discussion).
//
// "Java's RMI is obviously the dominant cost in our MAGE implementation.
// MAGE would directly benefit from ... condensing the number of RMI calls
// in the MAGE implementation."  This harness measures exactly that: RMI
// calls and wire bytes per warm bind+invoke for every model, then predicts
// each model's latency from the call count alone and compares with the
// measured latency — showing call count explains nearly all of the cost.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

constexpr common::NodeId kClient{1};
constexpr common::NodeId kServer{2};

struct Accounting {
  std::int64_t rmi_calls = 0;
  std::int64_t bytes = 0;
  double warm_ms = 0;
};

template <typename Setup, typename Iter>
Accounting account(Setup setup, Iter iteration) {
  auto system = make_system();
  setup(*system);
  // Warm everything with two throwaway iterations.
  iteration(*system, 0);
  iteration(*system, 1);
  const auto calls0 = system->stats().counter("rmi.calls");
  const auto bytes0 = system->stats().counter("net.bytes_sent");
  const auto t0 = system->simulation().now();
  iteration(*system, 2);
  Accounting acc;
  acc.rmi_calls = system->stats().counter("rmi.calls") - calls0;
  acc.bytes = system->stats().counter("net.bytes_sent") - bytes0;
  acc.warm_ms = common::to_ms(system->simulation().now() - t0);
  return acc;
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: RMI calls per warm iteration explain Table 3's shape");

  struct Row {
    const char* name;
    Accounting acc;
  };
  std::vector<Row> rows;

  rows.push_back({"MAGE RMI (RPC attribute)",
                  account(
                      [](rts::MageSystem& s) {
                        s.client(kServer).create_component("o", "TestObject");
                        s.server(kClient).registry().update_forward("o",
                                                                    kServer);
                      },
                      [](rts::MageSystem& s, int) {
                        core::Rpc rpc(s.client(kClient), "o", kServer);
                        (void)rpc.bind().invoke<std::int64_t>("increment");
                      })});
  rows.push_back({"TCOD (factory)",
                  account(
                      [](rts::MageSystem& s) {
                        s.install_class(kServer, "TestObject");
                      },
                      [](rts::MageSystem& s, int) {
                        core::Cod cod(s.client(kClient), "TestObject", "o",
                                      kServer, core::FactoryMode::Factory);
                        (void)cod.bind().invoke<std::int64_t>("increment");
                      })});
  rows.push_back({"TREV (factory)",
                  account(
                      [](rts::MageSystem& s) {
                        s.install_class(kClient, "TestObject");
                      },
                      [](rts::MageSystem& s, int) {
                        core::Rev rev(s.client(kClient), "TestObject", "o",
                                      kServer, core::FactoryMode::Factory);
                        (void)rev.bind().invoke<std::int64_t>("increment");
                      })});
  rows.push_back({"MA (agent, one-way)",
                  account(
                      [](rts::MageSystem& s) {
                        for (int i = 0; i < 8; ++i) {
                          s.client(kClient).create_component(
                              "agent" + std::to_string(i), "TestObject");
                        }
                      },
                      [](rts::MageSystem& s, int i) {
                        core::MAgent agent(s.client(kClient),
                                           "agent" + std::to_string(i),
                                           kServer);
                        agent.bind().invoke_oneway("increment");
                      })});
  rows.push_back({"GREV (object move)",
                  account(
                      [](rts::MageSystem& s) {
                        s.client(kClient).create_component("o", "TestObject");
                      },
                      [](rts::MageSystem& s, int i) {
                        // Bounce between nodes so every bind really moves.
                        const common::NodeId target =
                            (i % 2 == 0) ? kServer : kClient;
                        core::Grev grev(s.client(kClient), "o", target);
                        (void)grev.bind().invoke<std::int64_t>("increment");
                      })});
  rows.push_back({"CLE (find + invoke)",
                  account(
                      [](rts::MageSystem& s) {
                        s.client(kClient).create_component("o", "TestObject",
                                                           true);
                        s.client(kClient).move("o", kServer);
                      },
                      [](rts::MageSystem& s, int) {
                        core::Cle cle(s.client(kClient), "o");
                        (void)cle.bind().invoke<std::int64_t>("increment");
                      })});

  // One raw RMI round trip under the same cost model, for the prediction.
  const double rmi_rt_ms = [] {
    auto system = make_system();
    system->transport(kServer).register_service(
        "noop", [](common::NodeId, const serial::BufferChain&,
                   rmi::Replier replier) { replier.ok({}); });
    (void)system->transport(kClient).call_sync(kServer, "noop", {});
    const auto t0 = system->simulation().now();
    (void)system->transport(kClient).call_sync(kServer, "noop", {});
    return common::to_ms(system->simulation().now() - t0);
  }();

  Table table({"model", "RMI calls/iter", "wire bytes/iter",
               "measured warm (ms)", "predicted = calls x RMI (ms)",
               "prediction error"});
  for (const auto& row : rows) {
    const double predicted = static_cast<double>(row.acc.rmi_calls) *
                             rmi_rt_ms;
    const double err =
        100.0 * (row.acc.warm_ms - predicted) / row.acc.warm_ms;
    table.add_row({row.name, std::to_string(row.acc.rmi_calls),
                   std::to_string(row.acc.bytes), fmt_ms(row.acc.warm_ms),
                   fmt_ms(predicted), fmt_ms(err) + "%"});
  }
  table.print();
  std::cout << "\none warm Java-RMI round trip = " << fmt_ms(rmi_rt_ms)
            << " ms; per-model latency is within a few percent of (call "
               "count x RMI RT) — the paper's explanation of Table 3.\n";
  return 0;
}
