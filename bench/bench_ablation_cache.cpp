// Ablation — class caching (Section 4.2).
//
// "MAGE currently clones classes, leaving behind a copy of each object's
// class that visited a particular node.  Caching class definitions in this
// way is an optimization that can speed up object migration."  We measure
// the round-trip migration latency of an object bouncing between two
// namespaces with the class cache enabled vs disabled, across class-image
// sizes, to quantify that optimization.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

double bounce_latency_ms(bool caching, std::uint32_t code_size) {
  auto system = std::make_unique<rts::MageSystem>(
      net::CostModel::jdk122_classic());
  const auto a = system->add_node("a");
  const auto b = system->add_node("b");
  rts::ClassBuilder<TestObject>(system->world(), "TestObject", code_size)
      .method("increment", &TestObject::increment);
  system->warm_all();
  for (auto node : {a, b}) {
    system->server(node).class_cache().set_caching_enabled(caching);
  }
  auto& client = system->client(a);
  client.create_component("o", "TestObject");
  client.move("o", b);  // first hop ships the class either way
  client.move("o", a);

  constexpr int kRounds = 10;
  const auto t0 = system->simulation().now();
  for (int i = 0; i < kRounds; ++i) {
    client.move("o", b);
    client.move("o", a);
  }
  return common::to_ms(system->simulation().now() - t0) / (2 * kRounds);
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: class cache on/off vs class-image size");

  Table table({"class image (bytes)", "migration, cache ON (ms)",
               "migration, cache OFF (ms)", "cache speedup"});
  for (std::uint32_t size : {512u, 2048u, 8192u, 32768u, 131072u}) {
    const double on = bounce_latency_ms(true, size);
    const double off = bounce_latency_ms(false, size);
    table.add_row({std::to_string(size), fmt_ms(on), fmt_ms(off),
                   fmt_ms(off / on, 2) + "x"});
  }
  table.print();

  std::cout << "\nWith caching off, every arrival re-fetches the class "
               "image (one extra RMI call plus the image bytes at 10 Mb/s "
               "plus defineClass); the gap widens with class size — the "
               "optimization the paper banks on, and the reason it flags "
               "static fields / scalability as open issues.\n";
  return 0;
}
