// Figure 1 — "Distributed Programming Models": RPC, COD, REV, MA.
//
// The paper's figure shows, for each classical model, which party moves
// (component C, program P, resource R) and where the computation happens.
// We regenerate it empirically: drive each model once over a traced
// network and print the wire-level message sequence plus the before/after
// location of the component — the executable analogue of the diagram.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

constexpr common::NodeId kA{1};  // namespace A: the program P
constexpr common::NodeId kB{2};  // namespace B: remote namespace / resource

void print_trace(rts::MageSystem& system, const std::string& skip_verb = "") {
  Table table({"#", "from", "to", "message", "bytes"});
  int i = 1;
  for (const auto& entry : system.network().trace()) {
    if (entry.dropped) continue;
    if (!skip_verb.empty() && entry.verb.find(skip_verb) == 0) continue;
    table.add_row({std::to_string(i++),
                   system.network().label(entry.from),
                   system.network().label(entry.to), entry.verb,
                   std::to_string(entry.wire_size)});
  }
  table.print();
}

common::NodeId component_location(rts::MageSystem& system,
                                  const std::string& name) {
  for (auto node : system.nodes()) {
    if (system.server(node).registry().has_local(name)) return node;
  }
  return common::kNoNode;
}

void scenario_rpc() {
  banner("Figure 1(a): Remote Procedure Call — C stays at B, P calls it");
  auto system = make_system(net::CostModel::zero(), 2);
  system->warm_all();
  system->client(kB).create_component("C", "TestObject");
  system->server(kA).registry().update_forward("C", kB);
  system->network().set_tracing(true);

  core::Rpc rpc(system->client(kA), "C", kB);
  auto stub = rpc.bind();
  (void)stub.invoke<std::int64_t>("increment");

  print_trace(*system);
  std::cout << "component C: at " << system->network().label(kB)
            << " before, at "
            << system->network().label(component_location(*system, "C"))
            << " after (never moved)\n";
}

void scenario_cod() {
  banner("Figure 1(b): Code on Demand — C downloaded into A, runs locally");
  auto system = make_system(net::CostModel::zero(), 2);
  system->warm_all();
  system->install_class(kB, "TestObject");
  system->network().set_tracing(true);

  core::Cod cod(system->client(kA), "TestObject", "C", kB,
                core::FactoryMode::Factory);
  auto stub = cod.bind();
  (void)stub.invoke<std::int64_t>("increment");

  print_trace(*system);
  std::cout << "component C: class originated at "
            << system->network().label(kB) << ", instantiated and executed at "
            << system->network().label(component_location(*system, "C"))
            << " (the invocation crossed no wire)\n";
}

void scenario_rev() {
  banner("Figure 1(c): Remote Evaluation — P moves C to B, computes there");
  auto system = make_system(net::CostModel::zero(), 2);
  system->warm_all();
  system->install_class(kA, "TestObject");
  system->network().set_tracing(true);

  core::Rev rev(system->client(kA), "TestObject", "C", kB,
                core::FactoryMode::Factory);
  auto stub = rev.bind();
  (void)stub.invoke<std::int64_t>("increment");  // result returns to A

  print_trace(*system);
  std::cout << "component C: class originated at "
            << system->network().label(kA) << ", executed at "
            << system->network().label(component_location(*system, "C"))
            << "; result returned to " << system->network().label(kA)
            << "\n";
}

void scenario_ma() {
  banner("Figure 1(d): Mobile Agent — C moves itself to B and keeps running");
  auto system = make_system(net::CostModel::zero(), 2);
  system->warm_all();
  system->client(kA).create_component("C", "TestObject");
  system->network().set_tracing(true);

  core::MAgent agent(system->client(kA), "C", kB);
  auto stub = agent.bind();
  stub.invoke_oneway("increment");  // asynchronous; result stays at B

  print_trace(*system);
  std::cout << "component C: at " << system->network().label(kA)
            << " before, at "
            << system->network().label(component_location(*system, "C"))
            << " after; the result stayed at "
            << system->network().label(kB) << " (fetch_result -> "
            << stub.fetch_result<std::int64_t>() << ")\n";
}

}  // namespace
}  // namespace mage::bench

int main() {
  mage::bench::scenario_rpc();
  mage::bench::scenario_cod();
  mage::bench::scenario_rev();
  mage::bench::scenario_ma();
  std::cout << "\nEach trace shows the mobility semantics of Figure 1: who "
               "moves (code, object, or nothing) and where execution "
               "happens.\n";
  return 0;
}
