// Figure 3 — "Current Location Evaluation".
//
// "P finds C to make its invocation request."  We reproduce the paper's
// printer-management scenario: a job controller migrates a print-server
// component around the network in response to printer availability, while
// a client that does not care which printer it uses CLE-binds and invokes.
// The client's CLE attribute refers to the *same component* across
// invocations and namespaces — the property the paper contrasts with
// Jini's destroy-and-recreate.
#include "support/bench_util.hpp"

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Figure 3: CLE finds C wherever the controller put it");

  auto system = make_system(net::CostModel::jdk122_classic(), 4);
  system->warm_all();
  const common::NodeId clientNode{1};
  system->install_class_everywhere("TestObject");
  // The print-server component starts on printer host 2; it is public —
  // the controller and the clients share it.
  system->client(common::NodeId{2})
      .create_component("printServer", "TestObject", /*is_public=*/true);

  core::Cle cle(system->client(clientNode), "printServer");

  Table table({"bind#", "controller moved C to", "CLE found C at",
               "invoke result", "bind+invoke latency (ms)",
               "same object?"});
  // The controller bounces the component around; "users do not care which
  // printer they use".
  const common::NodeId schedule[] = {common::NodeId{2}, common::NodeId{3},
                                     common::NodeId{4}, common::NodeId{3},
                                     common::NodeId{2}};
  bool all_ok = true;
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < std::size(schedule); ++i) {
    // Job controller (a different activity, on node 4) migrates the
    // component in response to "printer availability".
    system->client(common::NodeId{4}).move("printServer", schedule[i]);

    const auto t0 = system->simulation().now();
    auto stub = cle.bind();
    const auto result = stub.invoke<std::int64_t>("increment");
    const auto dt = system->simulation().now() - t0;

    ++expected;
    // Monotonic counter value proves it is the same object every time,
    // not a fresh instance per namespace (the Jini contrast).
    const bool ok = stub.location() == schedule[i] && result == expected;
    all_ok &= ok;
    table.add_row({std::to_string(i + 1),
                   system->network().label(schedule[i]),
                   system->network().label(stub.location()),
                   std::to_string(result), fmt_ms(common::to_ms(dt)),
                   result == expected ? "yes" : "NO"});
  }
  table.print();

  std::cout << "\nmigrations performed by the controller: "
            << system->stats().counter("rts.migrations")
            << "; migrations performed by CLE: 0 (CLE never moves "
               "components)\n";
  std::cout << (all_ok ? "CLE invoked the same live component in every "
                         "namespace it visited.\n"
                       : "CLE FAILED to track the component.\n");
  return all_ok ? 0 : 1;
}
