// Figure 2 — "Generalized Remote Evaluation".
//
// "P requests component C move from its current namespace D to the
// computation target B, where the computation occurs.  When the
// computation completes, P receives the result."  The point of GREV is
// that it works for *any* initial placement of C — we sweep all of them
// (including the degenerate ones where C starts at the target or at P)
// and show a single attribute handles every case, where classical REV or
// COD each cover only one.
#include "support/bench_util.hpp"

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Figure 2: GREV moves C from any namespace D to the target B");

  struct Case {
    const char* description;
    int start_node;   // where C starts
    int target_node;  // computation target B
    const char* classical_equivalent;
  };
  const Case cases[] = {
      {"C at third party D, target B", 3, 2, "none (GREV only)"},
      {"C local at P, target B", 1, 2, "REV"},
      {"C remote at B, target P", 2, 1, "COD"},
      {"C already at target B", 2, 2, "RPC (coerced)"},
      {"C at P, target P", 1, 1, "LPC-like (no move)"},
  };

  Table table({"configuration", "C before", "C after", "result",
               "migrations", "classical equivalent"});
  bool all_ok = true;
  for (const auto& c : cases) {
    auto system = make_system(net::CostModel::zero(), 3);
    system->warm_all();
    system->install_class_everywhere("TestObject");
    const common::NodeId start{static_cast<std::uint32_t>(c.start_node)};
    const common::NodeId target{static_cast<std::uint32_t>(c.target_node)};
    system->client(start).create_component("C", "TestObject",
                                           /*is_public=*/true);

    core::Grev grev(system->client(common::NodeId{1}), "C", target);
    auto stub = grev.bind();
    const auto result = stub.invoke<std::int64_t>("increment");

    common::NodeId after = common::kNoNode;
    for (auto node : system->nodes()) {
      if (system->server(node).registry().has_local("C")) after = node;
    }
    const bool ok = after == target && result == 1;
    all_ok &= ok;
    table.add_row({c.description, system->network().label(start),
                   system->network().label(after), std::to_string(result),
                   std::to_string(system->stats().counter("rts.migrations")),
                   c.classical_equivalent});
  }
  table.print();

  std::cout << (all_ok ? "\nGREV delivered the computation to its target in "
                         "every configuration — the generality Figure 2 "
                         "illustrates.\n"
                       : "\nGREV FAILED in some configuration.\n");
  return all_ok ? 0 : 1;
}
