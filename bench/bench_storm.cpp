// N-node all-to-all RMI storm: the scale-out stressor for the messaging
// spine (ROADMAP: "scale benches past 2 nodes", then "use real cores").
//
// Topology: N fully meshed nodes, every ordered pair (src, dst) a live
// link.  Each link issues kCallsPerLink echo calls with a windowed pipeline
// (kWindow outstanding per link, the completion callback launches the next
// call), so all N*(N-1) links stay saturated while pending tables and the
// event queue stay bounded.
//
// What the storm exercises that the 2-node hotpath bench cannot:
//
//   * reply-cache ring eviction — transports run with a deliberately small
//     cache (kCacheCapacity), so each node's at-most-once ring wraps many
//     times under (N-1)*kCallsPerLink inbound requests; the run fails if
//     no evictions occurred, and at-most-once must still hold (every call
//     completes exactly once);
//   * per-link ordering floors — each payload carries a per-link sequence
//     number and every service asserts FIFO delivery per (src, dst) link
//     (the simulated network's TCP in-order contract under interleaving
//     from N-1 concurrent senders);
//   * completion-wakeup scaling — one driver predicate ("all done") over a
//     storm of hundreds of thousands of events; predicate checks are
//     recorded so docs/PERF.md can track checks-per-event.
//
// Two execution modes:
//
//   bench_storm [N]                the classic single-queue driver ladder
//                                  (default 4/8/16; one N = CI smoke);
//   bench_storm N --threads T      the sharded engine (sim::ShardedSim,
//                                  one event-queue shard per node, per-link
//                                  mailboxes, conservative lookahead) run
//                                  at 1 worker and again at T workers on
//                                  the same seed.  Records single- and
//                                  multi-thread throughput + speedup, and
//                                  FAILS unless both runs produce an
//                                  identical per-node delivery order
//                                  (FNV digest per receiving node) — the
//                                  determinism contract at any thread
//                                  count.
//   ... --chaos                    additionally re-runs the sharded storm
//                                  under a fixed net::FaultSchedule (loss
//                                  bursts, a partition/heal, rolling node
//                                  crashes/restarts, applied at window
//                                  boundaries) at 1 and T workers: the
//                                  degraded-mode scaling curve.  The chaos
//                                  mesh also hosts the HA control plane —
//                                  a 3-member director quorum (rts::
//                                  Director + deterministic election) on
//                                  nodes 0-2, every one of which crashes
//                                  at some point, plus a resolver client
//                                  on node 3 probing the quorum throughout
//                                  — so the JSON records election and
//                                  directory-failover latency in sim time
//                                  under the same schedule.  FAILS unless
//                                  the chaos runs are digest-identical
//                                  across worker counts, every call
//                                  completed (nothing lost after heal),
//                                  every request executed exactly once
//                                  (execution counters, adequately sized
//                                  reply cache => zero eviction-caused
//                                  re-executions), the wire-FIFO self-
//                                  check saw zero violations, and the
//                                  control plane demonstrably failed over
//                                  (elections held, client failovers).
//   ... --glb                      additionally runs the lifeline GLB
//                                  workload (bench/support/glb_harness.hpp:
//                                  unbalanced tree expansion over an
//                                  rts::DistMap whose partitions all start
//                                  on two nodes, per-node lifeline
//                                  rebalancers stealing them apart, loss +
//                                  partition chaos racing the migrations)
//                                  per seed at 1 and 8 workers.  The JSON
//                                  gains a "glb" block; FAILS unless every
//                                  run drains exactly-once (per-key exec
//                                  counters), digests are identical across
//                                  worker counts, and at least one load-
//                                  driven partition migration happened.
//   ... --wan                      additionally runs the WAN scaling curves
//                                  (64- and 128-node site-clustered meshes
//                                  over CostModel::wan_site(), affinity
//                                  node:shard mapping, per-pair lookahead
//                                  matrix) across a worker ladder plus an
//                                  identity-mapped control.  The JSON gains
//                                  a "scaling" block; FAILS unless digests
//                                  are identical across worker counts AND
//                                  across mappings.
//
// Results are written to BENCH_storm.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/affinity.hpp"
#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "rts/director.hpp"
#include "serial/writer.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "support/glb_harness.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kCallsPerLink = 500;
constexpr int kWindow = 8;
// Small on purpose: (N-1)*kCallsPerLink inbound requests per node must
// overflow the ring so eviction runs continuously.
constexpr std::size_t kCacheCapacity = 512;

// Cost model for the sharded runs: a fast LAN whose cross-node floor
// (propagation + receive CPU = 550 simulated us) is the conservative
// lookahead.  RMI CPU overheads are zeroed so the windowed pipelines pack
// each lookahead window with hundreds of events per shard — the regime
// where barrier cost amortizes and real cores pay off.
mage::net::CostModel storm_model() {
  mage::net::CostModel m = mage::net::CostModel::zero();
  m.propagation_us = 500;
  m.per_message_cpu_us = 50;
  m.bytes_per_usec = 1250.0;  // 10 Gb/s
  m.connection_setup_us = 500;
  m.local_invoke_us = 1;
  return m;
}

struct StormRun {
  int nodes = 0;
  int threads = 0;  // 0 = single-queue driver engine
  std::int64_t calls = 0;
  double wall_sec = 0;
  double calls_per_sec = 0;
  std::int64_t evictions = 0;
  std::int64_t retransmissions = 0;
  std::int64_t duplicates_suppressed = 0;
  std::int64_t predicate_checks = 0;  // driver engine only
  std::int64_t windows = 0;           // sharded engine only
  std::int64_t order_violations = 0;
  std::vector<std::uint64_t> node_digests;  // sharded engine only
  // Chaos mode only:
  std::int64_t faults_applied = 0;
  std::int64_t messages_dropped_by_schedule = 0;
  std::int64_t evicted_reexecutions = 0;
  std::int64_t fifo_violations = 0;
  bool exactly_once = true;
  // Chaos mode HA control plane (directors on nodes 0-2):
  std::int64_t elections_held = 0;
  std::int64_t leader_changes = 0;
  std::int64_t directory_failovers = 0;
  std::int64_t directory_resolves = 0;
  std::int64_t election_time_us = 0;  // summed candidacy->majority, sim us
  std::int64_t failover_time_us = 0;  // summed failed-over call latency
  // Batch mode only (zeros elsewhere):
  std::int64_t messages_sent = 0;
  std::int64_t batches_sent = 0;
  std::int64_t batched_invokes = 0;
  std::int64_t batch_singletons = 0;
  std::int64_t reply_cache_grows = 0;
  std::int64_t reply_cache_shrinks = 0;
  std::int64_t reply_cache_capacity_highwater = 0;  // summed across nodes
};

// Every engine mode snapshots the SAME registry counters through the same
// keys — driver mode reads the shared registry, sharded modes sum across
// shard registries.  (The driver-mode run block used to fill only a
// hand-picked subset and record messages_sent: 0 and zeroed batch/cache
// stats, which read as "the driver engine sent nothing" in the JSON.)
template <typename Counter>
void snapshot_counters(StormRun& r, Counter&& counter) {
  r.evictions = counter("rmi.reply_cache_evictions");
  r.retransmissions = counter("rmi.retransmissions");
  r.duplicates_suppressed = counter("rmi.duplicates_suppressed");
  r.evicted_reexecutions = counter("rmi.evicted_reexecutions");
  r.fifo_violations = counter("net.fifo_violations");
  r.messages_sent = counter("net.messages_sent");
  r.batches_sent = counter("rmi.batches_sent");
  r.batched_invokes = counter("rmi.batched_invokes");
  r.batch_singletons = counter("rmi.batch_singletons");
  r.reply_cache_grows = counter("rmi.reply_cache_grows");
  r.reply_cache_shrinks = counter("rmi.reply_cache_shrinks");
  r.reply_cache_capacity_highwater =
      counter("rmi.reply_cache_capacity_highwater");
}

// FNV-1a fold of one (caller, seq) delivery into a node's order digest.
std::uint64_t fold_digest(std::uint64_t digest, std::uint64_t caller,
                          std::uint64_t seq) {
  constexpr std::uint64_t kPrime = 0x100000001B3ull;
  digest = (digest ^ caller) * kPrime;
  digest = (digest ^ seq) * kPrime;
  return digest;
}

// One windowed pipeline per directed link; the callback chains the next
// call so each link keeps kWindow requests in flight until drained.
struct Link {
  mage::rmi::Transport* transport;
  mage::common::NodeId dst;
  std::int64_t next_seq = 0;
  std::int64_t total_calls = kCallsPerLink;
  // Sharded mode: completions are counted per SOURCE node so each slot has
  // exactly one writing shard; the driver predicate sums them at window
  // barriers (all workers parked — no torn reads possible).
  std::int64_t* completed = nullptr;
  mage::rmi::CallOptions options{};
};

// Request bodies depend only on seq, so every link shares one immutable
// table built before the timed region: launch() bumps a refcount per call
// instead of running a Writer — the bench measures the RMI spine, not
// payload construction.
const mage::serial::Buffer& storm_body(std::int64_t seq) {
  static const std::vector<mage::serial::Buffer> bodies = [] {
    std::vector<mage::serial::Buffer> v;
    v.reserve(kCallsPerLink);
    for (int s = 0; s < kCallsPerLink; ++s) {
      mage::serial::Writer w(8);
      w.write_u64(static_cast<std::uint64_t>(s));
      v.push_back(w.take());
    }
    return v;
  }();
  return bodies[static_cast<std::size_t>(seq)];
}

void launch(Link& link) {
  if (link.next_seq >= link.total_calls) return;
  // Interned once (thread-safe local-static init, first hit is driver-side
  // setup): re-interning per call would contend the registry mutex across
  // every worker and pollute the threaded measurement.
  static const mage::common::VerbId echo =
      mage::common::intern_verb("storm.echo");
  link.transport->call(link.dst, echo,
                       storm_body(link.next_seq++),
                       [&link](mage::rmi::CallResult r) {
                         if (!r.ok) {
                           std::cerr << "storm call failed: " << r.error
                                     << "\n";
                           std::exit(1);
                         }
                         ++*link.completed;
                         launch(link);
                       },
                       link.options);
}

// Per-receiver state, owned by that node's shard (or the driver).
struct NodeWatch {
  std::vector<std::int64_t> last_seq;  // per sender; FIFO check
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::int64_t order_violations = 0;
  // Chaos mode: executions per (caller, seq) — the at-most-once witness.
  std::vector<std::int8_t> exec_counts;
};

struct MeshOptions {
  std::size_t cache_capacity = kCacheCapacity;
  // Chaos mode: loss makes first arrivals overtake retransmitted
  // predecessors, so app-level execution order is legitimately non-
  // monotonic per link — the service-level seq check is replaced by the
  // network's wire-FIFO self-check plus per-request execution counters.
  bool chaos = false;
  mage::rmi::CallOptions call_options{};
  // Batch mode: coalesce each node's per-link invokes into one batch
  // frame per flush quantum (0 = batching off), and let the at-most-once
  // ring grow from `cache_capacity` under eviction pressure instead of
  // churning — ROADMAP item 1's two levers, measured together.
  mage::common::SimDuration flush_quantum_us = 0;
  bool adaptive_cache = false;
};

// Wires up nodes/transports/services/links on `net`; shared by both
// engines so the workload is byte-identical.
struct StormMesh {
  std::vector<mage::common::NodeId> ids;
  std::vector<std::unique_ptr<mage::rmi::Transport>> transports;
  std::vector<NodeWatch> watch;          // indexed by node value
  std::vector<std::int64_t> completed;   // per source node
  std::vector<Link> links;

  StormMesh(mage::net::Network& net, int n, MeshOptions options = {}) {
    using namespace mage;
    for (int i = 0; i < n; ++i) {
      ids.push_back(net.add_node("n" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      transports.push_back(std::make_unique<rmi::Transport>(
          net, ids[i], options.cache_capacity));
      if (options.flush_quantum_us > 0) {
        rmi::BatchOptions batch;
        batch.enabled = true;
        batch.flush_quantum_us = options.flush_quantum_us;
        transports.back()->set_batching(batch);
      }
      if (options.adaptive_cache) {
        rmi::AdaptiveCacheOptions adaptive;
        adaptive.enabled = true;
        adaptive.floor = options.cache_capacity;
        adaptive.ceiling = rmi::Transport::kReplyCacheCapacity;
        transports.back()->set_adaptive_reply_cache(adaptive);
      }
    }
    watch.resize(static_cast<std::size_t>(n) + 1);
    for (auto& w : watch) {
      w.last_seq.assign(static_cast<std::size_t>(n) + 1, -1);
      if (options.chaos) {
        w.exec_counts.assign(
            (static_cast<std::size_t>(n) + 1) * kCallsPerLink, 0);
      }
    }
    completed.assign(static_cast<std::size_t>(n) + 1, 0);

    const bool chaos = options.chaos;
    const common::VerbId echo = common::intern_verb("storm.echo");
    for (int i = 0; i < n; ++i) {
      NodeWatch* w = &watch[ids[i].value()];
      transports[i]->register_service(
          echo, [w, chaos](common::NodeId caller,
                           const serial::BufferChain& body,
                           rmi::Replier replier) {
            serial::ChainReader r(body);
            const auto seq = static_cast<std::int64_t>(r.read_u64());
            if (chaos) {
              ++w->exec_counts[caller.value() * kCallsPerLink +
                               static_cast<std::size_t>(seq)];
            } else {
              auto& last = w->last_seq[caller.value()];
              if (seq <= last) ++w->order_violations;
              last = seq;
            }
            w->digest = fold_digest(w->digest, caller.value(),
                                    static_cast<std::uint64_t>(seq));
            replier.ok(body);
          });
    }

    links.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) {
          links.push_back(Link{transports[i].get(), ids[j], 0, kCallsPerLink,
                               &completed[ids[i].value()],
                               options.call_options});
        }
      }
    }
  }

  // True when every cross-link (caller, seq) executed exactly once.
  [[nodiscard]] bool exactly_once() const {
    const std::size_t n = ids.size();
    for (std::size_t node = 1; node <= n; ++node) {
      const auto& counts = watch[node].exec_counts;
      for (std::size_t caller = 1; caller <= n; ++caller) {
        if (caller == node) continue;
        for (std::size_t seq = 0; seq < kCallsPerLink; ++seq) {
          if (counts[caller * kCallsPerLink + seq] != 1) return false;
        }
      }
    }
    return true;
  }

  [[nodiscard]] std::int64_t total_completed() const {
    std::int64_t sum = 0;
    for (std::int64_t c : completed) sum += c;
    return sum;
  }
};

void check_invariants(const StormRun& r) {
  if (r.order_violations != 0) {
    std::cerr << "FAIL: " << r.order_violations
              << " per-link ordering violations\n";
    std::exit(1);
  }
  if (r.evictions == 0) {
    std::cerr << "FAIL: reply-cache ring never evicted — storm too small "
                 "for cache capacity\n";
    std::exit(1);
  }
}

void check_chaos_invariants(const StormRun& r) {
  if (!r.exactly_once) {
    std::cerr << "FAIL: some chaos request did not execute exactly once\n";
    std::exit(1);
  }
  if (r.fifo_violations != 0) {
    std::cerr << "FAIL: " << r.fifo_violations
              << " wire-FIFO violations under chaos\n";
    std::exit(1);
  }
  if (r.evicted_reexecutions != 0) {
    std::cerr << "FAIL: " << r.evicted_reexecutions
              << " eviction-caused re-executions despite an adequately "
                 "sized reply cache\n";
    std::exit(1);
  }
  if (r.faults_applied < 8 || r.messages_dropped_by_schedule == 0 ||
      r.retransmissions == 0) {
    std::cerr << "FAIL: chaos run was not chaotic (faults_applied="
              << r.faults_applied << ", scheduled drops="
              << r.messages_dropped_by_schedule << ", retransmissions="
              << r.retransmissions << ")\n";
    std::exit(1);
  }
  // HA control plane: rolling director crashes guarantee the sitting
  // leader died at least once (>= 2 elections) and that the resolver's
  // preferred member was dead for at least one probe (>= 1 failover).
  if (r.elections_held < 2 || r.directory_failovers < 1 ||
      r.directory_resolves < 1) {
    std::cerr << "FAIL: chaos control plane did not fail over "
                 "(elections_held="
              << r.elections_held << ", directory_failovers="
              << r.directory_failovers << ", directory_resolves="
              << r.directory_resolves << ")\n";
    std::exit(1);
  }
}

// The fixed degraded-mode program: two loss bursts, a partition/heal of
// the (n1, n2) link, and rolling crashes that take down EVERY director
// (nodes 0-2) at some point — at most one at a time, so the quorum can
// always re-form and the sitting leader is guaranteed to die at least
// once.  Absolute times — the storm runs ~70-90 simulated ms at any mesh
// size, and the generous retry budget below rides out every outage.
mage::net::FaultSchedule chaos_schedule(
    const std::vector<mage::common::NodeId>& ids) {
  mage::net::FaultSchedule s;
  s.crash_for(5'000, ids[0], 6'000);
  s.loss_burst(5'000, 0.10, 10'000);
  s.partition_for(8'000, ids[0], ids[1], 20'000);
  s.crash_for(20'000, ids[2], 15'000);
  s.crash_for(37'000, ids[1], 6'000);
  s.loss_burst(40'000, 0.20, 10'000);
  return s;
}

constexpr mage::common::SimTime kChaosHorizonUs = 55'000;

StormRun run_storm_chaos(int n, int threads) {
  using namespace mage;
  const net::CostModel model = storm_model();
  sim::ShardedSim ssim(static_cast<std::size_t>(n), 2026,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  MeshOptions options;
  options.chaos = true;
  // Adequately sized: every in-flight retransmission finds its entry, so
  // at-most-once must hold exactly (asserted via execution counters).
  options.cache_capacity = rmi::Transport::kReplyCacheCapacity;
  options.call_options = rmi::CallOptions{/*retry_timeout_us=*/30'000,
                                          /*max_attempts=*/64};
  StormMesh mesh(net, n, options);

  net.set_fifo_checks(true);
  net.set_fault_schedule(chaos_schedule(mesh.ids));

  // HA control plane under the same schedule: a 3-member director quorum
  // on nodes 0-2 (each of which the schedule crashes once), pre-seeded
  // with one placement record, and a resolver on node 3 probing it every
  // 2 simulated ms for the whole chaos window.  The resolver's preferred
  // member starts at node 0 — dead at 5ms — so the failover path is
  // exercised deterministically.
  const std::vector<mage::common::NodeId> directors_ids{
      mesh.ids[0], mesh.ids[1], mesh.ids[2]};
  std::vector<std::unique_ptr<rts::Director>> directors;
  for (int i = 0; i < 3; ++i) {
    directors.push_back(std::make_unique<rts::Director>(
        *mesh.transports[static_cast<std::size_t>(i)], directors_ids));
  }
  for (auto& d : directors) {
    d->seed(rts::proto::PlacementRecord{"storm.obj", "Echo", mesh.ids[3],
                                        /*is_public=*/true, /*epoch=*/1});
  }
  for (auto& d : directors) d->start();

  rts::DirectoryClient resolver(*mesh.transports[3], directors_ids);
  auto& resolver_sim = net.node_sim(mesh.ids[3]);
  bool resolver_done = false;
  std::int64_t resolver_ok = 0;
  std::function<void()> probe = [&] {
    resolver.resolve(
        "storm.obj",
        [&](std::optional<rts::DirectoryClient::Resolution> r) {
          if (r.has_value()) ++resolver_ok;
          if (resolver_sim.now() >= kChaosHorizonUs) {
            resolver_done = true;  // set inside a waking callback
            return;
          }
          resolver_sim.schedule_after(2'000, probe, sim::Wake::No);
        });
  };
  resolver_sim.schedule_at(1'000, [&probe] { probe(); }, sim::Wake::No);

  // Horizon ticks keep virtual time advancing past the last schedule entry
  // even if the storm drains early, so the whole program always applies.
  for (common::SimTime t = 1'000; t <= kChaosHorizonUs; t += 1'000) {
    net.node_sim(mesh.ids[0]).schedule_at(t, [] {}, sim::Wake::No);
  }

  StormRun result;
  result.nodes = n;
  result.threads = std::min(threads, n);
  const std::int64_t total =
      static_cast<std::int64_t>(n) * (n - 1) * kCallsPerLink;

  const auto start = Clock::now();
  for (auto& link : mesh.links) {
    for (int w = 0; w < kWindow; ++w) launch(link);
  }
  const bool done = ssim.run_until(
      [&] {
        return mesh.total_completed() == total && resolver_done &&
               net.pending_fault_events() == 0;
      },
      threads);
  result.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (!done) {
    std::cerr << "chaos storm drained with " << mesh.total_completed() << "/"
              << total << " calls completed\n";
    std::exit(1);
  }
  if (resolver_ok == 0) {
    std::cerr << "FAIL: no directory resolve ever succeeded under chaos\n";
    std::exit(1);
  }

  result.calls = total;
  result.calls_per_sec = static_cast<double>(total) / result.wall_sec;
  snapshot_counters(result,
                    [&](const char* key) { return ssim.counter(key); });
  result.windows = ssim.windows();
  result.faults_applied = ssim.counter("net.faults_applied");
  result.messages_dropped_by_schedule =
      ssim.counter("net.messages_dropped_by_schedule");
  result.exactly_once = mesh.exactly_once();
  result.elections_held = ssim.counter("rts.elections_held");
  result.leader_changes = ssim.counter("rts.leader_changes");
  result.directory_failovers = ssim.counter("rmi.directory_failovers");
  result.directory_resolves = ssim.counter("rts.dir_resolves");
  result.election_time_us = ssim.counter("rts.election_time_us");
  result.failover_time_us = ssim.counter("rmi.directory_failover_time_us");
  for (std::size_t i = 1; i < mesh.watch.size(); ++i) {
    result.node_digests.push_back(mesh.watch[i].digest);
  }
  check_chaos_invariants(result);
  return result;
}

StormRun run_storm(int n) {
  using namespace mage;
  sim::Simulation sim(2026);
  net::Network net(sim, net::CostModel::zero());
  StormMesh mesh(net, n);

  StormRun result;
  result.nodes = n;
  const std::int64_t total =
      static_cast<std::int64_t>(n) * (n - 1) * kCallsPerLink;

  const auto start = Clock::now();
  for (auto& link : mesh.links) {
    for (int w = 0; w < kWindow; ++w) launch(link);
  }
  const auto checks_before = sim.stats().counter("sim.predicate_checks");
  const bool done =
      sim.run_until([&] { return mesh.total_completed() == total; });
  result.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (!done) {
    std::cerr << "storm drained with " << mesh.total_completed() << "/"
              << total << " calls completed\n";
    std::exit(1);
  }

  result.calls = total;
  result.calls_per_sec = static_cast<double>(total) / result.wall_sec;
  snapshot_counters(result,
                    [&](const char* key) { return sim.stats().counter(key); });
  result.predicate_checks =
      sim.stats().counter("sim.predicate_checks") - checks_before;
  for (const auto& w : mesh.watch) result.order_violations += w.order_violations;
  check_invariants(result);
  return result;
}

StormRun run_storm_sharded(int n, int threads) {
  using namespace mage;
  const net::CostModel model = storm_model();
  sim::ShardedSim ssim(static_cast<std::size_t>(n), 2026,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);
  StormMesh mesh(net, n);

  StormRun result;
  result.nodes = n;
  // Record the parallelism that actually existed: the engine clamps the
  // worker pool to the shard count, and the scaling gate keys off this.
  result.threads = std::min(threads, n);
  const std::int64_t total =
      static_cast<std::int64_t>(n) * (n - 1) * kCallsPerLink;

  const auto start = Clock::now();
  // Pre-run, single-threaded: prime every link's window.
  for (auto& link : mesh.links) {
    for (int w = 0; w < kWindow; ++w) launch(link);
  }
  const bool done = ssim.run_until(
      [&] { return mesh.total_completed() == total; }, threads);
  result.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (!done) {
    std::cerr << "sharded storm drained with " << mesh.total_completed()
              << "/" << total << " calls completed\n";
    std::exit(1);
  }

  result.calls = total;
  result.calls_per_sec = static_cast<double>(total) / result.wall_sec;
  snapshot_counters(result,
                    [&](const char* key) { return ssim.counter(key); });
  result.windows = ssim.windows();
  for (const auto& w : mesh.watch) {
    result.order_violations += w.order_violations;
  }
  for (std::size_t i = 1; i < mesh.watch.size(); ++i) {
    result.node_digests.push_back(mesh.watch[i].digest);
  }
  check_invariants(result);
  return result;
}

// ROADMAP item 1's acceptance run: the same sharded storm with (a) every
// node's per-link invokes coalesced into one batch frame per lookahead
// window (flush quantum == the conservative lookahead, so request batches
// and their reply batches pipeline one window apart) and (b) the reply
// cache growing adaptively from the deliberately small 512-entry floor
// instead of churning 111k evictions.  Everything the clean storm asserts
// (per-link FIFO, determinism across worker counts) must still hold.
StormRun run_storm_batched(int n, int threads) {
  using namespace mage;
  const net::CostModel model = storm_model();
  const common::SimDuration lookahead = net::Network::min_link_latency(model);
  sim::ShardedSim ssim(static_cast<std::size_t>(n), 2026, lookahead);
  net::Network net(ssim, model);
  MeshOptions options;
  options.flush_quantum_us = lookahead;
  options.adaptive_cache = true;
  StormMesh mesh(net, n, options);

  StormRun result;
  result.nodes = n;
  result.threads = std::min(threads, n);
  const std::int64_t total =
      static_cast<std::int64_t>(n) * (n - 1) * kCallsPerLink;

  // Batching is what makes deep pipelines affordable: kWindow outstanding
  // invokes per link cost one envelope each unbatched, but a whole window's
  // worth rides a single frame here — so the acceptance run drives the
  // pipeline four windows deep and lets the coalescer amortize them.
  constexpr int kBatchWindow = 4 * kWindow;
  const auto start = Clock::now();
  for (auto& link : mesh.links) {
    for (int w = 0; w < kBatchWindow; ++w) launch(link);
  }
  const bool done = ssim.run_until(
      [&] { return mesh.total_completed() == total; }, threads);
  result.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (!done) {
    std::cerr << "batched storm drained with " << mesh.total_completed()
              << "/" << total << " calls completed\n";
    std::exit(1);
  }

  result.calls = total;
  result.calls_per_sec = static_cast<double>(total) / result.wall_sec;
  snapshot_counters(result,
                    [&](const char* key) { return ssim.counter(key); });
  result.windows = ssim.windows();
  for (const auto& w : mesh.watch) {
    result.order_violations += w.order_violations;
  }
  for (std::size_t i = 1; i < mesh.watch.size(); ++i) {
    result.node_digests.push_back(mesh.watch[i].digest);
  }

  if (result.order_violations != 0) {
    std::cerr << "FAIL: " << result.order_violations
              << " per-link ordering violations under batching\n";
    std::exit(1);
  }
  if (result.batches_sent == 0 ||
      result.batched_invokes < 2 * result.batches_sent) {
    std::cerr << "FAIL: batching never coalesced (batches="
              << result.batches_sent << ", batched invokes="
              << result.batched_invokes << ")\n";
    std::exit(1);
  }
  if (result.reply_cache_grows == 0) {
    std::cerr << "FAIL: adaptive reply cache never grew from the "
              << kCacheCapacity << "-entry floor\n";
    std::exit(1);
  }
  // The headline: the workload that churned 111k evictions at a fixed
  // 512-entry ring now stays under 1% of calls.
  if (result.evictions * 100 >= result.calls) {
    std::cerr << "FAIL: " << result.evictions << " evictions on "
              << result.calls << " calls (>= 1%) despite adaptive sizing\n";
    std::exit(1);
  }
  return result;
}

// --- WAN scaling curves (--wan) ---------------------------------------------
//
// The all-to-all storm is the sharded engine's WORST case: every link is
// cross-shard, so the slowest link's lookahead throttles every window and
// the speedup on few cores hovers near 1.  The WAN mesh is the geometry
// the engine is FOR: `sites` clusters of LAN-co-located nodes (all-to-all
// chatter inside each site), joined by ~20ms WAN hops that only the site
// leaders cross.  An affinity mapping puts each site on one shard, so the
// chatter becomes intra-shard direct schedules and the only cross-shard
// traffic rides links whose per-pair lookahead is the WAN hop — windows
// tens of milliseconds of virtual time wide, one barrier each.  The curve
// records throughput at 1/2/4/8 workers plus an identity-mapped (one node
// per shard) control run, whose per-node digests must match the clustered
// runs bit for bit — the mapping-independence contract on real hardware.

constexpr mage::common::SimDuration kWanHopUs = 20'000;

mage::net::CostModel wan_model() { return mage::net::CostModel::wan_site(); }

struct WanParams {
  int nodes = 64;
  int sites = 8;
  int calls_per_link = 200;        // site-local links
  int cross_calls_per_link = 100;  // leader <-> leader links
  bool identity_mapping = false;   // one shard per node (control run)
};

struct WanRun {
  int workers = 0;
  bool oversubscribed = false;
  double wall_sec = 0;
  double calls_per_sec = 0;
  std::int64_t calls = 0;
  std::int64_t windows = 0;
  std::int64_t messages_sent = 0;
  std::int64_t order_violations = 0;
  std::vector<std::uint64_t> node_digests;
};

// Site-clustered mesh over `net`: all-to-all echo pipelines inside each
// site, leader-to-leader pipelines across sites, cross-site links carrying
// kWanHopUs of extra latency.
struct WanMesh {
  std::vector<mage::common::NodeId> ids;
  std::vector<std::unique_ptr<mage::rmi::Transport>> transports;
  std::vector<NodeWatch> watch;
  std::vector<std::int64_t> completed;
  std::vector<Link> links;
  std::int64_t total_calls = 0;

  WanMesh(mage::net::Network& net, const WanParams& p) {
    using namespace mage;
    const int per_site = p.nodes / p.sites;
    for (int i = 0; i < p.nodes; ++i) {
      ids.push_back(net.add_node("s" + std::to_string(i / per_site) + "n" +
                                 std::to_string(i % per_site)));
    }
    for (int a = 0; a < p.nodes; ++a) {
      for (int b = 0; b < p.nodes; ++b) {
        if (a != b && a / per_site != b / per_site) {
          net.set_extra_latency(ids[a], ids[b], kWanHopUs);
        }
      }
    }
    for (int i = 0; i < p.nodes; ++i) {
      transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    }
    watch.resize(static_cast<std::size_t>(p.nodes) + 1);
    for (auto& w : watch) {
      w.last_seq.assign(static_cast<std::size_t>(p.nodes) + 1, -1);
    }
    completed.assign(static_cast<std::size_t>(p.nodes) + 1, 0);

    const common::VerbId echo = common::intern_verb("storm.echo");
    for (int i = 0; i < p.nodes; ++i) {
      NodeWatch* w = &watch[ids[i].value()];
      transports[i]->register_service(
          echo, [w](common::NodeId caller, const serial::BufferChain& body,
                    rmi::Replier replier) {
            serial::ChainReader r(body);
            const auto seq = static_cast<std::int64_t>(r.read_u64());
            auto& last = w->last_seq[caller.value()];
            if (seq <= last) ++w->order_violations;
            last = seq;
            w->digest = fold_digest(w->digest, caller.value(),
                                    static_cast<std::uint64_t>(seq));
            replier.ok(body);
          });
    }

    auto add_link = [&](int src, int dst, int calls) {
      links.push_back(Link{transports[src].get(), ids[dst], 0, calls,
                           &completed[ids[src].value()],
                           rmi::CallOptions{}});
      total_calls += calls;
    };
    for (int site = 0; site < p.sites; ++site) {
      const int base = site * per_site;
      for (int i = 0; i < per_site; ++i) {
        for (int j = 0; j < per_site; ++j) {
          if (i != j) add_link(base + i, base + j, p.calls_per_link);
        }
      }
    }
    for (int sa = 0; sa < p.sites; ++sa) {
      for (int sb = 0; sb < p.sites; ++sb) {
        if (sa != sb) {
          add_link(sa * per_site, sb * per_site, p.cross_calls_per_link);
        }
      }
    }
  }
};

// The communication graph the workload above implies, for the affinity
// clusterer: what the mapping layer would learn from traffic counters in a
// real deployment, the bench simply knows.
std::vector<mage::net::AffinityEdge> wan_affinity_edges(const WanParams& p) {
  std::vector<mage::net::AffinityEdge> edges;
  const int per_site = p.nodes / p.sites;
  for (int site = 0; site < p.sites; ++site) {
    const int base = site * per_site;
    for (int i = 0; i < per_site; ++i) {
      for (int j = i + 1; j < per_site; ++j) {
        edges.push_back({static_cast<std::size_t>(base + i),
                         static_cast<std::size_t>(base + j),
                         2.0 * p.calls_per_link});
      }
    }
  }
  for (int sa = 0; sa < p.sites; ++sa) {
    for (int sb = sa + 1; sb < p.sites; ++sb) {
      edges.push_back({static_cast<std::size_t>(sa * per_site),
                       static_cast<std::size_t>(sb * per_site),
                       2.0 * p.cross_calls_per_link});
    }
  }
  return edges;
}

WanRun run_storm_wan(const WanParams& p, int workers) {
  using namespace mage;
  const net::CostModel model = wan_model();
  const std::size_t shards = p.identity_mapping
                                 ? static_cast<std::size_t>(p.nodes)
                                 : static_cast<std::size_t>(p.sites);
  sim::ShardedSim ssim(shards, 2026, net::Network::min_link_latency(model));
  std::vector<std::size_t> mapping;
  if (!p.identity_mapping) {
    mapping = net::affinity_mapping(static_cast<std::size_t>(p.nodes), shards,
                                    wan_affinity_edges(p));
  }
  net::Network net(ssim, model, std::move(mapping));
  WanMesh mesh(net, p);
  // Derive the per-pair lookahead matrix from the topology: cross-site
  // shard pairs get base + kWanHopUs, giving every shard a ~20ms window.
  net.refresh_pair_lookaheads();

  WanRun result;
  result.workers = std::min<int>(workers, static_cast<int>(shards));
  const unsigned hw = std::thread::hardware_concurrency();
  result.oversubscribed = hw != 0 && static_cast<unsigned>(result.workers) > hw;

  const auto start = Clock::now();
  for (auto& link : mesh.links) {
    for (int w = 0; w < kWindow; ++w) launch(link);
  }
  const std::int64_t total = mesh.total_calls;
  const bool done = ssim.run_until(
      [&] {
        std::int64_t sum = 0;
        for (std::int64_t c : mesh.completed) sum += c;
        return sum == total;
      },
      workers);
  result.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (!done) {
    std::cerr << "wan storm drained before completing all calls\n";
    std::exit(1);
  }
  result.calls = total;
  result.calls_per_sec = static_cast<double>(total) / result.wall_sec;
  result.windows = ssim.windows();
  result.messages_sent = ssim.counter("net.messages_sent");
  for (const auto& w : mesh.watch) {
    result.order_violations += w.order_violations;
  }
  for (std::size_t i = 1; i < mesh.watch.size(); ++i) {
    result.node_digests.push_back(mesh.watch[i].digest);
  }
  if (result.order_violations != 0) {
    std::cerr << "FAIL: " << result.order_violations
              << " per-link ordering violations on the WAN mesh\n";
    std::exit(1);
  }
  return result;
}

// One scaling curve: the worker ladder on the affinity mapping, plus (for
// the headline mesh) the identity-mapped control whose digests prove
// mapping independence.
struct WanCurve {
  WanParams params;
  std::vector<WanRun> points;
  WanRun identity;            // only when run_identity
  bool ran_identity = false;
  double speedup = 0.0;       // best non-oversubscribed point vs 1 worker
  bool deterministic = true;
  bool mapping_independent = true;
};

WanCurve run_wan_curve(WanParams params, const std::vector<int>& ladder,
                       bool run_identity) {
  WanCurve curve;
  curve.params = params;
  for (const int w : ladder) {
    curve.points.push_back(run_storm_wan(params, w));
    const WanRun& r = curve.points.back();
    std::cout << "wan " << params.nodes << " nodes / " << params.sites
              << " sites, " << r.workers << " workers"
              << (r.oversubscribed ? " (oversubscribed)" : "") << ": "
              << static_cast<std::int64_t>(r.calls_per_sec)
              << " calls/sec, " << r.windows << " windows\n";
    if (r.node_digests != curve.points.front().node_digests) {
      curve.deterministic = false;
    }
  }
  const double base = curve.points.front().calls_per_sec;
  for (const WanRun& r : curve.points) {
    if (!r.oversubscribed) {
      curve.speedup = std::max(curve.speedup, r.calls_per_sec / base);
    }
  }
  if (run_identity) {
    params.identity_mapping = true;
    curve.identity = run_storm_wan(
        params, std::min(8, static_cast<int>(
                                std::max(1u, std::thread::hardware_concurrency()))));
    curve.ran_identity = true;
    curve.mapping_independent =
        curve.identity.node_digests == curve.points.front().node_digests;
    std::cout << "wan identity control: " << curve.identity.windows
              << " windows (vs " << curve.points.front().windows
              << " clustered); per-node digests "
              << (curve.mapping_independent ? "identical" : "DIVERGED")
              << "\n";
    if (!curve.mapping_independent) {
      std::cerr << "FAIL: per-node delivery order depends on the node:shard "
                   "mapping\n";
      std::exit(1);
    }
  }
  if (!curve.deterministic) {
    std::cerr << "FAIL: wan per-node digests differ across worker counts\n";
    std::exit(1);
  }
  return curve;
}

void print_run(const StormRun& r, bool chaos = false) {
  std::cout << r.nodes << " nodes";
  if (r.threads > 0) std::cout << " x " << r.threads << " threads";
  if (chaos) std::cout << " [chaos]";
  std::cout << ": " << static_cast<std::int64_t>(r.calls_per_sec)
            << " calls/sec (" << r.calls << " calls, " << r.wall_sec
            << " s), " << r.evictions << " evictions, " << r.retransmissions
            << " retransmissions, ";
  if (r.threads > 0) {
    std::cout << r.windows << " windows, ";
  } else {
    std::cout << r.predicate_checks << " predicate checks, ";
  }
  if (chaos) {
    std::cout << r.faults_applied << " faults applied, "
              << r.messages_dropped_by_schedule << " scheduled drops, "
              << r.elections_held << " elections ("
              << r.election_time_us << " us), " << r.directory_failovers
              << " directory failovers (" << r.failover_time_us << " us), "
              << r.directory_resolves << " resolves\n";
  } else {
    std::cout << r.order_violations << " order violations\n";
  }
}

void write_json_run(std::ofstream& json, const StormRun& r,
                    const char* indent) {
  json << indent << "{\n"
       << indent << "  \"nodes\": " << r.nodes << ",\n"
       << indent << "  \"threads\": " << r.threads << ",\n"
       << indent << "  \"calls\": " << r.calls << ",\n"
       << indent << "  \"wall_sec\": " << r.wall_sec << ",\n"
       << indent << "  \"calls_per_sec\": " << r.calls_per_sec << ",\n"
       << indent << "  \"reply_cache_evictions\": " << r.evictions << ",\n"
       << indent << "  \"retransmissions\": " << r.retransmissions << ",\n"
       << indent << "  \"duplicates_suppressed\": " << r.duplicates_suppressed
       << ",\n"
       << indent << "  \"predicate_checks\": " << r.predicate_checks << ",\n"
       << indent << "  \"windows\": " << r.windows << ",\n"
       << indent << "  \"order_violations\": " << r.order_violations << ",\n"
       << indent << "  \"faults_applied\": " << r.faults_applied << ",\n"
       << indent << "  \"messages_dropped_by_schedule\": "
       << r.messages_dropped_by_schedule << ",\n"
       << indent << "  \"evicted_reexecutions\": " << r.evicted_reexecutions
       << ",\n"
       << indent << "  \"fifo_violations\": " << r.fifo_violations << ",\n"
       << indent << "  \"messages_sent\": " << r.messages_sent << ",\n"
       << indent << "  \"batches_sent\": " << r.batches_sent << ",\n"
       << indent << "  \"batched_invokes\": " << r.batched_invokes << ",\n"
       << indent << "  \"batch_singletons\": " << r.batch_singletons << ",\n"
       << indent << "  \"reply_cache_grows\": " << r.reply_cache_grows
       << ",\n"
       << indent << "  \"reply_cache_shrinks\": " << r.reply_cache_shrinks
       << ",\n"
       << indent << "  \"reply_cache_capacity_highwater\": "
       << r.reply_cache_capacity_highwater << ",\n"
       << indent << "  \"failover\": {\n"
       << indent << "    \"elections_held\": " << r.elections_held << ",\n"
       << indent << "    \"leader_changes\": " << r.leader_changes << ",\n"
       << indent << "    \"directory_failovers\": " << r.directory_failovers
       << ",\n"
       << indent << "    \"directory_resolves\": " << r.directory_resolves
       << ",\n"
       << indent << "    \"election_time_us\": " << r.election_time_us
       << ",\n"
       << indent << "    \"failover_time_us\": " << r.failover_time_us << "\n"
       << indent << "  }\n"
       << indent << "}";
}

}  // namespace

namespace {

// Strict positive-integer parse; exits with usage on anything else so a
// CI typo cannot silently skip the threaded determinism/scaling check.
int parse_positive(const char* what, const char* arg) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || v < 1 || v > 1'000'000) {
    std::cerr << "bench_storm: bad " << what << " '" << arg
              << "'\nusage: bench_storm [N] [--threads T]\n";
    std::exit(2);
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes{4, 8, 16};
  int threads = 0;
  bool chaos = false;
  bool glb = false;
  bool wan = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "bench_storm: --threads needs a value\n";
        return 2;
      }
      threads = parse_positive("thread count", argv[++i]);
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--glb") == 0) {
      glb = true;
    } else if (std::strcmp(argv[i], "--wan") == 0) {
      wan = true;
    } else {
      sizes = {parse_positive("node count", argv[i])};
    }
  }
  if (chaos && threads == 0) {
    std::cerr << "bench_storm: --chaos needs --threads (it measures the "
                 "sharded engine's degraded mode)\n";
    return 2;
  }
  if (chaos && sizes.back() < 4) {
    std::cerr << "bench_storm: --chaos needs >= 4 nodes (the schedule "
                 "partitions one link and crashes a third node)\n";
    return 2;
  }

  std::vector<StormRun> runs;
  StormRun single_sharded;
  StormRun multi_sharded;
  StormRun batch_single;
  StormRun batch_multi;
  StormRun chaos_single;
  StormRun chaos_multi;
  double speedup = 0.0;
  double batch_speedup = 0.0;
  double batch_vs_unbatched = 0.0;
  double chaos_speedup = 0.0;
  double degraded_vs_clean = 0.0;

  if (threads > 0) {
    const int n = sizes.back();
    // Driver-engine run first, so the JSON records driver vs sharded-1 vs
    // sharded-T on the same machine state.
    runs.push_back(run_storm(n));
    print_run(runs.back());
    single_sharded = run_storm_sharded(n, 1);
    print_run(single_sharded);
    multi_sharded = run_storm_sharded(n, threads);
    print_run(multi_sharded);
    if (single_sharded.node_digests != multi_sharded.node_digests) {
      std::cerr << "FAIL: per-node delivery order differs between 1 and "
                << threads
                << " worker threads — sharded determinism contract broken\n";
      return 1;
    }
    speedup = multi_sharded.calls_per_sec / single_sharded.calls_per_sec;
    std::cout << "speedup: " << speedup << "x with " << multi_sharded.threads
              << " threads (" << std::thread::hardware_concurrency()
              << " hardware cores); per-node order digests identical\n";
    batch_single = run_storm_batched(n, 1);
    print_run(batch_single);
    batch_multi = run_storm_batched(n, threads);
    print_run(batch_multi);
    if (batch_single.node_digests != batch_multi.node_digests) {
      std::cerr << "FAIL: batched per-node delivery order differs between 1 "
                   "and "
                << threads << " worker threads — batching broke the sharded "
                              "determinism contract\n";
      return 1;
    }
    batch_speedup = batch_multi.calls_per_sec / batch_single.calls_per_sec;
    batch_vs_unbatched =
        batch_multi.calls_per_sec / multi_sharded.calls_per_sec;
    std::cout << "batch: " << batch_vs_unbatched
              << "x of unbatched throughput ("
              << static_cast<std::int64_t>(batch_multi.calls_per_sec)
              << " calls/sec, "
              << (batch_multi.batched_invokes /
                  std::max<std::int64_t>(batch_multi.batches_sent, 1))
              << " invokes/batch, " << batch_multi.evictions
              << " evictions); digests identical\n";
    if (chaos) {
      chaos_single = run_storm_chaos(n, 1);
      print_run(chaos_single, /*chaos=*/true);
      chaos_multi = run_storm_chaos(n, threads);
      print_run(chaos_multi, /*chaos=*/true);
      if (chaos_single.node_digests != chaos_multi.node_digests) {
        std::cerr << "FAIL: chaos per-node digests differ between 1 and "
                  << threads
                  << " workers — the fault schedule broke determinism\n";
        return 1;
      }
      chaos_speedup =
          chaos_multi.calls_per_sec / chaos_single.calls_per_sec;
      degraded_vs_clean =
          chaos_multi.calls_per_sec / multi_sharded.calls_per_sec;
      std::cout << "chaos: " << chaos_speedup << "x degraded-mode speedup; "
                << degraded_vs_clean
                << "x of clean throughput under faults; digests identical; "
                   "every request executed exactly once\n";
    }
  } else {
    for (int n : sizes) {
      runs.push_back(run_storm(n));
      print_run(runs.back());
    }
  }

  // --- WAN scaling curves (see the block comment above WanParams) -----------
  std::vector<WanCurve> wan_curves;
  if (wan) {
    WanParams p64;  // 8 sites x 8 nodes, the headline mesh
    wan_curves.push_back(
        run_wan_curve(p64, {1, 2, 4, 8}, /*run_identity=*/true));
    WanParams p128;  // 8 sites x 16 nodes: double the per-shard work
    p128.nodes = 128;
    p128.calls_per_link = 50;
    p128.cross_calls_per_link = 50;
    wan_curves.push_back(
        run_wan_curve(p128, {1, 8}, /*run_identity=*/false));
  }

  // --- lifeline GLB over DistMap (chaos schedule always on) -----------------
  struct GlbSeed {
    std::uint64_t seed = 0;
    mage::glb::GlbRun single;
    mage::glb::GlbRun multi;
    double single_sec = 0.0;
    double multi_sec = 0.0;
  };
  std::vector<GlbSeed> glb_seeds;
  bool glb_ok = true;
  bool glb_deterministic = true;
  bool glb_exactly_once = true;
  bool glb_migrated = true;
  if (glb) {
    for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
      mage::glb::GlbParams params;
      params.seed = seed;
      params.chaos = true;
      GlbSeed result;
      result.seed = seed;
      auto t0 = Clock::now();
      result.single = mage::glb::run_glb(params, 1);
      auto t1 = Clock::now();
      result.multi = mage::glb::run_glb(params, 8);
      auto t2 = Clock::now();
      result.single_sec = std::chrono::duration<double>(t1 - t0).count();
      result.multi_sec = std::chrono::duration<double>(t2 - t1).count();

      const bool completed = result.single.completed && result.multi.completed;
      const bool deterministic =
          result.single.digest == result.multi.digest &&
          result.single.processed == result.multi.processed &&
          result.single.migrations == result.multi.migrations &&
          result.single.lifeline_steals == result.multi.lifeline_steals;
      const bool exactly_once =
          result.single.exactly_once() && result.multi.exactly_once();
      const bool migrated =
          result.single.migrations >= 1 && result.multi.migrations >= 1;
      glb_deterministic = glb_deterministic && deterministic;
      glb_exactly_once = glb_exactly_once && exactly_once;
      glb_migrated = glb_migrated && migrated;
      glb_ok = glb_ok && completed && deterministic && exactly_once && migrated;

      std::cout << "glb seed " << seed << ": tree=" << result.single.tree_size
                << ", " << result.single.migrations << " migrations, "
                << result.single.lifeline_steals << " lifeline steals, "
                << result.single.faults_applied << " faults, "
                << result.single.requeues << " requeues; 1w "
                << result.single_sec << "s, 8w " << result.multi_sec << "s; "
                << (deterministic ? "digests identical" : "DIGESTS DIVERGED")
                << ", "
                << (exactly_once ? "exactly-once" : "EXACTLY-ONCE VIOLATED")
                << "\n";
      if (!completed) {
        std::cerr << "FAIL: glb seed " << seed
                  << " did not drain within the virtual-time deadline\n";
      }
      glb_seeds.push_back(std::move(result));
    }
  }

  std::ofstream json("BENCH_storm.json");
  json << "{\n"
       << "  \"bench\": \"storm\",\n"
       << "  \"calls_per_link\": " << kCallsPerLink << ",\n"
       << "  \"window\": " << kWindow << ",\n"
       << "  \"reply_cache_capacity\": " << kCacheCapacity << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n";
  json << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    write_json_run(json, runs[i], "    ");
    json << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]";
  // The exit(1) paths above fire before any JSON is written, so these can
  // only ever record true in a file that exists — but emit the ACTUAL
  // comparison results anyway, so ci/check_storm_scaling.py gates on real
  // data rather than a constant if those paths are ever reordered.
  const char* threaded_deterministic =
      single_sharded.node_digests == multi_sharded.node_digests ? "true"
                                                                : "false";
  // Annotation, not data-laundering: a worker count above the machine's
  // hardware threads CANNOT speed up (the workers time-share one core and
  // pay the barriers), so the gate reads this flag and the hardware_threads
  // field instead of treating an oversubscribed ~1.0x as a regression.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const auto oversub = [hw_threads](int workers) {
    return hw_threads != 0 && static_cast<unsigned>(workers) > hw_threads
               ? "true"
               : "false";
  };
  if (threads > 0) {
    json << ",\n  \"threaded\": {\n"
         << "    \"threads\": " << multi_sharded.threads << ",\n"
         << "    \"oversubscribed\": " << oversub(multi_sharded.threads)
         << ",\n"
         << "    \"deterministic\": " << threaded_deterministic << ",\n"
         << "    \"speedup\": " << speedup << ",\n"
         << "    \"single\":\n";
    write_json_run(json, single_sharded, "      ");
    json << ",\n    \"multi\":\n";
    write_json_run(json, multi_sharded, "      ");
    json << "\n  }";
    json << ",\n  \"batch\": {\n"
         << "    \"threads\": " << batch_multi.threads << ",\n"
         << "    \"oversubscribed\": " << oversub(batch_multi.threads)
         << ",\n"
         << "    \"deterministic\": "
         << (batch_single.node_digests == batch_multi.node_digests
                 ? "true"
                 : "false")
         << ",\n"
         << "    \"speedup\": " << batch_speedup << ",\n"
         << "    \"vs_unbatched\": " << batch_vs_unbatched << ",\n"
         << "    \"flush_quantum_us\": "
         << mage::net::Network::min_link_latency(storm_model()) << ",\n"
         << "    \"single\":\n";
    write_json_run(json, batch_single, "      ");
    json << ",\n    \"multi\":\n";
    write_json_run(json, batch_multi, "      ");
    json << "\n  }";
  }
  if (chaos) {
    json << ",\n  \"chaos\": {\n"
         << "    \"threads\": " << chaos_multi.threads << ",\n"
         << "    \"oversubscribed\": " << oversub(chaos_multi.threads)
         << ",\n"
         << "    \"deterministic\": "
         << (chaos_single.node_digests == chaos_multi.node_digests
                 ? "true"
                 : "false")
         << ",\n"
         << "    \"exactly_once\": "
         << (chaos_single.exactly_once && chaos_multi.exactly_once
                 ? "true"
                 : "false")
         << ",\n"
         << "    \"speedup\": " << chaos_speedup << ",\n"
         << "    \"degraded_vs_clean\": " << degraded_vs_clean << ",\n"
         << "    \"single\":\n";
    write_json_run(json, chaos_single, "      ");
    json << ",\n    \"multi\":\n";
    write_json_run(json, chaos_multi, "      ");
    json << "\n  }";
  }
  if (glb) {
    mage::glb::GlbParams defaults;
    json << ",\n  \"glb\": {\n"
         << "    \"nodes\": " << defaults.nodes << ",\n"
         << "    \"partitions\": " << defaults.partitions << ",\n"
         << "    \"threads\": 8,\n"
         << "    \"deterministic\": " << (glb_deterministic ? "true" : "false")
         << ",\n"
         << "    \"exactly_once\": " << (glb_exactly_once ? "true" : "false")
         << ",\n"
         << "    \"migrated\": " << (glb_migrated ? "true" : "false") << ",\n"
         << "    \"runs\": [\n";
    for (std::size_t i = 0; i < glb_seeds.size(); ++i) {
      const GlbSeed& s = glb_seeds[i];
      json << "      {\n"
           << "        \"seed\": " << s.seed << ",\n"
           << "        \"tree_size\": " << s.single.tree_size << ",\n"
           << "        \"digest\": " << s.single.digest << ",\n"
           << "        \"processed\": " << s.single.processed << ",\n"
           << "        \"migrations\": " << s.single.migrations << ",\n"
           << "        \"lifeline_steals\": " << s.single.lifeline_steals
           << ",\n"
           << "        \"rebalance_moves\": " << s.single.rebalance_moves
           << ",\n"
           << "        \"table_repairs\": " << s.single.table_repairs << ",\n"
           << "        \"dup_hits\": " << s.single.dup_hits << ",\n"
           << "        \"requeues\": " << s.single.requeues << ",\n"
           << "        \"exec_violations\": " << s.single.exec_violations
           << ",\n"
           << "        \"faults_applied\": " << s.single.faults_applied
           << ",\n"
           << "        \"wall_sec_single\": " << s.single_sec << ",\n"
           << "        \"wall_sec_multi\": " << s.multi_sec << "\n"
           << "      }" << (i + 1 < glb_seeds.size() ? "," : "") << "\n";
    }
    json << "    ]\n  }";
  }
  if (wan) {
    json << ",\n  \"scaling\": [\n";
    for (std::size_t c = 0; c < wan_curves.size(); ++c) {
      const WanCurve& curve = wan_curves[c];
      json << "    {\n"
           << "      \"nodes\": " << curve.params.nodes << ",\n"
           << "      \"sites\": " << curve.params.sites << ",\n"
           << "      \"wan_hop_us\": " << kWanHopUs << ",\n"
           << "      \"mapping\": \"affinity\",\n"
           << "      \"calls\": " << curve.points.front().calls << ",\n"
           << "      \"deterministic\": "
           << (curve.deterministic ? "true" : "false") << ",\n"
           << "      \"mapping_independent\": "
           << (curve.mapping_independent ? "true" : "false") << ",\n"
           << "      \"speedup\": " << curve.speedup << ",\n"
           << "      \"points\": [\n";
      for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const WanRun& r = curve.points[i];
        json << "        {\n"
             << "          \"workers\": " << r.workers << ",\n"
             << "          \"oversubscribed\": "
             << (r.oversubscribed ? "true" : "false") << ",\n"
             << "          \"wall_sec\": " << r.wall_sec << ",\n"
             << "          \"calls_per_sec\": " << r.calls_per_sec << ",\n"
             << "          \"windows\": " << r.windows << ",\n"
             << "          \"messages_sent\": " << r.messages_sent << "\n"
             << "        }" << (i + 1 < curve.points.size() ? "," : "")
             << "\n";
      }
      json << "      ]";
      if (curve.ran_identity) {
        json << ",\n      \"identity\": {\n"
             << "        \"workers\": " << curve.identity.workers << ",\n"
             << "        \"windows\": " << curve.identity.windows << ",\n"
             << "        \"calls_per_sec\": " << curve.identity.calls_per_sec
             << "\n      }";
      }
      json << "\n    }" << (c + 1 < wan_curves.size() ? "," : "") << "\n";
    }
    json << "  ]";
  }
  json << "\n}\n";
  std::cout << "wrote BENCH_storm.json\n";
  if (glb && !glb_ok) {
    std::cerr << "FAIL: glb workload violated its contract (see above); "
                 "BENCH_storm.json records the actual flags\n";
    return 1;
  }
  return 0;
}
