// N-node all-to-all RMI storm: the scale-out stressor for the messaging
// spine (ROADMAP: "scale benches past 2 nodes").
//
// Topology: N fully meshed nodes, every ordered pair (src, dst) a live
// link.  Each link issues kCallsPerLink echo calls with a windowed pipeline
// (kWindow outstanding per link, the completion callback launches the next
// call), so all N*(N-1) links stay saturated while pending tables and the
// event queue stay bounded.
//
// What the storm exercises that the 2-node hotpath bench cannot:
//
//   * reply-cache ring eviction — transports run with a deliberately small
//     cache (kCacheCapacity), so each node's at-most-once ring wraps many
//     times under (N-1)*kCallsPerLink inbound requests; the run fails if
//     no evictions occurred, and at-most-once must still hold (every call
//     completes exactly once);
//   * per-link ordering floors — each payload carries a per-link sequence
//     number and every service asserts FIFO delivery per (src, dst) link
//     (the simulated network's TCP in-order contract under interleaving
//     from N-1 concurrent senders);
//   * completion-wakeup scaling — one driver predicate ("all done") over a
//     storm of hundreds of thousands of events; predicate checks are
//     recorded so docs/PERF.md can track checks-per-event.
//
// Run with no arguments for the full 4/8/16-node ladder, or with a single
// integer argument (e.g. `bench_storm 4`) for a CI smoke run.  Results are
// written to BENCH_storm.json.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "serial/writer.hpp"
#include "sim/simulation.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kCallsPerLink = 500;
constexpr int kWindow = 8;
// Small on purpose: (N-1)*kCallsPerLink inbound requests per node must
// overflow the ring so eviction runs continuously.
constexpr std::size_t kCacheCapacity = 512;

struct StormRun {
  int nodes = 0;
  std::int64_t calls = 0;
  double wall_sec = 0;
  double calls_per_sec = 0;
  std::int64_t evictions = 0;
  std::int64_t retransmissions = 0;
  std::int64_t duplicates_suppressed = 0;
  std::int64_t predicate_checks = 0;
  std::int64_t order_violations = 0;
};

StormRun run_storm(int n) {
  using namespace mage;
  sim::Simulation sim(2026);
  net::Network net(sim, net::CostModel::zero());

  std::vector<common::NodeId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(net.add_node("n" + std::to_string(i)));
  std::vector<std::unique_ptr<rmi::Transport>> transports;
  for (int i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<rmi::Transport>(net, ids[i], kCacheCapacity));
  }

  // Per-receiver FIFO watch: last sequence seen from each sender.  The
  // network promises in-order delivery per directed link; the storm is the
  // first bench with enough interleaving (N-1 concurrent senders per node)
  // to catch a violation.
  StormRun result;
  result.nodes = n;
  std::vector<std::vector<std::int64_t>> last_seq(
      static_cast<std::size_t>(n) + 1,
      std::vector<std::int64_t>(static_cast<std::size_t>(n) + 1, -1));

  const common::VerbId echo = common::intern_verb("storm.echo");
  for (int i = 0; i < n; ++i) {
    const auto self = ids[i];
    transports[i]->register_service(
        echo, [&last_seq, &result, self](common::NodeId caller,
                                         const serial::BufferChain& body,
                                         rmi::Replier replier) {
          serial::ChainReader r(body);
          const auto seq = static_cast<std::int64_t>(r.read_u64());
          auto& last = last_seq[self.value()][caller.value()];
          if (seq <= last) ++result.order_violations;
          last = seq;
          replier.ok(body);
        });
  }

  const std::int64_t total =
      static_cast<std::int64_t>(n) * (n - 1) * kCallsPerLink;
  std::int64_t completed = 0;

  // One windowed pipeline per directed link; the callback chains the next
  // call so each link keeps kWindow requests in flight until drained.
  struct Link {
    rmi::Transport* transport;
    common::NodeId dst;
    std::int64_t next_seq = 0;
  };
  std::vector<Link> links;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) links.push_back(Link{transports[i].get(), ids[j]});
    }
  }

  const common::VerbId verb = echo;
  std::function<void(Link&)> launch = [&](Link& link) {
    if (link.next_seq >= kCallsPerLink) return;
    serial::Writer w(8);
    w.write_u64(static_cast<std::uint64_t>(link.next_seq++));
    link.transport->call(link.dst, verb, w.take(),
                         [&launch, &completed, &link](rmi::CallResult r) {
                           if (!r.ok) {
                             std::cerr << "storm call failed: " << r.error
                                       << "\n";
                             std::exit(1);
                           }
                           ++completed;
                           launch(link);
                         });
  };

  const auto start = Clock::now();
  for (auto& link : links) {
    for (int w = 0; w < kWindow; ++w) launch(link);
  }
  const auto checks_before = sim.stats().counter("sim.predicate_checks");
  const bool done =
      sim.run_until([&] { return completed == total; });
  result.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (!done) {
    std::cerr << "storm drained with " << completed << "/" << total
              << " calls completed\n";
    std::exit(1);
  }

  result.calls = total;
  result.calls_per_sec = static_cast<double>(total) / result.wall_sec;
  result.evictions = sim.stats().counter("rmi.reply_cache_evictions");
  result.retransmissions = sim.stats().counter("rmi.retransmissions");
  result.duplicates_suppressed =
      sim.stats().counter("rmi.duplicates_suppressed");
  result.predicate_checks =
      sim.stats().counter("sim.predicate_checks") - checks_before;

  if (result.order_violations != 0) {
    std::cerr << "FAIL: " << result.order_violations
              << " per-link ordering violations\n";
    std::exit(1);
  }
  if (result.evictions == 0) {
    std::cerr << "FAIL: reply-cache ring never evicted — storm too small "
                 "for cache capacity\n";
    std::exit(1);
  }
  return result;
}

void print_run(const StormRun& r) {
  std::cout << r.nodes << " nodes: "
            << static_cast<std::int64_t>(r.calls_per_sec) << " calls/sec ("
            << r.calls << " calls, " << r.wall_sec << " s), "
            << r.evictions << " evictions, " << r.retransmissions
            << " retransmissions, " << r.predicate_checks
            << " predicate checks, " << r.order_violations
            << " order violations\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes{4, 8, 16};
  if (argc > 1) sizes = {std::atoi(argv[1])};

  std::vector<StormRun> runs;
  for (int n : sizes) {
    runs.push_back(run_storm(n));
    print_run(runs.back());
  }

  std::ofstream json("BENCH_storm.json");
  json << "{\n"
       << "  \"bench\": \"storm\",\n"
       << "  \"calls_per_link\": " << kCallsPerLink << ",\n"
       << "  \"window\": " << kWindow << ",\n"
       << "  \"reply_cache_capacity\": " << kCacheCapacity << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const StormRun& r = runs[i];
    json << "    {\n"
         << "      \"nodes\": " << r.nodes << ",\n"
         << "      \"calls\": " << r.calls << ",\n"
         << "      \"wall_sec\": " << r.wall_sec << ",\n"
         << "      \"calls_per_sec\": " << r.calls_per_sec << ",\n"
         << "      \"reply_cache_evictions\": " << r.evictions << ",\n"
         << "      \"retransmissions\": " << r.retransmissions << ",\n"
         << "      \"duplicates_suppressed\": " << r.duplicates_suppressed
         << ",\n"
         << "      \"predicate_checks\": " << r.predicate_checks << ",\n"
         << "      \"order_violations\": " << r.order_violations << "\n"
         << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_storm.json\n";
  return 0;
}
