// Ablation — MAGE across administrative domains (the Section 7 WAN vision).
//
// Sweeps the inter-domain latency and shows how it shifts the economics of
// each programming model: RPC pays the WAN on every invocation, while the
// mobile models (COD/GREV) pay it once to colocate and then go local.  The
// crossover point — how many invocations before moving wins — is the
// quantitative version of MAGE's raison d'être on a WAN.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

// Total time for `n` invocations from hq on a component in the field,
// either invoking remotely every time (RPC) or pulling it across once
// (COD-style) and invoking locally.
std::pair<double, double> rpc_vs_pull(common::SimDuration wan_us, int n) {
  auto build = [&] {
    auto system = make_system(net::CostModel::jdk122_classic(), 2);
    system->warm_all();
    system->install_class_everywhere("TestObject");
    system->assign_domain(common::NodeId{1}, "hq");
    system->assign_domain(common::NodeId{2}, "field");
    system->set_interdomain_latency(wan_us);
    system->client(common::NodeId{2})
        .create_component("o", "TestObject", /*is_public=*/true);
    system->client(common::NodeId{1}).ping(common::NodeId{2});  // warm link
    return system;
  };

  double rpc_ms = 0, pull_ms = 0;
  {
    auto system = build();
    auto& client = system->client(common::NodeId{1});
    core::Rpc rpc(client, "o", common::NodeId{2});
    system->server(common::NodeId{1})
        .registry()
        .update_forward("o", common::NodeId{2});
    const auto t0 = system->simulation().now();
    auto stub = rpc.bind();
    for (int i = 0; i < n; ++i) {
      (void)stub.invoke<std::int64_t>("increment");
    }
    rpc_ms = common::to_ms(system->simulation().now() - t0);
  }
  {
    auto system = build();
    auto& client = system->client(common::NodeId{1});
    const auto t0 = system->simulation().now();
    core::Cod cod(client, "o");
    auto stub = cod.bind();  // one WAN crossing for the object
    for (int i = 0; i < n; ++i) {
      (void)stub.invoke<std::int64_t>("increment");
    }
    pull_ms = common::to_ms(system->simulation().now() - t0);
  }
  return {rpc_ms, pull_ms};
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: inter-domain (WAN) latency vs model choice");

  Table table({"WAN one-way (ms)", "N invocations", "RPC total (ms)",
               "pull-once total (ms)", "winner"});
  for (common::SimDuration wan : {common::msec(0), common::msec(40),
                                  common::msec(150), common::msec(400)}) {
    for (int n : {1, 2, 5, 20}) {
      const auto [rpc_ms, pull_ms] = rpc_vs_pull(wan, n);
      table.add_row({fmt_ms(common::to_ms(wan), 0), std::to_string(n),
                     fmt_ms(rpc_ms), fmt_ms(pull_ms),
                     rpc_ms <= pull_ms ? "RPC" : "pull (COD)"});
    }
  }
  table.print();

  std::cout << "\nThe crossover sits near N = 3 at every latency — it is "
               "set by the pull protocol's fixed crossing count, not by "
               "the wire — but the *stake* grows with the WAN: at 400 ms "
               "one-way, keeping a chatty component remote costs seconds "
               "per call.  On the Internet-scale network Section 7 "
               "targets, choosing placement dynamically via mobility "
               "attributes is worth orders of magnitude more than on the "
               "paper's LAN.\n";
  return 0;
}
