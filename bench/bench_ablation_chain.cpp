// Ablation — forwarding chains and path collapsing (Section 4.1).
//
// "To find an object, the registry simply follows the chain of forwarding
// addresses ...  As the result returns, each server updates its forwarding
// address, thus collapsing the path."  We build chains of increasing
// length and measure the first lookup (pays one hop per link) against the
// second (collapsed: at most one hop), plus the hop counts.
#include "support/bench_util.hpp"

namespace mage::bench {
namespace {

struct ChainResult {
  double first_ms;
  double second_ms;
  std::int64_t first_hops;
  std::int64_t second_hops;
};

ChainResult run_chain(int length) {
  auto system = make_system(net::CostModel::jdk122_classic(), length + 2);
  system->warm_all();
  system->install_class_everywhere("TestObject");

  // Build the chain: the object starts at node 2 and is moved hop by hop
  // by each intermediate namespace's own client, so node i forwards to
  // node i+1 and nobody shortcuts.
  system->client(common::NodeId{2})
      .create_component("o", "TestObject", /*is_public=*/true);
  for (int i = 2; i < length + 2; ++i) {
    system->client(common::NodeId{static_cast<std::uint32_t>(i)})
        .move("o", common::NodeId{static_cast<std::uint32_t>(i + 1)});
  }

  // The observer (node 1) knows only the chain's head.
  auto& observer = system->client(common::NodeId{1});
  system->server(common::NodeId{1}).registry().update_forward(
      "o", common::NodeId{2});

  ChainResult result{};
  auto hops0 = system->stats().counter("rts.lookup_hops");
  auto t0 = system->simulation().now();
  (void)observer.find("o");
  result.first_ms = common::to_ms(system->simulation().now() - t0);
  result.first_hops = system->stats().counter("rts.lookup_hops") - hops0;

  hops0 = system->stats().counter("rts.lookup_hops");
  t0 = system->simulation().now();
  (void)observer.find("o");
  result.second_ms = common::to_ms(system->simulation().now() - t0);
  result.second_hops = system->stats().counter("rts.lookup_hops") - hops0;
  return result;
}

}  // namespace
}  // namespace mage::bench

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Ablation: forwarding-chain length vs lookup cost, with collapse");

  Table table({"chain length", "1st find (ms)", "1st find hops",
               "2nd find (ms)", "2nd find hops", "collapse speedup"});
  for (int length : {1, 2, 4, 8, 16}) {
    const auto r = run_chain(length);
    table.add_row({std::to_string(length), fmt_ms(r.first_ms),
                   std::to_string(r.first_hops), fmt_ms(r.second_ms),
                   std::to_string(r.second_hops),
                   fmt_ms(r.first_ms / r.second_ms, 2) + "x"});
  }
  table.print();

  std::cout << "\nThe first find walks the whole chain (cost linear in its "
               "length); collapsing rewrites every visited forwarding "
               "address, so the second find is O(1) regardless of the "
               "migration history.\n";
  return 0;
}
