// Figure 6 — "The MAGE System".
//
// The figure shows cooperating JVMs, each with a MAGE registry, server
// objects, mobility attributes (hexagons) bound to objects (circles) by
// shared names.  This harness boots that exact topology, exercises it, and
// dumps the federation state plus the registry/forwarding picture — the
// executable analogue of the diagram.
#include "support/bench_util.hpp"

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Figure 6: the MAGE system — a live federation snapshot");

  auto system = make_system(net::CostModel::jdk122_classic(), 4);
  const common::NodeId n1{1}, n2{2}, n3{3}, n4{4};

  // Components named a, b, c (the figure's letters), bound on different
  // namespaces, some mobile.
  system->client(n1).create_component("a", "TestObject", /*is_public=*/true);
  system->client(n2).create_component("b", "TestObject", /*is_public=*/true);
  system->client(n3).create_component("c", "TestObject", /*is_public=*/true);

  // Mobility attributes on various nodes bound to those names.
  core::Rev rev_a(system->client(n1), "a", n4);
  core::Cle cle_b(system->client(n3), "b");
  core::Cod cod_c(system->client(n2), "c");

  (void)rev_a.bind().invoke<std::int64_t>("increment");
  (void)cle_b.bind().invoke<std::int64_t>("increment");
  (void)cod_c.bind().invoke<std::int64_t>("increment");

  std::cout << system->describe() << "\n";

  Table placement({"component", "home (origin server)", "current namespace",
                   "public"});
  for (const auto& name : {"a", "b", "c"}) {
    common::NodeId at = common::kNoNode;
    for (auto node : system->nodes()) {
      if (system->server(node).registry().has_local(name)) at = node;
    }
    const auto& info = system->directory().info(name);
    placement.add_row({name, system->network().label(info.home),
                       system->network().label(at),
                       info.is_public ? "yes" : "no"});
  }
  placement.print();

  std::cout << "\nforwarding addresses (the registry's location chains):\n";
  for (auto node : system->nodes()) {
    for (const auto& name : {"a", "b", "c"}) {
      if (auto fwd = system->server(node).registry().forward(name)) {
        std::cout << "  " << system->network().label(node) << ": '" << name
                  << "' -> " << system->network().label(*fwd) << "\n";
      }
    }
  }

  std::cout << "\nsystem counters after the session:\n"
            << system->stats().to_string();
  return 0;
}
