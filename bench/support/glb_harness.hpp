// Lifeline-style global load balancing over a DistMap — the shared
// workload behind examples/glb_tree.cpp, tests/dist_chaos_test.cpp, and
// `bench_storm --glb`.
//
// The workload is unbalanced tree expansion (the UTS shape the lifeline
// GLB literature uses): tree node ids are STRUCTURAL (child j of node n is
// 5n+1+j), and the branching factor at each node is a pure hash of
// (seed, id) — subcritical on average, heavy-tailed in practice — so the
// tree is a function of the seed alone, not of discovery order or worker
// count.  Every tree node is expanded exactly once into a DistMap<u64,i64>
// whose 8 partitions all start crammed on namespaces 0 and 1.  Six driver
// chains (one per namespace) expand their statically assigned subtrees
// through the AsyncClient facade while per-node lifeline Rebalancers
// migrate hot partitions toward idle nodes: work follows data, and the
// service load spreads.
//
// Chaos mode overlays a seed-generated fault schedule — loss bursts and a
// partition/heal pair racing the partition migrations.  (No node crashes:
// a crash would vaporize live partition state; surviving that needs the
// replicated state machine of a later PR, not a collection layer.)
// Drivers ride out faults two ways: a generous transport budget (same
// request id — at-most-once safe), and application-level requeue of
// failed expands — safe because `expand` is first-write-wins idempotent
// (a duplicate lands in dup_hits, never in the data).
//
// The result digest folds partition content digests in partition-index
// order: pure map content, no clocks, no placement — so runs at 1, 2, and
// 8 workers must be bit-identical, clean or chaotic.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/cost_model.hpp"
#include "net/fault_schedule.hpp"
#include "net/network.hpp"
#include "rmi/channel.hpp"
#include "rmi/transport.hpp"
#include "rts/async_client.hpp"
#include "rts/directory.hpp"
#include "rts/dist/dist_map.hpp"
#include "rts/dist/layout.hpp"
#include "rts/dist/rebalancer.hpp"
#include "rts/future.hpp"
#include "rts/server.hpp"
#include "sim/sharded.hpp"

namespace mage::glb {

struct GlbParams {
  int nodes = 6;              // namespaces = driver chains = shards
  std::size_t partitions = 8; // DistMap partitions, all seeded on nodes 0-1
  std::uint64_t seed = 1;
  bool chaos = false;
  int window = 3;                       // in-flight expands per driver
  common::SimDuration work_cost_us = 150;  // simulated CPU per expand
  int max_depth = 16;
  common::SimTime fault_t0_us = 1'000;
  common::SimDuration fault_span_us = 6'000;
};

inline std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Children of tree node `id` at `depth`: a pure function of (seed, id), so
// every driver — and every worker count — sees the same tree.  Depth 0-1
// always branch fully (a guaranteed parallel frontier); beyond that the
// process is subcritical (E[children] = 0.22*4 + 0.08*1 = 0.96 < 1) with a
// heavy tail, capped at max_depth.
inline int branching(std::uint64_t seed, std::uint64_t id, int depth,
                     int max_depth) {
  if (depth < 2) return 4;
  if (depth >= max_depth) return 0;
  const std::uint64_t r = splitmix(seed ^ (id * 0x9E3779B97F4A7C15ull)) % 100;
  if (r < 22) return 4;
  if (r < 30) return 1;
  return 0;
}

inline std::uint64_t child_of(std::uint64_t id, int j) {
  return 5 * id + 1 + static_cast<std::uint64_t>(j);
}

// Driver-side ground truth: the tree is a pure function of the seed, so
// its size is computable without touching the federation.
inline std::uint64_t tree_size(std::uint64_t seed, int max_depth) {
  std::deque<std::pair<std::uint64_t, int>> frontier{{1, 0}};
  std::uint64_t count = 0;
  while (!frontier.empty()) {
    const auto [id, depth] = frontier.front();
    frontier.pop_front();
    ++count;
    const int kids = branching(seed, id, depth, max_depth);
    for (int j = 0; j < kids; ++j) frontier.emplace_back(child_of(id, j), depth + 1);
  }
  return count;
}

inline net::CostModel glb_model() {
  net::CostModel m = net::CostModel::zero();
  m.propagation_us = 200;
  m.per_message_cpu_us = 20;
  m.connection_setup_us = 100;
  m.local_invoke_us = 1;
  return m;
}

// Chaos program: loss bursts + partition/heal pairs racing the partition
// migrations.  Deliberately no crash_for — see the header comment.
inline net::FaultSchedule glb_fault_schedule(const GlbParams& params) {
  common::Rng rng(params.seed ^ 0x61Bull);
  const auto n = static_cast<std::uint64_t>(params.nodes);
  const common::SimTime t0 = params.fault_t0_us;
  const common::SimDuration span = params.fault_span_us;
  auto node = [&] {
    return common::NodeId{static_cast<std::uint32_t>(rng.next_below(n) + 1)};
  };
  net::FaultSchedule schedule;
  schedule.loss_burst(t0 + rng.next_below(span / 3),
                      0.05 + 0.25 * rng.next_double(),
                      span / 6 + rng.next_below(span / 6));
  const std::uint64_t partitions = 1 + rng.next_below(2);
  for (std::uint64_t i = 0; i < partitions; ++i) {
    const common::NodeId a = node();
    common::NodeId b = node();
    while (b == a) b = node();
    schedule.partition_for(t0 + rng.next_below(span / 2), a, b,
                           span / 6 + rng.next_below(span / 4));
  }
  return schedule;
}

struct GlbRun {
  // Diagnostics only (not part of the determinism contract): what the
  // requeued expands actually failed with.
  std::map<std::string, std::int64_t> error_counts;
  bool completed = false;
  std::uint64_t tree_size = 0;
  std::uint64_t processed = 0;   // driver-side expand completions
  std::uint64_t digest = 0;      // partition digests folded in index order
  std::uint64_t map_count = 0;   // keys stored across partitions
  std::int64_t map_sum = 0;      // sum of values (all 1s when exactly-once)
  std::uint64_t exec_violations = 0;  // keys whose exec counter != 1
  std::int64_t dup_hits = 0;     // duplicate expands absorbed (chaos only)
  std::int64_t requeues = 0;     // app-level retries after chase failures
  std::int64_t migrations = 0;        // "rts.migrations"
  std::int64_t lifeline_steals = 0;   // "rts.lifeline_steals"
  std::int64_t rebalance_moves = 0;   // "rts.rebalance_moves"
  std::int64_t table_repairs = 0;     // "rts.dist_table_repairs"
  std::int64_t relocates = 0;
  std::int64_t redirects = 0;
  std::int64_t faults_applied = 0;
  std::int64_t windows = 0;

  [[nodiscard]] bool exactly_once() const {
    return exec_violations == 0 && map_count == tree_size &&
           map_sum == static_cast<std::int64_t>(tree_size) &&
           processed == tree_size;
  }
};

inline GlbRun run_glb(const GlbParams& params, int threads) {
  using rts::dist::DistMap;
  using Map = DistMap<std::uint64_t, std::int64_t>;
  const int n = params.nodes;
  const std::string base = "glbmap";
  const net::CostModel model = glb_model();

  sim::ShardedSim ssim(static_cast<std::size_t>(n), params.seed,
                       net::Network::min_link_latency(model));
  net::Network net(ssim, model);

  rts::ClassWorld world;
  Map::register_class(world, "GlbPartition", params.work_cost_us);
  rts::Directory directory;

  std::vector<common::NodeId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(net.add_node("n" + std::to_string(i)));

  std::vector<std::unique_ptr<rmi::Transport>> transports;
  std::vector<std::unique_ptr<rts::MageServer>> servers;
  std::vector<std::unique_ptr<rts::AsyncClient>> clients;
  std::vector<std::unique_ptr<rts::AsyncClient>> probers;
  std::vector<std::unique_ptr<Map>> maps;
  // Drivers: generous per-attempt transport budget (same request id —
  // at-most-once safe) to ride out the fault window; NO channel retries.
  rmi::CallPolicy drive_policy;
  drive_policy.attempt_timeout_us = 3'000;
  drive_policy.attempt_transmissions = 64;
  // Probes are idempotent: hedge and retry freely.
  rmi::CallPolicy probe_policy;
  probe_policy.attempt_timeout_us = 3'000;
  probe_policy.attempt_transmissions = 8;
  probe_policy.max_retries = 2;
  probe_policy.backoff_base_us = 2'000;
  probe_policy.backoff_multiplier = 2.0;
  probe_policy.hedge_after_us = 550;
  for (int i = 0; i < n; ++i) {
    transports.push_back(std::make_unique<rmi::Transport>(net, ids[i]));
    servers.push_back(
        std::make_unique<rts::MageServer>(*transports[i], world, directory));
    servers[i]->class_cache().install("GlbPartition");
    clients.push_back(
        std::make_unique<rts::AsyncClient>(*servers[i], drive_policy));
    probers.push_back(
        std::make_unique<rts::AsyncClient>(*servers[i], probe_policy));
  }
  for (int i = 0; i < n; ++i) {
    maps.push_back(std::make_unique<Map>(*clients[i], base, params.partitions));
  }

  // Deliberately skewed deployment: every partition starts on node 0 or 1.
  for (std::size_t p = 0; p < params.partitions; ++p) {
    Map::bind_partition(*servers[p % 2], directory, "GlbPartition", base, p);
  }

  // Per-node load metric: invocations served per tick (the storm_balancer
  // pattern — each node samples its own shard-local counter).
  constexpr common::SimDuration kLoadTickUs = 2'000;
  std::vector<std::function<void(std::int64_t)>> load_ticks(n);
  for (int i = 0; i < n; ++i) {
    auto& sim = net.node_sim(ids[i]);
    load_ticks[i] = [&net, &sim, id = ids[i],
                     self = &load_ticks[i]](std::int64_t last) {
      const std::int64_t now = sim.stats().counter("rts.invocations");
      net.set_load(id, static_cast<double>(now - last));
      sim.schedule_after(kLoadTickUs, [self, now] { (*self)(now); },
                         sim::Wake::No);
    };
    sim.schedule_at(0, [self = &load_ticks[i]] { (*self)(0); }, sim::Wake::No);
  }

  // Lifeline rebalancers: one per node, stealing toward itself from its
  // ring predecessor and its antipode when idle.  Ticks are staggered per
  // node (deterministically) so steal rounds don't thunder together.
  std::vector<std::unique_ptr<rts::dist::Rebalancer>> rebalancers;
  for (int i = 0; i < n; ++i) {
    rts::dist::Rebalancer::Config config;
    config.prefix = rts::dist::partition_prefix(base);
    config.lifeline = true;
    config.tick_us = 4'000;
    config.start_at_us = 2'000 + 137 * i;
    config.min_load = 1.0;
    config.skew_margin = 1.0;
    config.idle_ceiling = 0.5;
    config.max_moves_per_tick = 1;
    config.buddies = {ids[(i + n - 1) % n], ids[(i + n / 2) % n]};
    rebalancers.push_back(std::make_unique<rts::dist::Rebalancer>(
        net, *probers[i], *clients[i], ids, std::move(config)));
    rebalancers.back()->start();
  }

  GlbRun run;
  run.tree_size = tree_size(params.seed, params.max_depth);

  if (params.chaos) {
    net.set_fifo_checks(true);
    net.set_fault_schedule(glb_fault_schedule(params));
    // Horizon ticks keep virtual time moving past the last schedule entry.
    const common::SimTime horizon =
        params.fault_t0_us + params.fault_span_us * 2;
    for (common::SimTime t = 500; t <= horizon; t += 500) {
      net.node_sim(ids[0]).schedule_at(t, [] {}, sim::Wake::No);
    }
  }

  // --- drivers: one windowed expand chain per namespace --------------------
  //
  // Static work assignment: driver 0 owns depths 0-1 (their children are
  // the depth-2 seeds, so they never enqueue); the 16 depth-2 subtree
  // roots go round-robin across all drivers, and from depth 2 on each
  // driver expands whatever its own subtrees produce.  Every tree node has
  // exactly one statically determined driver — worker count never changes
  // who expands what, only how the shards interleave.
  struct Driver {
    std::deque<std::pair<std::uint64_t, int>> frontier;
    std::int64_t inflight = 0;
    std::int64_t processed = 0;
    std::int64_t requeues = 0;
  };
  std::vector<Driver> drivers(n);
  drivers[0].frontier.push_back({1, 0});
  std::vector<std::uint64_t> depth2;
  for (int j = 0; j < 4; ++j) {
    const std::uint64_t d1 = child_of(1, j);
    drivers[0].frontier.push_back({d1, 1});
    for (int k = 0; k < 4; ++k) depth2.push_back(child_of(d1, k));
  }
  for (std::size_t k = 0; k < depth2.size(); ++k) {
    drivers[k % n].frontier.push_back({depth2[k], 2});
  }

  std::function<void(int)> pump = [&](int g) {
    Driver& driver = drivers[g];
    while (driver.inflight < params.window && !driver.frontier.empty()) {
      const auto [id, depth] = driver.frontier.front();
      driver.frontier.pop_front();
      ++driver.inflight;
      maps[g]
          ->expand(id, 1)
          .then([&, g, id, depth](std::int64_t&) {
            Driver& d = drivers[g];
            ++d.processed;
            // Depth 0-1 children are the statically assigned depth-2
            // seeds; enqueue only from depth 2 down.
            if (depth >= 2) {
              const int kids =
                  branching(params.seed, id, depth, params.max_depth);
              for (int j = 0; j < kids; ++j) {
                d.frontier.push_back({child_of(id, j), depth + 1});
              }
            }
            --d.inflight;
            pump(g);
          })
          .on_error([&, g, id, depth](const std::string& error) {
            ++run.error_counts[error];
            // Transient (fault window / partition mid-flight): requeue.
            // Safe because expand is first-write-wins idempotent.
            Driver& d = drivers[g];
            ++d.requeues;
            d.frontier.push_back({id, depth});
            --d.inflight;
            pump(g);
          });
    }
  };
  for (int g = 0; g < n; ++g) pump(g);

  auto done = [&] {
    for (const auto& d : drivers) {
      if (d.inflight != 0 || !d.frontier.empty()) return false;
    }
    if (net.pending_fault_events() != 0) return false;
    // Let in-flight partition transfers land: a migration that raced the
    // final expands can still hold a stale source copy (in transit) while
    // the destination serves — verification must read settled state.
    for (std::size_t p = 0; p < params.partitions; ++p) {
      const std::string name = rts::dist::partition_name(base, p);
      for (int i = 0; i < n; ++i) {
        if (servers[i]->in_transit(name)) return false;
      }
    }
    return true;
  };
  // Generous virtual-time deadline: a liveness bug fails the run instead
  // of hanging it.
  run.completed = ssim.run_until(done, threads, /*deadline=*/120'000'000);

  // --- verification: read partition state directly (driver-side) ----------
  //
  // After the run every partition lives in exactly one registry; fold
  // content digests in partition-index order so the digest is placement-
  // independent.
  if (!run.completed) {
    // Stall dump: where does every node believe each partition lives?
    for (std::size_t p = 0; p < params.partitions; ++p) {
      const std::string name = rts::dist::partition_name(base, p);
      std::string line = name + ":";
      for (int i = 0; i < n; ++i) {
        auto& reg = servers[i]->registry();
        line += " n" + std::to_string(i);
        if (reg.has_local(name)) line += "=LOCAL";
        if (servers[i]->in_transit(name)) line += "=TRANSIT";
        if (auto f = reg.forward(name)) {
          line += "->" + std::to_string(f->value());
        }
        line += "@" + std::to_string(reg.epoch_of(name));
        line += "/k" + std::to_string(clients[i]->known_epoch(name));
      }
      run.error_counts[line] = -1;
    }
  }
  run.digest = rts::dist::kFnvOffset;
  for (std::size_t p = 0; p < params.partitions; ++p) {
    const std::string name = rts::dist::partition_name(base, p);
    for (int i = 0; i < n; ++i) {
      if (!servers[i]->registry().has_local(name)) continue;
      if (servers[i]->in_transit(name)) continue;  // stale source copy
      auto& partition = dynamic_cast<rts::dist::MapPartition<std::uint64_t, std::int64_t>&>(
          servers[i]->registry().local(name));
      run.digest = rts::dist::fold_hash(run.digest, partition.digest());
      run.map_count += partition.size();
      run.map_sum += partition.reduce_plus();
      run.exec_violations += partition.exec_violations();
      run.dup_hits += partition.dup_hits();
      break;
    }
  }
  for (const auto& d : drivers) {
    run.processed += static_cast<std::uint64_t>(d.processed);
    run.requeues += d.requeues;
  }
  run.migrations = ssim.counter("rts.migrations");
  run.lifeline_steals = ssim.counter("rts.lifeline_steals");
  run.rebalance_moves = ssim.counter("rts.rebalance_moves");
  run.table_repairs = ssim.counter("rts.dist_table_repairs");
  run.relocates = ssim.counter("rts.async_relocates");
  run.redirects = ssim.counter("rts.async_redirects");
  run.faults_applied = ssim.counter("net.faults_applied");
  run.windows = ssim.windows();
  return run;
}

}  // namespace mage::glb
