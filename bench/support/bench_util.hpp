// Shared helpers for the benchmark/report harnesses.
//
// Each bench binary regenerates one table or figure from the paper.  The
// helpers here provide the paper's test object, federation builders, and a
// small fixed-width table printer so every harness reports in the same
// format (EXPERIMENTS.md is assembled from this output).
#pragma once

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/mage.hpp"

namespace mage::bench {

// The paper's test object: "a minimal extension of UnicastRemote ... This
// class has a single integer attribute, which it increments, so its
// marshalling overhead is minimal."
class TestObject : public rts::MageObject {
 public:
  std::string class_name() const override { return "TestObject"; }
  void serialize(serial::Writer& w) const override { w.write_i64(value_); }
  void deserialize(serial::Reader& r) override { value_ = r.read_i64(); }

  std::int64_t increment() { return ++value_; }
  std::int64_t get() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// A test object with configurable state size, for the payload ablation.
class Bulky : public rts::MageObject {
 public:
  std::string class_name() const override { return "Bulky"; }
  void serialize(serial::Writer& w) const override {
    w.write_u32(static_cast<std::uint32_t>(blob_.size()));
    if (!blob_.empty()) w.write_raw(blob_.data(), blob_.size());
  }
  void deserialize(serial::Reader& r) override {
    blob_.resize(r.read_u32());
    if (!blob_.empty()) r.read_raw(blob_.data(), blob_.size());
  }

  void resize(std::int64_t bytes) {
    blob_.assign(static_cast<std::size_t>(bytes), 0x42);
  }
  std::int64_t size() const {
    return static_cast<std::int64_t>(blob_.size());
  }

 private:
  std::vector<std::uint8_t> blob_;
};

inline void register_bench_classes(rts::MageSystem& system) {
  rts::ClassBuilder<TestObject>(system.world(), "TestObject",
                                /*code_size=*/2048)
      .method("increment", &TestObject::increment)
      .method("get", &TestObject::get);
  rts::ClassBuilder<Bulky>(system.world(), "Bulky")
      .method("resize", &Bulky::resize)
      .method("size", &Bulky::size);
}

inline std::unique_ptr<rts::MageSystem> make_system(
    net::CostModel model = net::CostModel::jdk122_classic(),
    int nodes = 2, std::uint64_t seed = 0x6D616765u) {
  auto system = std::make_unique<rts::MageSystem>(model, seed);
  for (int i = 0; i < nodes; ++i) {
    static const char* kLabels[] = {"client", "server", "third", "fourth",
                                    "fifth",  "sixth",  "n7",    "n8"};
    system->add_node(i < 8 ? kLabels[i] : ("n" + std::to_string(i + 1)));
  }
  register_bench_classes(*system);
  return system;
}

// --- fixed-width table printer ---------------------------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]))
           << (c < cells.size() ? cells[c] : "") << " | ";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (auto w : widths) os << std::string(w + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_ms(double ms, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << ms;
  return os.str();
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace mage::bench
