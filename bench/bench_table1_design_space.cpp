// Table 1 — "Distributed Programming Models Parameterized".
//
// Regenerates the design-space table by instantiating each built-in
// mobility attribute against a live federation and asking it for its
// <Location, Target, Moves> triple.  The paper's insight: these triples
// uniquely determine the classical models, and mobility attributes are
// simply instances of them.
#include "support/bench_util.hpp"

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Table 1: Distributed Programming Models Parameterized");

  auto system = make_system(net::CostModel::zero(), 3);
  system->warm_all();
  const common::NodeId n1{1}, n2{2};
  auto& client = system->client(n1);
  client.create_component("obj", "TestObject");
  system->install_class(n2, "TestObject");

  // Instantiate one attribute per model; their triples are intrinsic.
  core::MAgent ma(client, "obj", n2);
  core::Rev rev(client, "obj", n2);
  core::Rpc rpc(client, "obj", n2);
  core::Cle cle(client, "obj");
  core::Cod cod(client, "obj");
  core::Lpc lpc(client, "obj");
  core::Grev grev(client, "obj", n2);

  struct Row {
    core::MobilityAttribute* attribute;
    const char* paper;
  };
  const Row rows[] = {
      {&ma, "<remote, remote, yes>"},
      {&rev, "<local, remote, yes>"},
      {&rpc, "<remote, remote, no>"},
      {&cle, "<not specified, not specified, no>"},
      {&cod, "<remote, local, yes>"},
      {&lpc, "<local, local, no>"},
      {&grev, "(derived, Section 3.3)"},
  };

  Table table({"Model", "Current Location", "Target", "Moves Component",
               "Triple (measured)", "Triple (paper)"});
  bool all_match = true;
  for (const auto& row : rows) {
    const auto triple = row.attribute->triple();
    const auto measured = core::to_string(triple);
    const bool has_paper_value = row.paper[0] == '<';
    if (has_paper_value && measured != row.paper) all_match = false;
    table.add_row({core::model_name(row.attribute->model()),
                   core::locality_name(triple.location),
                   core::locality_name(triple.target),
                   triple.moves ? "yes" : "no", measured, row.paper});
  }
  table.print();

  std::cout << "\nDesign-space coverage: every triple above is a distinct "
               "point; GREV occupies the <any, any, yes> corner the paper "
               "derives, CLE the <any, any, no> corner.\n";
  std::cout << (all_match ? "All paper triples reproduced.\n"
                          : "MISMATCH against the paper's Table 1.\n");
  return all_match ? 0 : 1;
}
