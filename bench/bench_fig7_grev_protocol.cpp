// Figure 7 — "The GREV Protocol".
//
// The paper's message sequence for a GREV bind whose object C is remote
// (namespace Y) but not at the computation target (namespace Z):
//
//   1,2  GREV consults the local MAGE registry to find C
//   3    move request to Y's virtual machine
//   4    Y sends C to Z
//   5    Y informs GREV the move completed
//   6,7  invocation request to Z and its result
//
// We run exactly that configuration with network tracing on, print the
// numbered wire messages, and assert the sequence matches the figure.
#include "net/trace_chart.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace mage;
  using namespace mage::bench;

  banner("Figure 7: the GREV protocol, message by message");

  auto system = make_system(net::CostModel::jdk122_classic(), 3);
  const common::NodeId client{1}, y{3}, z{2};
  system->warm_all();

  // C lives at Y; the client knows only the chain start (its registry
  // forwards to Y — "shared origin server" knowledge).  The class image is
  // everywhere (the figure shows no class traffic).
  system->install_class_everywhere("TestObject");
  system->client(y).create_component("C", "TestObject", /*is_public=*/true);
  system->server(client).registry().update_forward("C", y);

  system->network().set_tracing(true);
  const auto t0 = system->simulation().now();

  core::Grev grev(system->client(client), "C", z);
  auto stub = grev.bind();
  const auto result = stub.invoke<std::int64_t>("increment");

  const auto elapsed = system->simulation().now() - t0;

  Table table({"#", "paper step", "from", "to", "message", "bytes"});
  const char* paper_steps[] = {
      "1-2 find C via registry",   "3 move request to Y",
      "4 Y sends C to Z",          "5 Y informs GREV",
      "6 invoke C at Z",           "7 result returns",
  };
  // Each request/reply pair on the wire is one logical exchange; label the
  // requests with the figure's step numbers.
  int request_index = 0;
  int row = 1;
  for (const auto& entry : system->network().trace()) {
    std::string step;
    const bool is_reply = entry.verb.find(".reply") != std::string::npos;
    if (!is_reply &&
        request_index < static_cast<int>(std::size(paper_steps))) {
      step = paper_steps[request_index++];
    }
    table.add_row({std::to_string(row++), step,
                   system->network().label(entry.from),
                   system->network().label(entry.to), entry.verb,
                   std::to_string(entry.wire_size)});
  }
  table.print();

  std::cout << "\nsequence chart (client = GREV's namespace, third = Y, "
               "server = Z):\n\n"
            << net::render_sequence_chart(system->network(),
                                          system->network().trace(),
                                          {client, y, z});

  std::cout << "\nresult of invocation: " << result
            << "  (simulated latency of bind+invoke: "
            << fmt_ms(common::to_ms(elapsed)) << " ms)\n";

  // Assert the protocol shape: lookup -> move -> transfer -> invoke, with
  // the transfer flowing Y -> Z and the invoke flowing client -> Z.
  std::vector<std::string> requests;
  std::vector<std::pair<common::NodeId, common::NodeId>> endpoints;
  for (const auto& entry : system->network().trace()) {
    if (entry.verb.find(".reply") == std::string::npos) {
      requests.push_back(entry.verb);
      endpoints.emplace_back(entry.from, entry.to);
    }
  }
  bool ok = requests.size() == 4 && requests[0] == "mage.lookup" &&
            requests[1] == "mage.move" && requests[2] == "mage.transfer" &&
            requests[3] == "mage.invoke";
  ok = ok && endpoints[0] == std::make_pair(client, y) &&
       endpoints[1] == std::make_pair(client, y) &&
       endpoints[2] == std::make_pair(y, z) &&
       endpoints[3] == std::make_pair(client, z);
  std::cout << (ok ? "protocol sequence matches Figure 7\n"
                   : "PROTOCOL SEQUENCE MISMATCH\n");
  std::cout << "(the figure 'elides any messages sent by the registry in "
               "the course of finding C'; with a one-hop chain there are "
               "none to elide)\n";
  return ok ? 0 : 1;
}
