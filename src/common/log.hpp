// Minimal leveled logger with pluggable sink.
//
// Default sink is stderr at Warn level so tests stay quiet; benches and
// examples raise the level or install a capture sink when they want message
// traces.  Not thread-safe by design: the reproduction's hot paths run on
// the single-threaded simulation driver.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace mage::common {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

[[nodiscard]] const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  // Process-wide logger used by all modules.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  // Replaces the output sink; pass nullptr to restore the stderr default.
  void set_sink(Sink sink);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, const std::string& message);

 private:
  Logger();

  LogLevel level_ = LogLevel::Warn;
  Sink sink_;
};

namespace detail {

// Builds the log line with a stream so call sites can use operator<<.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace mage::common

#define MAGE_LOG(level)                                            \
  if (!::mage::common::Logger::instance().enabled(level)) {       \
  } else                                                           \
    ::mage::common::detail::LogLine(level)

#define MAGE_TRACE() MAGE_LOG(::mage::common::LogLevel::Trace)
#define MAGE_DEBUG() MAGE_LOG(::mage::common::LogLevel::Debug)
#define MAGE_INFO() MAGE_LOG(::mage::common::LogLevel::Info)
#define MAGE_WARN() MAGE_LOG(::mage::common::LogLevel::Warn)
#define MAGE_ERROR() MAGE_LOG(::mage::common::LogLevel::Error)
