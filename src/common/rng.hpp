// Deterministic pseudo-random number generation.
//
// Everything stochastic in the reproduction (message-loss injection, random
// target-selection policies, synthetic workload generators) draws from this
// generator so a seed fully determines a run.  xoshiro256** seeded through
// splitmix64, the standard pairing recommended by the algorithms' authors.
#pragma once

#include <array>
#include <cstdint>

namespace mage::common {

// splitmix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6D616765u /* "mage" */);

  std::uint64_t next();

  // Uniform in [0, bound).  bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double next_double();

  // True with probability p (clamped to [0, 1]).
  bool next_bool(double p);

  // UniformRandomBitGenerator interface so <random> distributions and
  // std::shuffle can consume an Rng directly.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mage::common
