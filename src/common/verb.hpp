// Interned RMI verb names.
//
// Every remote operation is named by a verb string ("mage.invoke").  The hot
// path used to carry those strings through every envelope, message, and
// dispatch map; now a verb is interned once into a process-wide registry and
// flows as a 32-bit VerbId — dispatch is a flat vector index, per-verb stat
// keys are built once, and the wire carries 4 bytes instead of a
// length-prefixed string.
//
// The registry is process-global because a simulated federation shares one
// process; it models the verb table a real deployment would agree on at
// session setup (see docs/PERF.md for the wire-format invariants).  The
// simulation is single-threaded, so no locking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mage::common {

class VerbId {
 public:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  constexpr VerbId() = default;
  constexpr explicit VerbId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(VerbId, VerbId) = default;
  friend constexpr auto operator<=>(VerbId, VerbId) = default;

 private:
  std::uint32_t value_ = kInvalid;
};

// Interns `name`, returning the same id for the same spelling forever
// (ids are dense, starting at 0 — usable as flat table indexes).
[[nodiscard]] VerbId intern_verb(std::string_view name);

// The spelling `id` was interned under; "<invalid-verb>" for kInvalid or an
// id this process never interned.
[[nodiscard]] const std::string& verb_name(VerbId id);

// Cached per-verb stat key "rmi.calls.<name>" (built once per verb, so the
// per-call stats bump does not concatenate strings).
[[nodiscard]] const std::string& verb_calls_stat(VerbId id);

// Number of verbs interned so far (flat dispatch tables size to this).
[[nodiscard]] std::size_t interned_verb_count();

}  // namespace mage::common

template <>
struct std::hash<mage::common::VerbId> {
  std::size_t operator()(mage::common::VerbId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
