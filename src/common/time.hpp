// Simulated-time types.
//
// The MAGE reproduction runs on a deterministic discrete-event simulator
// (src/sim).  All latencies in the network cost model and all timestamps in
// traces use SimTime, a count of simulated microseconds.  Helper factories
// keep call sites readable (`msec(33)` rather than `33'000`).
#pragma once

#include <cstdint>

namespace mage::common {

// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

// Simulated duration in microseconds.
using SimDuration = std::int64_t;

[[nodiscard]] constexpr SimDuration usec(std::int64_t n) { return n; }
[[nodiscard]] constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
[[nodiscard]] constexpr SimDuration msec_f(double n) {
  return static_cast<SimDuration>(n * 1000.0);
}
[[nodiscard]] constexpr SimDuration sec(std::int64_t n) {
  return n * 1'000'000;
}

// Converts a simulated duration to fractional milliseconds for reporting
// (the paper reports Table 3 in milliseconds).
[[nodiscard]] constexpr double to_ms(SimDuration d) {
  return static_cast<double>(d) / 1000.0;
}

}  // namespace mage::common
