// Move-only type-erased callable with small-buffer optimisation.
//
// The event queue stores one of these per scheduled event.  Two properties
// matter there: (1) move-only, so actions can capture move-only state
// (serial::Buffer, rmi::Replier) without the shared_ptr<std::function>
// indirection the queue used to pay per event; (2) inline storage, so a
// steady-state event (captures up to kInlineSize bytes) allocates nothing —
// the pooled event slab plus this inline storage is what makes scheduling
// allocation-free.  Callables larger than the inline buffer fall back to a
// single heap allocation, exactly like std::function.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace mage::common {

template <typename Sig>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  // Captures up to this many bytes live inline (no heap allocation).  Sized
  // so the transport's largest steady-state capture — a scatter-gather
  // BufferChain body riding with a Replier or an Envelope — stays inline.
  static constexpr std::size_t kInlineSize = 232;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    // Inline storage requires a nothrow move: relocation happens inside
    // noexcept moves and slab growth, where a throwing move (e.g. a const
    // by-value capture whose "move" is an allocating copy) would terminate.
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Relocate the callable from src storage into (raw) dst storage,
    // destroying src.  Needed because slab nodes move when the pool grows.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* p, Args&&... args) -> R {
        return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* p, Args&&... args) -> R {
        return (**static_cast<Fn**>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void move_from(UniqueFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace mage::common
