// Counters and latency summaries used by the benchmark harnesses.
//
// Every layer of the reproduction (network, RMI, runtime, mobility
// attributes) records into a StatsRegistry owned by the simulation, so a
// bench can ask "how many RMI calls did one TREV bind cost?" — the quantity
// the paper uses to explain Table 3 ("REV involves four Java RMI calls").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace mage::common {

// Streaming summary of a series of duration samples.
class DurationSummary {
 public:
  void record(SimDuration sample);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] SimDuration total() const { return total_; }
  [[nodiscard]] SimDuration min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] SimDuration max() const { return max_; }
  [[nodiscard]] double mean() const;

  // Exact percentile over retained samples (all samples are retained; the
  // reproduction's runs are small enough that this is fine).
  [[nodiscard]] SimDuration percentile(double p) const;

  [[nodiscard]] const std::vector<SimDuration>& samples() const {
    return samples_;
  }

 private:
  std::uint64_t count_ = 0;
  SimDuration total_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
  std::vector<SimDuration> samples_;
};

// Named counters + named duration summaries.  Keys are hierarchical strings
// ("net.messages_sent", "rmi.calls", "rts.migrations").
class StatsRegistry {
 public:
  void add(const std::string& key, std::int64_t delta = 1);
  void record(const std::string& key, SimDuration sample);

  // Stable pointer to the counter's slot, for hot paths that bump the same
  // counter millions of times (map nodes never move; reset() zeroes values
  // in place rather than erasing nodes, so handles stay valid).
  [[nodiscard]] std::int64_t* counter_handle(const std::string& key) {
    return &counters_[key];
  }

  [[nodiscard]] std::int64_t counter(const std::string& key) const;
  [[nodiscard]] const DurationSummary* summary(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, DurationSummary>& summaries()
      const {
    return summaries_;
  }

  void reset();

  // Multi-line human-readable dump, used by the fig6 system bench.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, DurationSummary> summaries_;
};

}  // namespace mage::common
