// MAGE error hierarchy.
//
// MAGE surfaces failures as exceptions, mirroring the paper's Java
// implementation ("MAGE RPC throws an exception if it does not find its
// object on its target", Section 4.2).  Every error derives from MageError
// so applications can catch the whole family; specific subclasses let
// mobility attributes and tests distinguish coercion failures from transport
// or registry problems.
#pragma once

#include <stdexcept>
#include <string>

#include "common/ids.hpp"

namespace mage::common {

// Root of the MAGE exception hierarchy.
class MageError : public std::runtime_error {
 public:
  explicit MageError(const std::string& what) : std::runtime_error(what) {}
};

// A component name could not be resolved by the MAGE registry (no binding
// anywhere in the federation, or the forwarding chain was broken).
class NotFoundError : public MageError {
 public:
  NotFoundError(const ComponentName& name, const std::string& detail);
  [[nodiscard]] const ComponentName& name() const { return name_; }

 private:
  ComponentName name_;
};

// A mobility attribute was applied in a configuration its programming model
// forbids and mobility coercion (Section 3.4, Table 2) maps to an error.
// The canonical case: RPC bound to an object that is not at its target.
class CoercionError : public MageError {
 public:
  CoercionError(const ComponentName& name, const std::string& detail);
  [[nodiscard]] const ComponentName& name() const { return name_; }

 private:
  ComponentName name_;
};

// A remote invocation failed at the callee (unknown method, unknown class,
// or the target method itself threw).  The remote what() string is carried
// back to the caller, as RMI does with RemoteException.
class RemoteInvocationError : public MageError {
 public:
  explicit RemoteInvocationError(const std::string& what) : MageError(what) {}
};

// The transport gave up on a request after exhausting retransmissions.
class TransportError : public MageError {
 public:
  explicit TransportError(const std::string& what) : MageError(what) {}
};

// Serialization framing or type-registry problems (unknown class name on
// deserialization models Java's ClassNotFoundException and is what forces
// MAGE to ship class images before object state).
class SerializationError : public MageError {
 public:
  explicit SerializationError(const std::string& what) : MageError(what) {}
};

// Lock protocol violations: unlocking an object the activity does not hold,
// or a lock request timing out.
class LockError : public MageError {
 public:
  explicit LockError(const std::string& what) : MageError(what) {}
};

// A namespace's access-control policy rejected the operation (the
// Section 7 access-control model).  Raised from remote error replies whose
// message carries the "access denied" marker.
class AccessDeniedError : public MageError {
 public:
  explicit AccessDeniedError(const std::string& what) : MageError(what) {}
};

// A namespace's resource-allocation model rejected an admission (object
// count or transfer size over budget).
class CapacityError : public MageError {
 public:
  explicit CapacityError(const std::string& what) : MageError(what) {}
};

}  // namespace mage::common
