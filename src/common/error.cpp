#include "common/error.hpp"

namespace mage::common {

NotFoundError::NotFoundError(const ComponentName& name,
                             const std::string& detail)
    : MageError("component '" + name + "' not found: " + detail),
      name_(name) {}

CoercionError::CoercionError(const ComponentName& name,
                             const std::string& detail)
    : MageError("coercion error on '" + name + "': " + detail), name_(name) {}

}  // namespace mage::common
