#include "common/ids.hpp"

#include <ostream>

namespace mage::common {

std::ostream& operator<<(std::ostream& os, NodeId id) {
  if (is_no_node(id)) return os << "node(-)";
  return os << "node(" << id.value() << ")";
}

}  // namespace mage::common
