// Open-addressed hash table keyed by non-zero u64 — the allocation-free
// replacement for the transport's std::unordered_map state.
//
// unordered_map allocates one heap node per insert, which put two
// allocations on every RMI receive (pending-call bookkeeping plus the
// at-most-once reply cache).  This table stores slots inline in one vector:
// linear probing over a power-of-two capacity, key 0 reserved as the empty
// sentinel (request ids start at 1 and packed (node, request) keys carry a
// non-zero node in the high bits, so 0 never occurs), and backward-shift
// deletion instead of tombstones so lookups never degrade.  Steady-state
// insert/erase touches no allocator; the vector reallocates only on growth,
// and reserve() pins capacity up front for tables with a known bound (the
// reply cache's ring capacity).
//
// find()/try_emplace() return raw value pointers that are invalidated by
// any subsequent insert (rehash) or erase (backward shift) — use, then
// re-look-up, exactly like the transport does.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace mage::common {

template <typename V>
class FlatMap64 {
 public:
  explicit FlatMap64(std::size_t min_slots = 16) {
    slots_.resize(pow2_at_least(min_slots));
    mask_ = slots_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Ensures `n` entries fit without growth (load factor ≤ 3/4).
  void reserve(std::size_t n) {
    const std::size_t want = pow2_at_least(n + n / 3 + 1);
    if (want > slots_.size()) rehash(want);
  }

  V* find(std::uint64_t key) {
    assert(key != 0);
    for (std::size_t i = index(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
    }
  }

  // Default-constructs the value on first insert; returns (value, inserted).
  std::pair<V*, bool> try_emplace(std::uint64_t key) {
    assert(key != 0);
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    for (std::size_t i = index(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (s.key == key) return {&s.value, false};
      if (s.key == 0) {
        s.key = key;
        ++size_;
        return {&s.value, true};
      }
    }
  }

  bool erase(std::uint64_t key) {
    assert(key != 0);
    std::size_t hole = index(key);
    while (true) {
      if (slots_[hole].key == key) break;
      if (slots_[hole].key == 0) return false;
      hole = next(hole);
    }
    // Backward-shift deletion: pull displaced entries over the hole so a
    // probe chain never crosses an empty slot it used to pass through.
    for (std::size_t i = next(hole); slots_[i].key != 0; i = next(i)) {
      const std::size_t home = index(slots_[i].key);
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        slots_[hole].key = slots_[i].key;
        slots_[hole].value = std::move(slots_[i].value);
        hole = i;
      }
    }
    slots_[hole].key = 0;
    slots_[hole].value = V{};  // release held resources now
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;  // 0 = empty
    V value{};
  };

  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 16;
    while (p < n) p *= 2;
    return p;
  }

  // splitmix64 finalizer: packed keys differ only in a few bits; the mix
  // spreads them across the table.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  [[nodiscard]] std::size_t index(std::uint64_t key) const {
    return mix(key) & mask_;
  }
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) & mask_;
  }

  void rehash(std::size_t new_slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_slot_count);
    mask_ = new_slot_count - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != 0) *try_emplace(s.key).first = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mage::common
