// Global heap-allocation counter for allocation-budget assertions.
//
// Including this header replaces the ordinary AND aligned global operator
// new/delete families for the whole binary, counting every allocation in
// mage::common::alloc_count().  The library never includes it; it exists
// for test/bench mains (tests/hotpath_test.cpp, bench/bench_hotpath.cpp)
// that assert the spine's one-allocation-per-send budget.
//
// Include from EXACTLY ONE translation unit per binary: the operators are
// deliberately non-inline definitions (replacement functions), so a second
// inclusion in the same binary is an ODR violation the linker will reject.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace mage::common {

inline std::atomic<std::uint64_t> g_alloc_count{0};

inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace mage::common

void* operator new(std::size_t size) {
  mage::common::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  mage::common::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t alignment =
      static_cast<std::size_t>(align) < sizeof(void*)
          ? sizeof(void*)
          : static_cast<std::size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? alignment : size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

// GCC pairs `new` expressions at call sites with the free() in these
// replaced deletes and warns about a mismatch; the pairing is correct here
// because the replaced operator new above allocates with malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop
