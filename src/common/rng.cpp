#include "common/rng.hpp"

namespace mage::common {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method for unbiased bounded draws.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace mage::common
