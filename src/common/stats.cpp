#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mage::common {

void DurationSummary::record(SimDuration sample) {
  if (count_ == 0 || sample < min_) min_ = sample;
  if (count_ == 0 || sample > max_) max_ = sample;
  total_ += sample;
  ++count_;
  samples_.push_back(sample);
}

double DurationSummary::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(total_) / static_cast<double>(count_);
}

SimDuration DurationSummary::percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<SimDuration> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      std::llround(clamped * static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

void StatsRegistry::add(const std::string& key, std::int64_t delta) {
  counters_[key] += delta;
}

void StatsRegistry::record(const std::string& key, SimDuration sample) {
  summaries_[key].record(sample);
}

std::int64_t StatsRegistry::counter(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

const DurationSummary* StatsRegistry::summary(const std::string& key) const {
  auto it = summaries_.find(key);
  return it == summaries_.end() ? nullptr : &it->second;
}

void StatsRegistry::reset() {
  // Zero in place rather than erase: counter_handle() pointers stay valid.
  for (auto& [key, value] : counters_) value = 0;
  summaries_.clear();
}

std::string StatsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : counters_) {
    os << key << " = " << value << '\n';
  }
  for (const auto& [key, summary] : summaries_) {
    os << key << ": n=" << summary.count() << " mean=" << summary.mean()
       << "us min=" << summary.min() << "us max=" << summary.max() << "us\n";
  }
  return os.str();
}

}  // namespace mage::common
