// Strongly typed identifiers used throughout MAGE.
//
// A MAGE deployment is a federation of cooperating virtual machines; each VM
// hosts exactly one *namespace* (an execution environment that defines
// name-to-component bindings, Section 2 of the paper).  We identify a
// namespace / VM / host by a NodeId.  Components are addressed by string
// names registered in the MAGE registry, mirroring the paper's use of RMI
// registry names.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace mage::common {

// Tag-dispatched strong integral id.  Prevents mixing, say, a NodeId with a
// RequestId at compile time while staying trivially copyable and hashable.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  Rep value_ = 0;
};

struct NodeIdTag {};
struct RequestIdTag {};
struct LockIdTag {};
struct ActivityIdTag {};

// Identifies one namespace (one cooperating VM) in the MAGE federation.
using NodeId = StrongId<NodeIdTag, std::uint32_t>;

// Identifies one RMI request for at-most-once matching of replies.
using RequestId = StrongId<RequestIdTag, std::uint64_t>;

// Identifies one granted or queued lock on a mobile object.
using LockId = StrongId<LockIdTag, std::uint64_t>;

// Identifies one logical thread of execution (client activity).
using ActivityId = StrongId<ActivityIdTag, std::uint64_t>;

// Sentinel used where the paper's models leave a location "not specified"
// (e.g. CLE's computation target, Table 1).
inline constexpr NodeId kNoNode{0xFFFFFFFFu};

[[nodiscard]] inline bool is_no_node(NodeId n) { return n == kNoNode; }

// The name under which a component (class/object pair) is bound in the MAGE
// registry.  Plain string, but aliased for readability at call sites.
using ComponentName = std::string;

std::ostream& operator<<(std::ostream& os, NodeId id);

}  // namespace mage::common

template <typename Tag, typename Rep>
struct std::hash<mage::common::StrongId<Tag, Rep>> {
  std::size_t operator()(mage::common::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
