#include "common/verb.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace mage::common {
namespace {

struct VerbEntry {
  std::string name;
  std::string calls_stat;  // "rmi.calls.<name>"
};

// Threading contract (docs/ARCHITECTURE.md): every registry access is
// serialized by the mutex EXCEPT interned_verb_count, which reads only
// the atomic count — that is the one lookup on the per-call hot path
// (Transport::call's validity check), so it must stay lock-free.
// verb_name/verb_calls_stat sit on error paths and one-time counter
// resolution; they take the mutex because indexing the deque concurrently
// with a push_back (which may grow the deque's internal block map) would
// be a data race.  The returned string references stay valid after
// unlock: deque growth never moves existing elements, and entries are
// never erased.
struct VerbRegistry {
  // Heterogeneous lookup so intern(string_view) does not allocate on hit.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::mutex mutex;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> ids;
  std::deque<VerbEntry> entries;  // stable references, indexed by id
  std::atomic<std::uint32_t> count{0};
};

VerbRegistry& registry() {
  static VerbRegistry instance;
  return instance;
}

const std::string& invalid_name() {
  static const std::string name = "<invalid-verb>";
  return name;
}

}  // namespace

VerbId intern_verb(std::string_view name) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (auto it = reg.ids.find(name); it != reg.ids.end()) {
    return VerbId{it->second};
  }
  const auto id = static_cast<std::uint32_t>(reg.entries.size());
  reg.entries.push_back(
      VerbEntry{std::string(name), "rmi.calls." + std::string(name)});
  reg.ids.emplace(std::string(name), id);
  reg.count.store(id + 1, std::memory_order_release);
  return VerbId{id};
}

const std::string& verb_name(VerbId id) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!id.valid() || id.value() >= reg.entries.size()) return invalid_name();
  return reg.entries[id.value()].name;
}

const std::string& verb_calls_stat(VerbId id) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!id.valid() || id.value() >= reg.entries.size()) return invalid_name();
  return reg.entries[id.value()].calls_stat;
}

std::size_t interned_verb_count() {
  return registry().count.load(std::memory_order_acquire);
}

}  // namespace mage::common
