#include "common/verb.hpp"

#include <deque>
#include <unordered_map>

namespace mage::common {
namespace {

struct VerbEntry {
  std::string name;
  std::string calls_stat;  // "rmi.calls.<name>"
};

struct VerbRegistry {
  // Heterogeneous lookup so intern(string_view) does not allocate on hit.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> ids;
  std::deque<VerbEntry> entries;  // stable references, indexed by id
};

VerbRegistry& registry() {
  static VerbRegistry instance;
  return instance;
}

const std::string& invalid_name() {
  static const std::string name = "<invalid-verb>";
  return name;
}

}  // namespace

VerbId intern_verb(std::string_view name) {
  auto& reg = registry();
  if (auto it = reg.ids.find(name); it != reg.ids.end()) {
    return VerbId{it->second};
  }
  const auto id = static_cast<std::uint32_t>(reg.entries.size());
  reg.entries.push_back(
      VerbEntry{std::string(name), "rmi.calls." + std::string(name)});
  reg.ids.emplace(std::string(name), id);
  return VerbId{id};
}

const std::string& verb_name(VerbId id) {
  const auto& reg = registry();
  if (!id.valid() || id.value() >= reg.entries.size()) return invalid_name();
  return reg.entries[id.value()].name;
}

const std::string& verb_calls_stat(VerbId id) {
  const auto& reg = registry();
  if (!id.valid() || id.value() >= reg.entries.size()) return invalid_name();
  return reg.entries[id.value()].calls_stat;
}

std::size_t interned_verb_count() { return registry().entries.size(); }

}  // namespace mage::common
