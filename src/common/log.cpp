#include "common/log.hpp"

#include <iostream>

namespace mage::common {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { set_sink(nullptr); }

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    return;
  }
  sink_ = [](LogLevel level, const std::string& message) {
    std::cerr << "[mage " << log_level_name(level) << "] " << message << '\n';
  };
}

void Logger::log(LogLevel level, const std::string& message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace mage::common
