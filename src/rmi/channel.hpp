// Channel policy layer: one CallPolicy, composable channel decorators.
//
// A Channel is "a place calls go": the leaf (DirectChannel, FailoverChannel)
// turns a channel call into Transport::call attempts, and decorators
// (RetriableChannel, HedgedChannel) wrap an inner channel with policy —
// retries with backoff, an overall deadline, a hedge request after a
// latency threshold.  Every knob lives in ONE struct, rmi::CallPolicy,
// instead of being spread across CallOptions, per-caller private
// timeout/tries, and ad-hoc driver loops.  Stacks compose bottom-up:
//
//   RetriableChannel(HedgedChannel(DirectChannel(transport, policy)))
//
// Determinism: every timer is simulated, backoff jitter is drawn from the
// calling node's shard RNG, and completions are delivered on the owning
// node's shard — a channel stack replays bit-identically at any worker
// count.  Cancellation rides Transport::cancel, so a hedge winner silences
// the losing branch's retransmission timer outright ("rmi.cancelled_calls").
//
// At-most-once caveat — read before enabling retries or hedging: a
// channel-level retry (or hedge) is a NEW request id, so the transport's
// duplicate suppression does NOT cover it and a non-idempotent verb can
// execute twice.  Transport-level retransmission (CallPolicy::
// attempt_transmissions, same request id, reply-cache-deduplicated) is the
// only at-most-once-safe retry.  Reserve max_retries/hedging for
// idempotent verbs: lookups, load probes, directory resolves, and
// convergent operations like mage.move.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "rmi/transport.hpp"

namespace mage::rmi {

// The unified per-call policy.  A default-constructed policy behaves like a
// bare Transport::call: one channel attempt, transport-level retransmission
// only, no deadline, no hedge.
struct CallPolicy {
  // Overall deadline for the whole call (all retries and hedges included).
  // 0 disables.  Expiry completes the call with an "rmi call ... deadline
  // exceeded" failure and counts "rmi.deadline_exceeded".
  common::SimDuration deadline_us = 0;

  // Per-attempt budget, forwarded to Transport::call: retransmission
  // period and how many transmissions of the SAME request id to make
  // before the attempt fails.  At-most-once safe.
  common::SimDuration attempt_timeout_us = 150'000;
  int attempt_transmissions = 24;

  // Channel-level retries: fresh request ids (see at-most-once caveat in
  // the header comment).  0 disables.  Counted in "rmi.retries".
  int max_retries = 0;
  common::SimDuration backoff_base_us = 4'000;
  double backoff_multiplier = 2.0;
  // Fractional jitter j: each backoff is scaled by a factor drawn
  // uniformly from [1-j, 1+j] using the caller's shard RNG.  0 disables.
  double backoff_jitter = 0.0;

  // Hedging: after this long without a reply, issue a second identical
  // attempt and take whichever answers first (the loser is cancelled).
  // 0 disables.  Counted in "rmi.hedged_calls" / "rmi.hedge_wins".
  common::SimDuration hedge_after_us = 0;

  [[nodiscard]] CallOptions attempt_options() const {
    return CallOptions{attempt_timeout_us, attempt_transmissions};
  }

  // Backoff before retry number `retry` (1-based): base * multiplier^(n-1),
  // jittered.  Never returns less than 1us so a retry is always an event.
  [[nodiscard]] common::SimDuration backoff_us(int retry,
                                               common::Rng& rng) const;

  // The control-plane quorum preset: the exact timing the original
  // directory failover caller shipped with (2ms attempts, one
  // retransmission, 8 sweeps, flat 4ms pause between sweeps) so directory
  // chaos runs replay unchanged.
  [[nodiscard]] static CallPolicy quorum();
};

// Abstract call target.  Tokens are per-channel cancellation handles;
// cancel() guarantees the callback will never fire once it returns.
class Channel {
 public:
  using Token = std::uint64_t;
  static constexpr Token kNoToken = 0;

  virtual ~Channel() = default;

  [[nodiscard]] virtual Transport& transport() = 0;
  virtual Token call(common::NodeId dest, common::VerbId verb,
                     serial::BufferChain body, Transport::Callback done) = 0;
  virtual void cancel(Token token) = 0;

  Token call(common::NodeId dest, std::string_view verb,
             serial::BufferChain body, Transport::Callback done) {
    return call(dest, common::intern_verb(verb), std::move(body),
                std::move(done));
  }

 protected:
  [[nodiscard]] sim::Simulation& sim_of(Transport& transport) {
    return transport.network().node_sim(transport.self());
  }
};

// Leaf: one channel call == one transport call with the policy's
// per-attempt options.  Cancellation forwards to Transport::cancel.
class DirectChannel final : public Channel {
 public:
  DirectChannel(Transport& transport, CallPolicy policy);

  [[nodiscard]] Transport& transport() override { return transport_; }
  Token call(common::NodeId dest, common::VerbId verb,
             serial::BufferChain body, Transport::Callback done) override;
  void cancel(Token token) override;

 private:
  Transport& transport_;
  CallPolicy policy_;
  Token next_token_ = 1;
  std::map<Token, common::RequestId> live_;
};

// Decorator: re-issues failed inner calls up to max_retries times with
// exponential, seeded-jitter backoff, under an optional overall deadline.
class RetriableChannel final : public Channel {
 public:
  RetriableChannel(Channel& inner, CallPolicy policy);

  [[nodiscard]] Transport& transport() override { return inner_.transport(); }
  Token call(common::NodeId dest, common::VerbId verb,
             serial::BufferChain body, Transport::Callback done) override;
  void cancel(Token token) override;

 private:
  struct Call {
    common::NodeId dest;
    common::VerbId verb;
    serial::BufferChain body;  // refcounted; reused verbatim per retry
    Transport::Callback done;
    common::SimTime start = 0;
    int retries_used = 0;
    Token inner = kNoToken;        // outstanding inner-channel call
    sim::EventId backoff_timer{};  // armed between attempts
    bool backing_off = false;
    sim::EventId deadline_timer{};  // armed when policy.deadline_us > 0
    bool deadline_armed = false;
  };

  void attempt(Token token);
  void on_result(Token token, CallResult result);
  void on_deadline(Token token);
  void complete(Token token, CallResult result);

  Channel& inner_;
  CallPolicy policy_;
  sim::Simulation& sim_;
  common::Rng& rng_;
  std::int64_t* retries_;           // "rmi.retries"
  std::int64_t* deadline_exceeded_;  // "rmi.deadline_exceeded"
  Token next_token_ = 1;
  std::map<Token, Call> live_;
};

// Decorator: if the primary attempt has not completed after
// policy.hedge_after_us, issue one identical hedge attempt; the first
// success wins and the loser is cancelled.  A primary failure before the
// hedge fires completes the call immediately (retries are RetriableChannel's
// job, stacked above); once both branches are in flight the call fails only
// when both have failed.
class HedgedChannel final : public Channel {
 public:
  HedgedChannel(Channel& inner, CallPolicy policy);

  [[nodiscard]] Transport& transport() override { return inner_.transport(); }
  Token call(common::NodeId dest, common::VerbId verb,
             serial::BufferChain body, Transport::Callback done) override;
  void cancel(Token token) override;

 private:
  struct Call {
    common::NodeId dest;
    common::VerbId verb;
    serial::BufferChain body;
    Transport::Callback done;
    Token primary = kNoToken;
    Token hedge = kNoToken;
    bool hedge_launched = false;
    sim::EventId hedge_timer{};
    bool timer_armed = false;
    int outstanding = 1;
  };

  void on_branch(Token token, bool is_hedge, CallResult result);
  void launch_hedge(Token token);

  Channel& inner_;
  CallPolicy policy_;
  sim::Simulation& sim_;
  std::int64_t* hedged_calls_;  // "rmi.hedged_calls"
  std::int64_t* hedge_wins_;    // "rmi.hedge_wins"
  Token next_token_ = 1;
  std::map<Token, Call> live_;
};

// Leaf: RMI against a replicated service group (the directory failover
// sweep).  Any member may answer; an application Verdict accepts a reply
// or steers the next attempt (leader redirect); the list is swept starting
// from the last-known-good member, max_retries+1 full rounds with the
// policy backoff between rounds.  Channel::call ignores `dest` and uses an
// accept-any-success verdict; call_with_verdict is the full interface.
class FailoverChannel final : public Channel {
 public:
  // Invoked on each transport-successful reply.  Return true to accept;
  // on rejection, `redirect` may name the member to try next.
  using Verdict = std::function<bool(common::NodeId target,
                                     const CallResult& result,
                                     common::NodeId& redirect)>;

  FailoverChannel(Transport& transport, std::vector<common::NodeId> targets,
                  CallPolicy policy);

  [[nodiscard]] Transport& transport() override { return transport_; }
  Token call(common::NodeId dest, common::VerbId verb,
             serial::BufferChain body, Transport::Callback done) override;
  void cancel(Token token) override;

  Token call_with_verdict(common::VerbId verb, serial::BufferChain body,
                          Verdict verdict, Transport::Callback done);
  Token call_with_verdict(std::string_view verb, serial::BufferChain body,
                          Verdict verdict, Transport::Callback done) {
    return call_with_verdict(common::intern_verb(verb), std::move(body),
                             std::move(verdict), std::move(done));
  }

  // Next sweep starts at `node` (ignored when not a member).
  void set_preferred(common::NodeId node);
  [[nodiscard]] common::NodeId preferred() const { return preferred_; }
  [[nodiscard]] const std::vector<common::NodeId>& targets() const {
    return targets_;
  }
  [[nodiscard]] const CallPolicy& policy() const { return policy_; }

 private:
  struct Sweep {
    common::VerbId verb;
    serial::BufferChain body;  // refcounted; reused verbatim per attempt
    Verdict verdict;
    Transport::Callback done;
    std::size_t position = 0;  // index into targets_ for the next attempt
    int tried_this_round = 0;  // members probed in the current sweep
    int round = 0;
    bool switched = false;  // left the first member at least once
    common::SimTime start = 0;
    common::RequestId inflight{};  // outstanding transport call
    bool inflight_armed = false;
    sim::EventId backoff_timer{};
    bool backing_off = false;
  };

  void attempt(Token token);
  void advance(Token token, common::NodeId redirect);
  void complete(Token token, CallResult result);
  [[nodiscard]] std::size_t index_of(common::NodeId node) const;

  Transport& transport_;
  std::vector<common::NodeId> targets_;
  CallPolicy policy_;
  sim::Simulation& sim_;
  common::Rng& rng_;
  common::NodeId preferred_;
  std::int64_t* failovers_;  // "rmi.directory_failovers"
  Token next_token_ = 1;
  std::map<Token, Sweep> live_;
};

}  // namespace mage::rmi
