// RMI wire envelopes.
//
// Every MAGE network interaction is a request/reply pair ("mobility
// attributes boil down to RMI calls", Section 4.2).  A Request names the
// remote operation (verb) and carries a serialized argument body; a Reply
// carries either a result body or a remote error string.  Replies double as
// acknowledgements; retransmitted Requests are deduplicated at the receiver
// (at-most-once execution).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mage::rmi {

enum class EnvelopeKind : std::uint8_t { Request = 0, Reply = 1 };

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::Request;
  common::RequestId request_id;
  std::string verb;                 // Request: operation name; Reply: echo
  bool ok = true;                   // Reply only: false => error
  std::string error;                // Reply only, when !ok
  std::vector<std::uint8_t> body;   // args (Request) or result (Reply)

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Envelope decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace mage::rmi
