// RMI wire envelopes.
//
// Every MAGE network interaction is a request/reply pair ("mobility
// attributes boil down to RMI calls", Section 4.2).  A Request names the
// remote operation (an interned VerbId) and carries a serialized argument
// body; a Reply carries either a result body or a remote error string.
// Replies double as acknowledgements; retransmitted Requests are
// deduplicated at the receiver (at-most-once execution).
//
// Wire layout (header ++ body, little-endian):
//   u8 kind | u64 request_id | u32 verb | [reply: u8 ok, !ok: str error]
//   | u32 body_size | body bytes
// On the wire a verb is its interned 32-bit id; see docs/PERF.md for the
// invariants this assumes.  The transport sends header and body as separate
// ref-counted buffers (scatter-gather), so the body is never re-copied;
// encode()/decode(flat) provide the concatenated form for tests and tools.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/verb.hpp"
#include "serial/buffer.hpp"

namespace mage::rmi {

enum class EnvelopeKind : std::uint8_t { Request = 0, Reply = 1 };

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::Request;
  common::RequestId request_id;
  common::VerbId verb;              // Request: operation; Reply: echo
  bool ok = true;                   // Reply only: false => error
  std::string error;                // Reply only, when !ok
  serial::Buffer body;              // args (Request) or result (Reply)

  // Framing bytes only (everything but the body); the transport pairs this
  // with `body` in a scatter-gather net::Message.
  [[nodiscard]] serial::Buffer encode_header() const;

  // Concatenated header ++ body (copies the body — test/tool convenience,
  // not the hot path).
  [[nodiscard]] serial::Buffer encode() const;

  // Decodes a scatter-gather pair; validates body size against the header.
  static Envelope decode(const serial::Buffer& header, serial::Buffer body);

  // Decodes the concatenated form; the body is a zero-copy slice of `flat`.
  static Envelope decode(const serial::Buffer& flat);
};

}  // namespace mage::rmi
