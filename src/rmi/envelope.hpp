// RMI wire envelopes.
//
// Every MAGE network interaction is a request/reply pair ("mobility
// attributes boil down to RMI calls", Section 4.2).  A Request names the
// remote operation (an interned VerbId) and carries a serialized argument
// body; a Reply carries either a result body or a remote error string.
// Replies double as acknowledgements; retransmitted Requests are
// deduplicated at the receiver (at-most-once execution).
//
// The body is a scatter-gather fragment list (serial::BufferChain): the
// rts proto layer splices pre-serialized payloads (invocation args, object
// state, results) into the body by refcount, and the header declares the
// fragment sizes so the receiver can reconstruct the list without copying.
//
// Wire layout (header ++ body fragments, little-endian):
//   u8 tag | u64 request_id | u32 verb | [reply: u8 ok, !ok: str error]
//   | fragment framing | fragment bytes, concatenated
// The tag byte packs the kind (bit 0: 0 = Request, 1 = Reply) with the
// single-fragment flag (bit 6, kSingleFragmentFlag).  Fragment framing is
//   flag set:    u32 size                       (exactly one fragment)
//   flag clear:  u8 count | u32 size × count    (0 or 2+ fragments)
// The flag is the hot path: the overwhelmingly common single-buffer body
// (every raw echo, every cached reply) skips the fragment-count byte and
// the per-fragment encode/validate loop — the "single-fragment fast path"
// that reclaims the 2-node echo floor (docs/PERF.md), asserted live by
// bench_hotpath via the fast_path_headers counter.
// On the wire a verb is its interned 32-bit id.  The byte-level contract —
// including the fragment-list framing and the u32 size limits — is
// docs/WIRE_FORMAT.md; the transport sends header and fragments as separate
// ref-counted buffers (scatter-gather), so body bytes are never re-copied.
// encode()/decode(flat) provide the concatenated form for tests and tools.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/verb.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"

namespace mage::rmi {

enum class EnvelopeKind : std::uint8_t { Request = 0, Reply = 1 };

// Tag-byte bit marking the single-fragment fast path (see file comment).
inline constexpr std::uint8_t kSingleFragmentFlag = 0x40;

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::Request;
  common::RequestId request_id;
  common::VerbId verb;              // Request: operation; Reply: echo
  bool ok = true;                   // Reply only: false => error
  std::string error;                // Reply only, when !ok
  serial::BufferChain body;         // args (Request) or result (Reply)

  // Framing bytes only (everything but the fragment bytes); the transport
  // pairs this with `body` in a scatter-gather net::Message.
  [[nodiscard]] serial::Buffer encode_header() const;

  // Concatenated header ++ fragments (gathers the body — test/tool
  // convenience, not the hot path).
  [[nodiscard]] serial::Buffer encode() const;

  // Decodes a scatter-gather pair; validates the body's fragment count and
  // sizes against the header's declarations.
  static Envelope decode(const serial::Buffer& header,
                         serial::BufferChain body);

  // Decodes the concatenated form; body fragments are zero-copy slices of
  // `flat`.
  static Envelope decode(const serial::Buffer& flat);

  // --- fast-path accounting (bench_hotpath's assertion hook) ---------------

  // Headers encoded via the single-fragment fast path vs the general
  // fragment-list path since the last reset.  Thread-safe (relaxed
  // atomics), like serial::Buffer's deep-copy counters.
  [[nodiscard]] static std::uint64_t fast_path_headers();
  [[nodiscard]] static std::uint64_t list_path_headers();
  static void reset_header_counters();
};

}  // namespace mage::rmi
