// RMI wire envelopes.
//
// Every MAGE network interaction is a request/reply pair ("mobility
// attributes boil down to RMI calls", Section 4.2).  A Request names the
// remote operation (an interned VerbId) and carries a serialized argument
// body; a Reply carries either a result body or a remote error string.
// Replies double as acknowledgements; retransmitted Requests are
// deduplicated at the receiver (at-most-once execution).
//
// The body is a scatter-gather fragment list (serial::BufferChain): the
// rts proto layer splices pre-serialized payloads (invocation args, object
// state, results) into the body by refcount, and the header declares the
// fragment sizes so the receiver can reconstruct the list without copying.
//
// Wire layout (header ++ body fragments, little-endian):
//   u8 tag | u64 request_id | u32 verb | [reply: u8 ok, !ok: str error]
//   | fragment framing | fragment bytes, concatenated
// The tag byte packs the kind (bits 0-1: 0 = Request, 1 = Reply,
// 2 = OneWay, 3 = Batch) with the single-fragment flag (bit 6,
// kSingleFragmentFlag).  A OneWay envelope is framed exactly like a
// Request; it just promises the sender expects no Reply.  Fragment framing
// is
//   flag set:    u32 size                       (exactly one fragment)
//   flag clear:  u8 count | u32 size × count    (0 or 2+ fragments)
// The flag is the hot path: the overwhelmingly common single-buffer body
// (every raw echo, every cached reply) skips the fragment-count byte and
// the per-fragment encode/validate loop — the "single-fragment fast path"
// that reclaims the 2-node echo floor (docs/PERF.md), asserted live by
// bench_hotpath via the fast_path_headers counter.
//
// Batch framing (kind 3, never nested, fast-path flag never set):
//   u8 tag(=3) | u32 count | count × { u32 size | sub-envelope bytes }
// where each sub-envelope is the concatenated (flat) form of a Request,
// Reply, or OneWay envelope and `size` is its exact byte length.
// encode_batch() gathers any number of envelopes into one buffer with one
// allocation; decode_batch() reconstructs them as zero-copy slices.
//
// On the wire a verb is its interned 32-bit id.  The byte-level contract —
// including the fragment-list framing and the u32 size limits — is
// docs/WIRE_FORMAT.md; the transport sends header and fragments as separate
// ref-counted buffers (scatter-gather), so body bytes are never re-copied.
// encode()/decode(flat) provide the concatenated form for tests and tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/verb.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"

namespace mage::serial {
class Writer;
}  // namespace mage::serial

namespace mage::rmi {

enum class EnvelopeKind : std::uint8_t {
  Request = 0,
  Reply = 1,
  OneWay = 2,  // a Request that wants no Reply (framed like a Request)
};

// Tag-byte value of a batch container (EnvelopeKind never takes this
// value: a batch is a frame *around* envelopes, not an envelope).
inline constexpr std::uint8_t kBatchTag = 3;

// Tag-byte bit marking the single-fragment fast path (see file comment).
inline constexpr std::uint8_t kSingleFragmentFlag = 0x40;

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::Request;
  common::RequestId request_id;
  common::VerbId verb;              // Request: operation; Reply: echo
  bool ok = true;                   // Reply only: false => error
  std::string error;                // Reply only, when !ok
  serial::BufferChain body;         // args (Request) or result (Reply)

  // Framing bytes only (everything but the fragment bytes); the transport
  // pairs this with `body` in a scatter-gather net::Message.
  [[nodiscard]] serial::Buffer encode_header() const;

  // Concatenated header ++ fragments (gathers the body — test/tool
  // convenience, not the hot path).
  [[nodiscard]] serial::Buffer encode() const;

  // Exact byte length of the concatenated form; lets a caller pre-reserve
  // a Writer so a multi-envelope gather stays a single allocation.
  [[nodiscard]] std::size_t encoded_size() const;

  // Appends the concatenated form (header ++ fragment bytes) to `w`.
  void encode_into(serial::Writer& w) const;

  // Decodes a scatter-gather pair; validates the body's fragment count and
  // sizes against the header's declarations.
  static Envelope decode(const serial::Buffer& header,
                         serial::BufferChain body);

  // Decodes the concatenated form; body fragments are zero-copy slices of
  // `flat`.
  static Envelope decode(const serial::Buffer& flat);

  // --- batch container ------------------------------------------------------

  // True when `wire` starts with the batch tag (kind bits == kBatchTag).
  [[nodiscard]] static bool is_batch(const serial::Buffer& wire);

  // Gathers `envelopes` into one batch frame with exactly one allocation.
  [[nodiscard]] static serial::Buffer encode_batch(
      const std::vector<Envelope>& envelopes);

  // Splits a batch frame back into envelopes; each sub-envelope's body
  // fragments are zero-copy slices of `wire`.  Rejects nested batches.
  [[nodiscard]] static std::vector<Envelope> decode_batch(
      const serial::Buffer& wire);

  // --- fast-path accounting (bench_hotpath's assertion hook) ---------------

  // Headers encoded via the single-fragment fast path vs the general
  // fragment-list path since the last reset.  Thread-safe (relaxed
  // atomics), like serial::Buffer's deep-copy counters.
  [[nodiscard]] static std::uint64_t fast_path_headers();
  [[nodiscard]] static std::uint64_t list_path_headers();
  static void reset_header_counters();
};

}  // namespace mage::rmi
