#include "rmi/failover.hpp"

#include <memory>
#include <utility>

#include "common/error.hpp"

namespace mage::rmi {

struct FailoverCaller::Call {
  common::VerbId verb;
  serial::BufferChain body;  // refcounted; reused verbatim per attempt
  Verdict verdict;
  Transport::Callback done;
  std::size_t position = 0;   // index into targets_ for the next attempt
  int tried_this_round = 0;   // members probed in the current sweep
  int round = 0;
  bool switched = false;      // left the first member at least once
  common::SimTime start = 0;
};

FailoverCaller::FailoverCaller(Transport& transport,
                               std::vector<common::NodeId> targets)
    : FailoverCaller(transport, std::move(targets), Options{}) {}

FailoverCaller::FailoverCaller(Transport& transport,
                               std::vector<common::NodeId> targets,
                               Options options)
    : transport_(transport),
      targets_(std::move(targets)),
      options_(options),
      preferred_(targets_.empty() ? common::kNoNode : targets_.front()),
      failovers_(sim().stats().counter_handle("rmi.directory_failovers")) {
  if (targets_.empty()) {
    throw common::MageError("FailoverCaller needs at least one target");
  }
}

sim::Simulation& FailoverCaller::sim() {
  return transport_.network().node_sim(transport_.self());
}

std::size_t FailoverCaller::index_of(common::NodeId node) const {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i] == node) return i;
  }
  return 0;
}

void FailoverCaller::set_preferred(common::NodeId node) {
  for (auto target : targets_) {
    if (target == node) {
      preferred_ = node;
      return;
    }
  }
}

void FailoverCaller::call(common::VerbId verb, serial::BufferChain body,
                          Verdict verdict, Transport::Callback done) {
  auto state = std::make_shared<Call>();
  state->verb = verb;
  state->body = std::move(body);
  state->verdict = std::move(verdict);
  state->done = std::move(done);
  state->position = index_of(preferred_);
  state->start = sim().now();
  attempt(state);
}

void FailoverCaller::attempt(const std::shared_ptr<Call>& state) {
  const common::NodeId target = targets_[state->position];
  ++state->tried_this_round;
  CallOptions per_attempt;
  per_attempt.retry_timeout_us = options_.attempt_timeout_us;
  per_attempt.max_attempts = options_.attempt_tries;
  transport_.call(
      target, state->verb, state->body,
      [this, state, target](CallResult result) {
        common::NodeId redirect = common::kNoNode;
        if (result.ok && state->verdict(target, result, redirect)) {
          set_preferred(target);
          if (state->switched) {
            sim().stats().add("rmi.directory_failover_time_us",
                              sim().now() - state->start);
          }
          state->done(std::move(result));
          return;
        }
        advance(state, redirect);
      },
      per_attempt);
}

void FailoverCaller::advance(const std::shared_ptr<Call>& state,
                             common::NodeId redirect) {
  ++*failovers_;
  state->switched = true;
  if (!common::is_no_node(redirect) && redirect != targets_[state->position]) {
    // A member told us who the leader is; jump straight there.  The
    // redirect still consumes a probe from the round budget, so a lying
    // quorum cannot loop the sweep forever.
    state->position = index_of(redirect);
  } else {
    state->position = (state->position + 1) % targets_.size();
  }
  if (state->tried_this_round < static_cast<int>(targets_.size())) {
    attempt(state);
    return;
  }
  state->tried_this_round = 0;
  ++state->round;
  if (state->round >= options_.rounds) {
    state->done(CallResult::failure(
        "no directory member accepted the call after " +
        std::to_string(options_.rounds) + " rounds"));
    return;
  }
  sim().schedule_after(
      options_.round_backoff_us, [this, state] { attempt(state); },
      sim::Wake::No);
}

}  // namespace mage::rmi
