// Per-node RMI endpoint.
//
// One Transport is attached to each namespace's network node.  It provides:
//
//   * `call(dest, verb, body, callback)` — asynchronous remote invocation
//     with retransmission on timeout and exactly-one completion of the
//     callback (result, remote error, or transport error after the retry
//     budget is exhausted);
//   * `register_service(verb, service)` — server-side dispatch.  A service
//     may reply immediately or hold its Replier and reply later, which is
//     how multi-party protocols (object move, class fetch, forwarding-chain
//     walks) are written without nested blocking;
//   * at-most-once execution: duplicate requests (retransmissions) never
//     re-execute a service; completed requests re-send the cached reply,
//     in-progress requests are ignored (the eventual reply will answer all
//     copies).
//
// Hot-path layout: verbs are interned VerbIds, so dispatch is a flat vector
// index; bodies are scatter-gather serial::BufferChains of ref-counted
// fragments, so a steady-state call deep-copies zero payload bytes
// (retransmission and the reply cache hold refcounts, not copies); pending
// calls and the reply cache are open-addressed flat tables
// (common::FlatMap64 — no per-insert node allocation), the reply cache
// keyed by a packed (node, request) word with a ring-buffer eviction order
// and pre-sized to its ring capacity so the receive path never allocates.
// Completion wakeups: the transport wakes the simulation exactly where
// user code runs (service dispatch, callback completion), letting
// run_until skip predicate checks on internal events.
//
// Cost accounting per the CostModel: the caller is charged client overhead
// plus marshalling before the request hits the wire; the callee is charged
// dispatch plus unmarshalling before the service runs.  Every successful
// call increments "rmi.calls" — the unit the paper uses to explain Table 3.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.hpp"
#include "common/function.hpp"
#include "common/ids.hpp"
#include "common/verb.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"

namespace mage::rmi {

// Outcome of one RMI call, exactly one of which reaches the callback.
struct CallResult {
  bool ok = false;
  std::string error;          // set when !ok
  serial::BufferChain body;   // set when ok

  static CallResult success(serial::BufferChain body) {
    return CallResult{true, {}, std::move(body)};
  }
  static CallResult failure(std::string error) {
    return CallResult{false, std::move(error), {}};
  }
};

class Transport;

// Handle a service uses to answer one request.  Move-only and strictly
// one-shot: replying a second time (or through a moved-from handle) throws
// MageError — a service that double-replies is a protocol bug, not a
// recoverable condition.
class Replier {
 public:
  Replier() = default;
  Replier(Transport* transport, common::NodeId to, common::RequestId id,
          common::VerbId verb)
      : transport_(transport), to_(to), id_(id), verb_(verb) {}

  Replier(Replier&& other) noexcept { steal(other); }
  Replier& operator=(Replier&& other) noexcept {
    if (this != &other) steal(other);
    return *this;
  }
  Replier(const Replier&) = delete;
  Replier& operator=(const Replier&) = delete;

  void ok(serial::BufferChain body);
  void error(const std::string& message);

  [[nodiscard]] common::NodeId caller() const { return to_; }
  // True until the reply has been sent (false for default-constructed and
  // moved-from handles).
  [[nodiscard]] bool armed() const { return transport_ != nullptr; }

 private:
  void steal(Replier& other) {
    transport_ = other.transport_;
    to_ = other.to_;
    id_ = other.id_;
    verb_ = other.verb_;
    other.transport_ = nullptr;
  }
  // Returns the transport exactly once; throws on reuse.
  Transport* fire();

  Transport* transport_ = nullptr;
  common::NodeId to_;
  common::RequestId id_;
  common::VerbId verb_;
};

struct CallOptions {
  common::SimDuration retry_timeout_us = 150'000;  // 150 simulated ms
  int max_attempts = 24;
};

class Transport {
 public:
  // Move-only: callbacks routinely capture Buffers and Repliers.
  using Callback = common::UniqueFunction<void(CallResult)>;
  // Service receives the caller's node, the argument body, and a Replier.
  // Multi-shot (std::function): one registration answers many requests.
  using Service = std::function<void(common::NodeId caller,
                                     const serial::BufferChain& body,
                                     Replier replier)>;

  // At-most-once reply-cache depth (cached replies retained per node).
  static constexpr std::size_t kReplyCacheCapacity = 8192;

  // `reply_cache_capacity` bounds the at-most-once cache; benches shrink it
  // to exercise ring eviction under load without 8k-call warmups.
  Transport(net::Network& network, common::NodeId self,
            std::size_t reply_cache_capacity = kReplyCacheCapacity);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] common::NodeId self() const { return self_; }
  [[nodiscard]] net::Network& network() { return network_; }

  void register_service(common::VerbId verb, Service service);
  void register_service(std::string_view verb, Service service) {
    register_service(common::intern_verb(verb), std::move(service));
  }

  // Asynchronous call; `callback` fires exactly once.
  void call(common::NodeId dest, common::VerbId verb, serial::BufferChain body,
            Callback callback, CallOptions options = {});
  void call(common::NodeId dest, std::string_view verb,
            serial::BufferChain body, Callback callback,
            CallOptions options = {}) {
    call(dest, common::intern_verb(verb), std::move(body),
         std::move(callback), options);
  }

  // Synchronous call usable only from driver code (runs the event loop
  // until the reply arrives).  Throws RemoteInvocationError on remote
  // error, TransportError when retries are exhausted.
  serial::BufferChain call_sync(common::NodeId dest, common::VerbId verb,
                                serial::BufferChain body,
                                CallOptions options = {});
  serial::BufferChain call_sync(common::NodeId dest, std::string_view verb,
                                serial::BufferChain body,
                                CallOptions options = {}) {
    return call_sync(dest, common::intern_verb(verb), std::move(body),
                     options);
  }

 private:
  friend class Replier;

  struct PendingCall {
    common::NodeId dest;
    common::VerbId verb;
    serial::BufferChain body;  // retained (refcounts) for retransmission
    Callback callback;
    CallOptions options;
    int attempts = 0;
    bool done = false;
    sim::EventId retry_timer;  // outstanding timer, cancelled on completion
  };

  void on_message(net::Message msg);
  // The envelope is consumed (its body moved out) by the handlers.
  void on_request(common::NodeId from, Envelope& env);
  void on_reply(Envelope& env);
  void transmit(common::RequestId id);
  void arm_retry_timer(common::RequestId id);
  void send_reply(common::NodeId to, common::RequestId id,
                  common::VerbId verb, bool ok, const std::string& error,
                  serial::BufferChain body);
  std::int64_t* verb_calls_counter(common::VerbId verb);

  net::Network& network_;
  sim::Simulation& sim_;
  common::NodeId self_;
  // Flat dispatch table indexed by VerbId (grown on register).  A deque so
  // growth never moves existing entries: a service may register new verbs
  // from inside its own handler while its std::function is mid-invocation
  // (re-registering the SAME verb from its own handler is still undefined).
  std::deque<Service> services_;
  // Open-addressed, keyed by request id (ids start at 1, never 0).
  common::FlatMap64<PendingCall> pending_;
  std::uint64_t next_request_ = 1;

  // Hot-path counters (see StatsRegistry::counter_handle).
  std::int64_t* calls_;
  std::int64_t* failures_;
  std::int64_t* retransmissions_;
  std::int64_t* duplicates_suppressed_;
  std::int64_t* stale_replies_;
  std::int64_t* reply_cache_evictions_;
  std::int64_t* evicted_reexecutions_;
  // Per-verb "rmi.calls.<verb>" counters, indexed by VerbId.
  std::vector<std::int64_t*> per_verb_calls_;

  // At-most-once receiver state, keyed by (caller, request id) packed into
  // one 64-bit word (caller in the high bits, request id in the low 32).
  // The full request id is kept in the entry and verified on every hit, so
  // a low-32-bit wraparound can never alias two live requests.  The key is
  // never 0 (node ids start at 1), as FlatMap64 requires.
  //
  // Layout: the open-addressed index probes slim (key, ring slot) pairs —
  // a few slots per cache line — while the fat entries (cached reply
  // envelopes) sit in a ring array in insertion order, each touched only
  // when its request is addressed.  The ring slot being overwritten on
  // insert is the entry evicted.  The index is pre-sized to
  // reply_cache_capacity_ (no rehash, no backward-shift of anything
  // bigger than 16 bytes); the entries ring grows append-only to capacity
  // and is then overwritten in place, so once it has wrapped the receive
  // path never allocates.
  struct ReplyCacheEntry {
    std::uint64_t key = 0;  // pack_key of the request this slot caches
    common::RequestId request_id;
    bool completed = false;  // false => execution still in progress
    Envelope reply;          // valid when completed
  };
  static std::uint64_t pack_key(common::NodeId node, common::RequestId id) {
    return (static_cast<std::uint64_t>(node.value()) << 32) |
           (id.value() & 0xFFFFFFFFull);
  }
  // Claims the ring slot for a fresh key (evicting the slot's previous
  // entry once the ring is full) and indexes it.
  ReplyCacheEntry* reply_cache_insert(std::uint64_t key);

  common::FlatMap64<std::uint32_t> reply_cache_index_;  // key -> ring slot
  std::vector<ReplyCacheEntry> reply_cache_entries_;    // insertion order
  std::size_t reply_cache_head_ = 0;
  std::size_t reply_cache_capacity_;

  // Per-caller-node marks backing the "rmi.evicted_reexecutions" counter
  // (ROADMAP: surface eviction-caused re-executions).  Keyed by the
  // caller's node value (non-zero as FlatMap64 requires; one entry per
  // peer).  `high_water` is the highest request id ever received from the
  // caller; `evicted_max` the highest of the caller's ids whose reply-cache
  // entry has been evicted (or alias-overwritten).  An arriving request
  // that misses the cache with id <= evicted_max re-executes the service —
  // at-most-once broken by cache undersizing — and is counted.  The test
  // is exact whenever the cache is adequately sized (nothing of the
  // caller's was ever evicted => counter provably 0, the chaos-run
  // assertion); in deliberately undersized AND lossy runs a late first
  // transmission below an evicted id can overcount — acceptable for a
  // pressure diagnostic whose load-bearing use is the zero assertion.
  struct CallerMarks {
    std::uint64_t high_water = 0;
    std::uint64_t evicted_max = 0;
  };
  void mark_evicted(std::uint64_t key, common::RequestId id);
  common::FlatMap64<CallerMarks> caller_marks_;
};

}  // namespace mage::rmi
