// Per-node RMI endpoint.
//
// One Transport is attached to each namespace's network node.  It provides:
//
//   * `call(dest, verb, body, callback)` — asynchronous remote invocation
//     with retransmission on timeout and exactly-one completion of the
//     callback (result, remote error, or transport error after the retry
//     budget is exhausted);
//   * `register_service(verb, service)` — server-side dispatch.  A service
//     may reply immediately or hold its Replier and reply later, which is
//     how multi-party protocols (object move, class fetch, forwarding-chain
//     walks) are written without nested blocking;
//   * at-most-once execution: duplicate requests (retransmissions) never
//     re-execute a service; completed requests re-send the cached reply,
//     in-progress requests are ignored (the eventual reply will answer all
//     copies).
//
// Hot-path layout: verbs are interned VerbIds, so dispatch is a flat vector
// index; bodies are scatter-gather serial::BufferChains of ref-counted
// fragments, so a steady-state call deep-copies zero payload bytes
// (retransmission and the reply cache hold refcounts, not copies); pending
// calls and the reply cache are open-addressed flat tables
// (common::FlatMap64 — no per-insert node allocation), the reply cache
// keyed by a packed (node, request) word with a ring-buffer eviction order
// and pre-sized to its ring capacity so the receive path never allocates.
// Completion wakeups: the transport wakes the simulation exactly where
// user code runs (service dispatch, callback completion), letting
// run_until skip predicate checks on internal events.
//
// Cost accounting per the CostModel: the caller is charged client overhead
// plus marshalling before the request hits the wire; the callee is charged
// dispatch plus unmarshalling before the service runs.  Every successful
// call increments "rmi.calls" — the unit the paper uses to explain Table 3.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.hpp"
#include "common/function.hpp"
#include "common/ids.hpp"
#include "common/verb.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"

namespace mage::rmi {

// Outcome of one RMI call, exactly one of which reaches the callback.
struct CallResult {
  bool ok = false;
  std::string error;          // set when !ok
  serial::BufferChain body;   // set when ok

  static CallResult success(serial::BufferChain body) {
    return CallResult{true, {}, std::move(body)};
  }
  static CallResult failure(std::string error) {
    return CallResult{false, std::move(error), {}};
  }
};

class Transport;

// Handle a service uses to answer one request.  Move-only and strictly
// one-shot: replying a second time (or through a moved-from handle) throws
// MageError — a service that double-replies is a protocol bug, not a
// recoverable condition.
class Replier {
 public:
  Replier() = default;
  Replier(Transport* transport, common::NodeId to, common::RequestId id,
          common::VerbId verb)
      : transport_(transport), to_(to), id_(id), verb_(verb) {}

  Replier(Replier&& other) noexcept { steal(other); }
  Replier& operator=(Replier&& other) noexcept {
    if (this != &other) steal(other);
    return *this;
  }
  Replier(const Replier&) = delete;
  Replier& operator=(const Replier&) = delete;

  void ok(serial::BufferChain body);
  void error(const std::string& message);

  [[nodiscard]] common::NodeId caller() const { return to_; }
  // True until the reply has been sent (false for default-constructed and
  // moved-from handles).
  [[nodiscard]] bool armed() const { return transport_ != nullptr; }

 private:
  void steal(Replier& other) {
    transport_ = other.transport_;
    to_ = other.to_;
    id_ = other.id_;
    verb_ = other.verb_;
    other.transport_ = nullptr;
  }
  // Returns the transport exactly once; throws on reuse.
  Transport* fire();

  Transport* transport_ = nullptr;
  common::NodeId to_;
  common::RequestId id_;
  common::VerbId verb_;
};

struct CallOptions {
  common::SimDuration retry_timeout_us = 150'000;  // 150 simulated ms
  int max_attempts = 24;
};

// Per-link invoke coalescing (docs/ARCHITECTURE.md "Flush quanta").  When
// enabled, every outgoing envelope (requests, replies, one-ways) bound for
// a remote node is queued per destination and flushed as ONE batch frame
// (Envelope::encode_batch) at the next flush-quantum boundary — so a burst
// of invokes toward one link and the burst of their replies each ride a
// single net::Message (one mailbox push, one wire_seq).  Quantum boundaries
// are absolute multiples of `flush_quantum_us`, which lines batch flushes
// up with the sharded engine's conservative-lookahead windows when the
// quantum equals the lookahead.
struct BatchOptions {
  bool enabled = false;
  // Flush at the next absolute multiple of this quantum (>= 1).
  common::SimDuration flush_quantum_us = 500;
  // Flush immediately once a link's queue holds this many envelopes...
  std::size_t max_batch_invokes = 1024;
  // ...or this many encoded bytes, whichever trips first.
  std::size_t max_batch_bytes = 256 * 1024;
  // Bodies larger than this bypass batching and keep the scatter-gather
  // zero-copy send path (batch frames gather payload bytes by copy).
  std::size_t max_inline_body = 4096;
};

// Adaptive at-most-once reply-cache sizing (ROADMAP item 1).  Opt-in: the
// ring doubles when eviction pressure accumulates (or instantly on an
// observed eviction-caused re-execution) up to `ceiling`, and halves back
// toward `floor` after an idle period with no evictions.  Growth/shrink
// both preserve exact FIFO eviction order.
struct AdaptiveCacheOptions {
  bool enabled = false;
  std::size_t floor = 512;
  std::size_t ceiling = 8192;
  // Evictions accumulated since the last resize that trigger a doubling.
  // Kept low: every eviction below the ceiling risks a duplicate
  // re-execution, so the ring should double after minimal evidence.
  std::int64_t grow_threshold = 2;
  // Halve (toward floor) when no eviction happened for this long.
  common::SimDuration idle_shrink_us = 250'000;
};

class Transport {
 public:
  // Move-only: callbacks routinely capture Buffers and Repliers.
  using Callback = common::UniqueFunction<void(CallResult)>;
  // Service receives the caller's node, the argument body, and a Replier.
  // Multi-shot (std::function): one registration answers many requests.
  using Service = std::function<void(common::NodeId caller,
                                     const serial::BufferChain& body,
                                     Replier replier)>;

  // At-most-once reply-cache depth (cached replies retained per node).
  static constexpr std::size_t kReplyCacheCapacity = 8192;

  // `reply_cache_capacity` bounds the at-most-once cache; benches shrink it
  // to exercise ring eviction under load without 8k-call warmups.
  Transport(net::Network& network, common::NodeId self,
            std::size_t reply_cache_capacity = kReplyCacheCapacity);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] common::NodeId self() const { return self_; }
  [[nodiscard]] net::Network& network() { return network_; }

  void register_service(common::VerbId verb, Service service);
  void register_service(std::string_view verb, Service service) {
    register_service(common::intern_verb(verb), std::move(service));
  }

  // Asynchronous call; `callback` fires exactly once — unless the call is
  // cancel()ed first, in which case it never fires.  The returned id is the
  // cancellation handle (channels use it; plain callers may ignore it).
  common::RequestId call(common::NodeId dest, common::VerbId verb,
                         serial::BufferChain body, Callback callback,
                         CallOptions options = {});
  common::RequestId call(common::NodeId dest, std::string_view verb,
                         serial::BufferChain body, Callback callback,
                         CallOptions options = {}) {
    return call(dest, common::intern_verb(verb), std::move(body),
                std::move(callback), options);
  }

  // Abandons an in-flight call: the retry timer is cancelled, the pending
  // entry (and its callback, unfired) is destroyed, and a reply arriving
  // later is dropped as stale.  No-op when the call already completed.
  // This is how a hedged channel silences the losing branch.  Counted in
  // "rmi.cancelled_calls".
  void cancel(common::RequestId id);

  // True one-way invoke: no pending-table entry, no retry timer, no reply
  // — and on the receiving side no reply-cache or caller-marks traffic.
  // The service runs with an unarmed Replier (replier.armed() == false);
  // delivery is at-most-once (0 under loss, never 2: nothing retransmits).
  void call_oneway(common::NodeId dest, common::VerbId verb,
                   serial::BufferChain body);
  void call_oneway(common::NodeId dest, std::string_view verb,
                   serial::BufferChain body) {
    call_oneway(dest, common::intern_verb(verb), std::move(body));
  }

  // Enables/disables per-link batching (see BatchOptions).  Any queued
  // envelopes are flushed before the new options take effect.
  void set_batching(BatchOptions options);
  [[nodiscard]] const BatchOptions& batching() const { return batch_options_; }

  // Enables/disables adaptive reply-cache sizing (see AdaptiveCacheOptions).
  // The current capacity is clamped into [floor, ceiling] immediately.
  void set_adaptive_reply_cache(AdaptiveCacheOptions options);
  [[nodiscard]] std::size_t reply_cache_capacity() const {
    return reply_cache_capacity_;
  }

  // Synchronous call usable only from driver code (runs the event loop
  // until the reply arrives).  Throws RemoteInvocationError on remote
  // error, TransportError when retries are exhausted.
  serial::BufferChain call_sync(common::NodeId dest, common::VerbId verb,
                                serial::BufferChain body,
                                CallOptions options = {});
  serial::BufferChain call_sync(common::NodeId dest, std::string_view verb,
                                serial::BufferChain body,
                                CallOptions options = {}) {
    return call_sync(dest, common::intern_verb(verb), std::move(body),
                     options);
  }

 private:
  friend class Replier;

  struct PendingCall {
    common::NodeId dest;
    common::VerbId verb;
    serial::BufferChain body;  // retained (refcounts) for retransmission
    Callback callback;
    CallOptions options;
    int attempts = 0;
    bool done = false;
    sim::EventId retry_timer;  // outstanding timer, cancelled on completion
  };

  void on_message(net::Message msg);
  // The envelope is consumed (its body moved out) by the handlers.
  void dispatch_envelope(common::NodeId from, Envelope& env);
  void on_request(common::NodeId from, Envelope& env);
  void on_oneway(common::NodeId from, Envelope& env);
  void on_reply(Envelope& env);
  void transmit(common::RequestId id);
  void arm_retry_timer(common::RequestId id);
  void send_reply(common::NodeId to, common::RequestId id,
                  common::VerbId verb, bool ok, const std::string& error,
                  serial::BufferChain body);
  std::int64_t* verb_calls_counter(common::VerbId verb);

  // Runs `fn` after `cost` simulated CPU microseconds — inline when the
  // cost model charges nothing (zero-cost benches otherwise pay an event
  // round-trip per call), a Wake::No event otherwise.  RECEIVER SIDE ONLY:
  // inlining is safe only where no driver code can interleave at the same
  // timestamp (message delivery -> service dispatch).  Sender-side steps
  // (call prep, reply marshalling) must stay events even at zero cost, so
  // drivers keep their window to mutate faults before a send reaches the
  // wire.
  template <typename Fn>
  void after_cpu(common::SimDuration cost, Fn&& fn) {
    if (cost == 0) {
      fn();
    } else {
      sim_.schedule_after(cost, std::forward<Fn>(fn), sim::Wake::No);
    }
  }

  // All outgoing envelopes funnel through here: batched links queue the
  // envelope for the next flush boundary, everything else sends now.
  void route(common::NodeId dest, Envelope env, net::MsgKind kind);
  void send_now(common::NodeId dest, Envelope env, net::MsgKind kind);
  void schedule_flush();
  void flush_all();
  void flush_link(std::size_t dest_index);

  // Rebuilds the at-most-once ring at `new_capacity`, keeping the newest
  // entries in exact FIFO order (shrink evicts oldest-first, with the same
  // accounting as a ring wrap).
  void resize_reply_cache(std::size_t new_capacity);

  net::Network& network_;
  sim::Simulation& sim_;
  common::NodeId self_;
  // Flat dispatch table indexed by VerbId (grown on register).  A deque so
  // growth never moves existing entries: a service may register new verbs
  // from inside its own handler while its std::function is mid-invocation
  // (re-registering the SAME verb from its own handler is still undefined).
  std::deque<Service> services_;
  // Open-addressed, keyed by request id (ids start at 1, never 0).
  common::FlatMap64<PendingCall> pending_;
  std::uint64_t next_request_ = 1;

  // Hot-path counters (see StatsRegistry::counter_handle).
  std::int64_t* calls_;
  std::int64_t* failures_;
  std::int64_t* retransmissions_;
  std::int64_t* duplicates_suppressed_;
  std::int64_t* stale_replies_;
  std::int64_t* reply_cache_evictions_;
  std::int64_t* evicted_reexecutions_;
  std::int64_t* cancelled_calls_;
  std::int64_t* oneway_calls_;
  std::int64_t* oneway_executions_;
  std::int64_t* oneway_no_service_;
  std::int64_t* batches_sent_;
  std::int64_t* batched_invokes_;
  std::int64_t* batch_singletons_;
  std::int64_t* reply_cache_grows_;
  std::int64_t* reply_cache_shrinks_;
  std::int64_t* reply_cache_capacity_stat_;
  std::int64_t* reply_cache_capacity_high_water_;
  // Per-verb "rmi.calls.<verb>" counters, indexed by VerbId.
  std::vector<std::int64_t*> per_verb_calls_;

  // --- per-link batching state (see BatchOptions) --------------------------
  struct BatchItem {
    Envelope env;
    net::MsgKind kind;
    std::size_t encoded_size;  // env.encoded_size(), computed once on queue
  };
  struct LinkQueue {
    std::vector<BatchItem> items;  // FIFO; capacity reused across flushes
    std::size_t bytes = 0;         // encoded_size() sum of `items`
  };
  BatchOptions batch_options_;
  common::VerbId batch_verb_;            // interned "rmi.batch", for traces
  std::vector<LinkQueue> batch_queues_;  // indexed by dest NodeId value
  bool flush_scheduled_ = false;         // one flush event serves all links

  // --- adaptive reply-cache state (see AdaptiveCacheOptions) ---------------
  AdaptiveCacheOptions adaptive_cache_;
  std::int64_t evictions_since_resize_ = 0;
  common::SimTime last_eviction_us_ = 0;

  // At-most-once receiver state, keyed by (caller, request id) packed into
  // one 64-bit word (caller in the high bits, request id in the low 32).
  // The full request id is kept in the entry and verified on every hit, so
  // a low-32-bit wraparound can never alias two live requests.  The key is
  // never 0 (node ids start at 1), as FlatMap64 requires.
  //
  // Layout: the open-addressed index probes slim (key, ring slot) pairs —
  // a few slots per cache line — while the fat entries (cached reply
  // envelopes) sit in a ring array in insertion order, each touched only
  // when its request is addressed.  The ring slot being overwritten on
  // insert is the entry evicted.  The index is pre-sized to
  // reply_cache_capacity_ (no rehash, no backward-shift of anything
  // bigger than 16 bytes); the entries ring grows append-only to capacity
  // and is then overwritten in place, so once it has wrapped the receive
  // path never allocates.
  struct ReplyCacheEntry {
    std::uint64_t key = 0;  // pack_key of the request this slot caches
    common::RequestId request_id;
    bool completed = false;  // false => execution still in progress
    Envelope reply;          // valid when completed
  };
  static std::uint64_t pack_key(common::NodeId node, common::RequestId id) {
    return (static_cast<std::uint64_t>(node.value()) << 32) |
           (id.value() & 0xFFFFFFFFull);
  }
  // Claims the ring slot for a fresh key (evicting the slot's previous
  // entry once the ring is full) and indexes it.
  ReplyCacheEntry* reply_cache_insert(std::uint64_t key);

  common::FlatMap64<std::uint32_t> reply_cache_index_;  // key -> ring slot
  std::vector<ReplyCacheEntry> reply_cache_entries_;    // insertion order
  std::size_t reply_cache_head_ = 0;
  std::size_t reply_cache_capacity_;

  // Per-caller-node marks backing the "rmi.evicted_reexecutions" counter
  // (ROADMAP: surface eviction-caused re-executions).  Keyed by the
  // caller's node value (non-zero as FlatMap64 requires; one entry per
  // peer).  `high_water` is the highest request id ever received from the
  // caller; `evicted_max` the highest of the caller's ids whose reply-cache
  // entry has been evicted (or alias-overwritten).  An arriving request
  // that misses the cache with id <= evicted_max re-executes the service —
  // at-most-once broken by cache undersizing — and is counted.  The test
  // is exact whenever the cache is adequately sized (nothing of the
  // caller's was ever evicted => counter provably 0, the chaos-run
  // assertion); in deliberately undersized AND lossy runs a late first
  // transmission below an evicted id can overcount — acceptable for a
  // pressure diagnostic whose load-bearing use is the zero assertion.
  struct CallerMarks {
    std::uint64_t high_water = 0;
    std::uint64_t evicted_max = 0;
  };
  void mark_evicted(std::uint64_t key, common::RequestId id);
  common::FlatMap64<CallerMarks> caller_marks_;
};

}  // namespace mage::rmi
