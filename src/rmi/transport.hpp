// Per-node RMI endpoint.
//
// One Transport is attached to each namespace's network node.  It provides:
//
//   * `call(dest, verb, body, callback)` — asynchronous remote invocation
//     with retransmission on timeout and exactly-one completion of the
//     callback (result, remote error, or transport error after the retry
//     budget is exhausted);
//   * `register_service(verb, service)` — server-side dispatch.  A service
//     may reply immediately or hold its Replier and reply later, which is
//     how multi-party protocols (object move, class fetch, forwarding-chain
//     walks) are written without nested blocking;
//   * at-most-once execution: duplicate requests (retransmissions) never
//     re-execute a service; completed requests re-send the cached reply,
//     in-progress requests are ignored (the eventual reply will answer all
//     copies).
//
// Cost accounting per the CostModel: the caller is charged client overhead
// plus marshalling before the request hits the wire; the callee is charged
// dispatch plus unmarshalling before the service runs.  Every successful
// call increments "rmi.calls" — the unit the paper uses to explain Table 3.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "net/network.hpp"
#include "rmi/envelope.hpp"

namespace mage::rmi {

// Outcome of one RMI call, exactly one of which reaches the callback.
struct CallResult {
  bool ok = false;
  std::string error;                // set when !ok
  std::vector<std::uint8_t> body;   // set when ok

  static CallResult success(std::vector<std::uint8_t> body) {
    return CallResult{true, {}, std::move(body)};
  }
  static CallResult failure(std::string error) {
    return CallResult{false, std::move(error), {}};
  }
};

class Transport;

// Handle a service uses to answer one request; movable, one-shot.
class Replier {
 public:
  Replier() = default;
  Replier(Transport* transport, common::NodeId to, common::RequestId id,
          std::string verb)
      : transport_(transport), to_(to), id_(id), verb_(std::move(verb)) {}

  void ok(std::vector<std::uint8_t> body) const;
  void error(const std::string& message) const;

  [[nodiscard]] common::NodeId caller() const { return to_; }

 private:
  Transport* transport_ = nullptr;
  common::NodeId to_;
  common::RequestId id_;
  std::string verb_;
};

struct CallOptions {
  common::SimDuration retry_timeout_us = 150'000;  // 150 simulated ms
  int max_attempts = 24;
};

class Transport {
 public:
  using Callback = std::function<void(CallResult)>;
  // Service receives the caller's node, the argument body, and a Replier.
  using Service = std::function<void(common::NodeId caller,
                                     const std::vector<std::uint8_t>& body,
                                     Replier replier)>;

  Transport(net::Network& network, common::NodeId self);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] common::NodeId self() const { return self_; }
  [[nodiscard]] net::Network& network() { return network_; }

  void register_service(const std::string& verb, Service service);

  // Asynchronous call; `callback` fires exactly once.
  void call(common::NodeId dest, const std::string& verb,
            std::vector<std::uint8_t> body, Callback callback,
            CallOptions options = {});

  // Synchronous call usable only from driver code (runs the event loop
  // until the reply arrives).  Throws RemoteInvocationError on remote
  // error, TransportError when retries are exhausted.
  std::vector<std::uint8_t> call_sync(common::NodeId dest,
                                      const std::string& verb,
                                      std::vector<std::uint8_t> body,
                                      CallOptions options = {});

 private:
  friend class Replier;

  struct PendingCall {
    common::NodeId dest;
    std::string verb;
    std::vector<std::uint8_t> body;  // retained for retransmission
    Callback callback;
    CallOptions options;
    int attempts = 0;
    bool done = false;
  };

  void on_message(net::Message msg);
  void on_request(common::NodeId from, Envelope env);
  void on_reply(const Envelope& env);
  void transmit(common::RequestId id);
  void arm_retry_timer(common::RequestId id);
  void send_reply(common::NodeId to, common::RequestId id,
                  const std::string& verb, bool ok, const std::string& error,
                  std::vector<std::uint8_t> body);

  net::Network& network_;
  sim::Simulation& sim_;
  common::NodeId self_;
  std::map<std::string, Service> services_;
  std::map<common::RequestId, PendingCall> pending_;
  std::uint64_t next_request_ = 1;

  // At-most-once receiver state, keyed by (caller, request id).
  struct ReplyCacheEntry {
    bool completed = false;  // false => execution still in progress
    Envelope reply;          // valid when completed
  };
  std::map<std::pair<common::NodeId, common::RequestId>, ReplyCacheEntry>
      reply_cache_;
  std::deque<std::pair<common::NodeId, common::RequestId>> reply_cache_order_;
  static constexpr std::size_t kReplyCacheCapacity = 8192;
};

}  // namespace mage::rmi
