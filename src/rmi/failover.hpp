// FailoverCaller: RMI calls against a replicated service group.
//
// DEPRECATED (kept as a thin shim for one PR): the sweep state machine now
// lives in rmi::FailoverChannel (rmi/channel.hpp), configured by the
// unified rmi::CallPolicy instead of this class's private timeout/tries
// knobs.  New code should construct a FailoverChannel (or let
// rts::DirectoryClient build one from a CallPolicy) directly; this wrapper
// only translates its legacy Options into CallPolicy::quorum()-shaped
// policies and forwards.
//
// Every switch to a different member increments "rmi.directory_failovers";
// calls that needed at least one switch also accumulate their total
// duration into "rmi.directory_failover_time_us" — the degraded-mode
// latency the bench reports.  All timing is simulated, so a failover sweep
// replays bit-identically at any worker count.
#pragma once

#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "rmi/channel.hpp"
#include "rmi/transport.hpp"

namespace mage::rmi {

class FailoverCaller {
 public:
  // Legacy knobs, superseded by rmi::CallPolicy (see to_policy()).
  struct Options {
    // Per-member attempt budget: short timeout, one retransmission.
    common::SimDuration attempt_timeout_us = 2'000;
    int attempt_tries = 2;
    // Full sweeps over the target list before the call fails.
    int rounds = 8;
    // Pause between sweeps (lets an election settle before re-probing).
    common::SimDuration round_backoff_us = 4'000;

    [[nodiscard]] CallPolicy to_policy() const {
      CallPolicy policy;
      policy.attempt_timeout_us = attempt_timeout_us;
      policy.attempt_transmissions = attempt_tries;
      policy.max_retries = rounds - 1;  // rounds = retries + 1
      policy.backoff_base_us = round_backoff_us;
      policy.backoff_multiplier = 1.0;
      policy.backoff_jitter = 0.0;
      return policy;
    }
  };

  using Verdict = FailoverChannel::Verdict;

  // `targets` is the member list in deterministic sweep order.  (Two
  // overloads rather than a defaulted Options argument: GCC rejects `= {}`
  // for a nested class with member initializers inside its encloser.)
  FailoverCaller(Transport& transport, std::vector<common::NodeId> targets)
      : channel_(transport, std::move(targets), CallPolicy::quorum()) {}
  [[deprecated("configure with rmi::CallPolicy via FailoverChannel")]]
  FailoverCaller(Transport& transport, std::vector<common::NodeId> targets,
                 Options options)
      : channel_(transport, std::move(targets), options.to_policy()) {}
  FailoverCaller(Transport& transport, std::vector<common::NodeId> targets,
                 CallPolicy policy)
      : channel_(transport, std::move(targets), policy) {}

  // Next sweep starts at `node` (ignored when not a member).
  void set_preferred(common::NodeId node) { channel_.set_preferred(node); }
  [[nodiscard]] common::NodeId preferred() const {
    return channel_.preferred();
  }
  [[nodiscard]] const std::vector<common::NodeId>& targets() const {
    return channel_.targets();
  }
  [[nodiscard]] Transport& transport() { return channel_.transport(); }
  [[nodiscard]] FailoverChannel& channel() { return channel_; }

  // Asynchronous group call; `done` fires exactly once — with the accepted
  // result, or a failure once every round is exhausted.
  void call(common::VerbId verb, serial::BufferChain body, Verdict verdict,
            Transport::Callback done) {
    channel_.call_with_verdict(verb, std::move(body), std::move(verdict),
                               std::move(done));
  }
  void call(std::string_view verb, serial::BufferChain body, Verdict verdict,
            Transport::Callback done) {
    call(common::intern_verb(verb), std::move(body), std::move(verdict),
         std::move(done));
  }

 private:
  FailoverChannel channel_;
};

}  // namespace mage::rmi
