// FailoverCaller: RMI calls against a replicated service group.
//
// A plain Transport::call targets one node and gives up when that node's
// retry budget is exhausted.  Control-plane traffic (directory announce /
// resolve) instead targets a *quorum*: any member may answer, the leader is
// preferred, and a crashed or partitioned member should cost a short
// per-attempt timeout — not the whole call.  FailoverCaller wraps the
// transport with that policy:
//
//   * a fixed target list, swept starting from the last-known-good member
//     (`set_preferred`, typically the leader learned from a reply);
//   * a small per-attempt retry budget, so a dead member is abandoned
//     quickly and deterministically;
//   * an application Verdict invoked on every transport-successful reply —
//     it accepts the result (completing the call), or rejects it and may
//     steer the next attempt at a specific member (a leader redirect);
//   * bounded rounds over the whole list with a fixed backoff between
//     rounds, so the call terminates even while no quorum is reachable.
//
// Every switch to a different member increments "rmi.directory_failovers";
// calls that needed at least one switch also accumulate their total
// duration into "rmi.directory_failover_time_us" — the degraded-mode
// latency the bench reports.  All timing is simulated, so a failover sweep
// replays bit-identically at any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "rmi/transport.hpp"

namespace mage::rmi {

class FailoverCaller {
 public:
  struct Options {
    // Per-member attempt budget: short timeout, one retransmission.
    common::SimDuration attempt_timeout_us = 2'000;
    int attempt_tries = 2;
    // Full sweeps over the target list before the call fails.
    int rounds = 8;
    // Pause between sweeps (lets an election settle before re-probing).
    common::SimDuration round_backoff_us = 4'000;
  };

  // Invoked on each transport-successful reply.  Return true to accept
  // (the callback fires with this result), false to fail over.  On
  // rejection the verdict may set `redirect` to a member that should be
  // tried next (e.g. the leader named in a NotLeader reply).
  using Verdict = std::function<bool(common::NodeId target,
                                     const CallResult& result,
                                     common::NodeId& redirect)>;

  // `targets` is the member list in deterministic sweep order.  (Two
  // overloads rather than a defaulted Options argument: GCC rejects `= {}`
  // for a nested class with member initializers inside its encloser.)
  FailoverCaller(Transport& transport, std::vector<common::NodeId> targets);
  FailoverCaller(Transport& transport, std::vector<common::NodeId> targets,
                 Options options);

  // Next sweep starts at `node` (ignored when not a member).
  void set_preferred(common::NodeId node);
  [[nodiscard]] common::NodeId preferred() const { return preferred_; }
  [[nodiscard]] const std::vector<common::NodeId>& targets() const {
    return targets_;
  }
  [[nodiscard]] Transport& transport() { return transport_; }

  // Asynchronous group call; `done` fires exactly once — with the accepted
  // result, or a failure once every round is exhausted.
  void call(common::VerbId verb, serial::BufferChain body, Verdict verdict,
            Transport::Callback done);
  void call(std::string_view verb, serial::BufferChain body, Verdict verdict,
            Transport::Callback done) {
    call(common::intern_verb(verb), std::move(body), std::move(verdict),
         std::move(done));
  }

 private:
  struct Call;  // per-call state machine (shared_ptr'd across attempts)
  void attempt(const std::shared_ptr<Call>& state);
  void advance(const std::shared_ptr<Call>& state, common::NodeId redirect);
  [[nodiscard]] sim::Simulation& sim();
  [[nodiscard]] std::size_t index_of(common::NodeId node) const;

  Transport& transport_;
  std::vector<common::NodeId> targets_;
  Options options_;
  common::NodeId preferred_;
  std::int64_t* failovers_;  // "rmi.directory_failovers"
};

}  // namespace mage::rmi
