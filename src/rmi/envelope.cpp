#include "rmi/envelope.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::rmi {
namespace {

// Upper bound on header size for Writer pre-reservation: kind + id + verb +
// ok + body_size plus a typical error string.
constexpr std::size_t kHeaderReserve = 64;

void write_header(serial::Writer& w, const Envelope& e) {
  if (e.body.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw common::SerializationError(
        "envelope body of " + std::to_string(e.body.size()) +
        " bytes exceeds the u32 length field");
  }
  w.write_u8(static_cast<std::uint8_t>(e.kind));
  w.write_u64(e.request_id.value());
  w.write_u32(e.verb.value());
  if (e.kind == EnvelopeKind::Reply) {
    w.write_bool(e.ok);
    if (!e.ok) w.write_string(e.error);
  }
  w.write_u32(static_cast<std::uint32_t>(e.body.size()));
}

// Parses the framing fields; returns the declared body size.
std::uint32_t read_header(serial::Reader& r, Envelope& e) {
  const std::uint8_t kind = r.read_u8();
  if (kind > 1) {
    throw common::SerializationError("bad envelope kind " +
                                     std::to_string(kind));
  }
  e.kind = static_cast<EnvelopeKind>(kind);
  e.request_id = common::RequestId{r.read_u64()};
  e.verb = common::VerbId{r.read_u32()};
  if (e.kind == EnvelopeKind::Reply) {
    e.ok = r.read_bool();
    if (!e.ok) e.error = r.read_string();
  }
  return r.read_u32();
}

}  // namespace

serial::Buffer Envelope::encode_header() const {
  serial::Writer w(kHeaderReserve);
  write_header(w, *this);
  return w.take();
}

serial::Buffer Envelope::encode() const {
  serial::Writer w(kHeaderReserve + body.size());
  write_header(w, *this);
  if (!body.empty()) w.write_raw(body.data(), body.size());
  return w.take();
}

Envelope Envelope::decode(const serial::Buffer& header, serial::Buffer body) {
  serial::Reader r(header.span());
  Envelope e;
  const std::uint32_t body_size = read_header(r, e);
  if (!r.at_end() || body_size != body.size()) {
    throw common::SerializationError(
        "envelope framing mismatch: header declares " +
        std::to_string(body_size) + " body bytes, got " +
        std::to_string(body.size()));
  }
  e.body = std::move(body);
  return e;
}

Envelope Envelope::decode(const serial::Buffer& flat) {
  serial::Reader r(flat);
  Envelope e;
  const std::uint32_t body_size = read_header(r, e);
  if (r.remaining() != body_size) {
    throw common::SerializationError(
        "envelope framing mismatch: header declares " +
        std::to_string(body_size) + " body bytes, " +
        std::to_string(r.remaining()) + " follow");
  }
  if (body_size > 0) e.body = flat.slice(r.offset(), body_size);
  return e;
}

}  // namespace mage::rmi
