#include "rmi/envelope.hpp"

#include <atomic>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::rmi {
namespace {

// Upper bound on header size for Writer pre-reservation: tag + id + verb +
// ok + fragment framing plus a typical error string.
constexpr std::size_t kHeaderReserve = 64;

std::atomic<std::uint64_t> g_fast_headers{0};
std::atomic<std::uint64_t> g_list_headers{0};

// Exact framing-byte count write_header() will emit for `e`.
std::size_t header_size(const Envelope& e) {
  std::size_t n = 1 + 8 + 4;  // tag + request_id + verb
  if (e.kind == EnvelopeKind::Reply) {
    n += 1;                             // ok
    if (!e.ok) n += 4 + e.error.size();  // str error
  }
  n += e.body.fragments() == 1 ? 4 : 1 + 4 * e.body.fragments();
  return n;
}

void write_header(serial::Writer& w, const Envelope& e) {
  if (e.body.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw common::SerializationError(
        "envelope body of " + std::to_string(e.body.size()) +
        " bytes exceeds the u32 total-size limit");
  }
  const bool single = e.body.fragments() == 1;
  std::uint8_t tag = static_cast<std::uint8_t>(e.kind);
  if (single) tag |= kSingleFragmentFlag;
  w.write_u8(tag);
  w.write_u64(e.request_id.value());
  w.write_u32(e.verb.value());
  if (e.kind == EnvelopeKind::Reply) {
    w.write_bool(e.ok);
    if (!e.ok) w.write_string(e.error);
  }
  if (single) {
    // Fast path: the dominant single-buffer body skips the count byte and
    // the per-fragment loop.
    w.write_u32(static_cast<std::uint32_t>(e.body.fragment(0).size()));
    g_fast_headers.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  w.write_u8(static_cast<std::uint8_t>(e.body.fragments()));
  for (std::size_t i = 0; i < e.body.fragments(); ++i) {
    w.write_u32(static_cast<std::uint32_t>(e.body.fragment(i).size()));
  }
  g_list_headers.fetch_add(1, std::memory_order_relaxed);
}

// Parsed fragment declarations from a header.
struct FragmentList {
  std::uint8_t count = 0;
  std::uint32_t sizes[serial::BufferChain::kMaxFragments] = {};
  std::uint64_t total = 0;
};

// Parses the framing fields; returns the declared fragment list.
FragmentList read_header(serial::Reader& r, Envelope& e) {
  const std::uint8_t tag = r.read_u8();
  const bool single = (tag & kSingleFragmentFlag) != 0;
  const std::uint8_t kind = tag & static_cast<std::uint8_t>(~kSingleFragmentFlag);
  if (kind == kBatchTag) {
    throw common::SerializationError(
        "batch frame where a single envelope was expected; use "
        "Envelope::decode_batch");
  }
  if (kind > static_cast<std::uint8_t>(EnvelopeKind::OneWay)) {
    throw common::SerializationError("bad envelope tag " +
                                     std::to_string(tag));
  }
  e.kind = static_cast<EnvelopeKind>(kind);
  e.request_id = common::RequestId{r.read_u64()};
  e.verb = common::VerbId{r.read_u32()};
  if (e.kind == EnvelopeKind::Reply) {
    e.ok = r.read_bool();
    if (!e.ok) e.error = r.read_string();
  }
  FragmentList frags;
  if (single) {
    frags.count = 1;
    frags.sizes[0] = r.read_u32();
    frags.total = frags.sizes[0];
    return frags;
  }
  frags.count = r.read_u8();
  if (frags.count > serial::BufferChain::kMaxFragments) {
    throw common::SerializationError(
        "envelope declares " + std::to_string(frags.count) +
        " body fragments; this implementation accepts at most " +
        std::to_string(serial::BufferChain::kMaxFragments));
  }
  for (std::uint8_t i = 0; i < frags.count; ++i) {
    frags.sizes[i] = r.read_u32();
    frags.total += frags.sizes[i];
  }
  if (frags.total > std::numeric_limits<std::uint32_t>::max()) {
    throw common::SerializationError(
        "envelope fragments total " + std::to_string(frags.total) +
        " bytes, exceeding the u32 total-size limit");
  }
  return frags;
}

}  // namespace

serial::Buffer Envelope::encode_header() const {
  serial::Writer w(kHeaderReserve);
  write_header(w, *this);
  return w.take();
}

serial::Buffer Envelope::encode() const {
  serial::Writer w(encoded_size());
  encode_into(w);
  return w.take();
}

std::size_t Envelope::encoded_size() const {
  return header_size(*this) + body.size();
}

void Envelope::encode_into(serial::Writer& w) const {
  write_header(w, *this);
  body.write_to(w);
}

Envelope Envelope::decode(const serial::Buffer& header,
                          serial::BufferChain body) {
  serial::Reader r(header.span());
  Envelope e;
  const FragmentList frags = read_header(r, e);
  bool match = r.at_end() && frags.count == body.fragments();
  for (std::uint8_t i = 0; match && i < frags.count; ++i) {
    match = frags.sizes[i] == body.fragment(i).size();
  }
  if (!match) {
    throw common::SerializationError(
        "envelope framing mismatch: header declares " +
        std::to_string(frags.count) + " fragments, body has " +
        std::to_string(body.fragments()) + " totalling " +
        std::to_string(body.size()) + " bytes");
  }
  e.body = std::move(body);
  return e;
}

std::uint64_t Envelope::fast_path_headers() {
  return g_fast_headers.load(std::memory_order_relaxed);
}

std::uint64_t Envelope::list_path_headers() {
  return g_list_headers.load(std::memory_order_relaxed);
}

void Envelope::reset_header_counters() {
  g_fast_headers.store(0, std::memory_order_relaxed);
  g_list_headers.store(0, std::memory_order_relaxed);
}

bool Envelope::is_batch(const serial::Buffer& wire) {
  return wire.size() >= 1 &&
         (wire.data()[0] & static_cast<std::uint8_t>(~kSingleFragmentFlag)) ==
             kBatchTag;
}

serial::Buffer Envelope::encode_batch(const std::vector<Envelope>& envelopes) {
  std::size_t total = 1 + 4;  // tag + count
  for (const Envelope& e : envelopes) total += 4 + e.encoded_size();
  serial::Writer w(total);
  w.write_u8(kBatchTag);
  w.write_u32(static_cast<std::uint32_t>(envelopes.size()));
  for (const Envelope& e : envelopes) {
    w.write_u32(static_cast<std::uint32_t>(e.encoded_size()));
    e.encode_into(w);
  }
  return w.take();
}

std::vector<Envelope> Envelope::decode_batch(const serial::Buffer& wire) {
  serial::Reader r(wire);
  const std::uint8_t tag = r.read_u8();
  if (tag != kBatchTag) {
    throw common::SerializationError("not a batch frame: tag " +
                                     std::to_string(tag));
  }
  const std::uint32_t count = r.read_u32();
  std::vector<Envelope> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t size = r.read_u32();
    if (size > r.remaining()) {
      throw common::SerializationError(
          "batch sub-envelope " + std::to_string(i) + " declares " +
          std::to_string(size) + " bytes, " + std::to_string(r.remaining()) +
          " remain");
    }
    const std::size_t at = r.offset();
    (void)r.read_span(size);
    out.push_back(decode(wire.slice(at, size)));
  }
  if (!r.at_end()) {
    throw common::SerializationError(
        "batch frame has " + std::to_string(r.remaining()) +
        " trailing bytes after " + std::to_string(count) + " sub-envelopes");
  }
  return out;
}

Envelope Envelope::decode(const serial::Buffer& flat) {
  serial::Reader r(flat);
  Envelope e;
  const FragmentList frags = read_header(r, e);
  if (r.remaining() != frags.total) {
    throw common::SerializationError(
        "envelope framing mismatch: header declares " +
        std::to_string(frags.total) + " body bytes, " +
        std::to_string(r.remaining()) + " follow");
  }
  std::size_t offset = r.offset();
  for (std::uint8_t i = 0; i < frags.count; ++i) {
    e.body.append(flat.slice(offset, frags.sizes[i]));
    offset += frags.sizes[i];
  }
  return e;
}

}  // namespace mage::rmi
