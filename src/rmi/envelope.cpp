#include "rmi/envelope.hpp"

#include "common/error.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::rmi {

std::vector<std::uint8_t> Envelope::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_u64(request_id.value());
  w.write_string(verb);
  if (kind == EnvelopeKind::Reply) {
    w.write_bool(ok);
    if (!ok) w.write_string(error);
  }
  w.write_u32(static_cast<std::uint32_t>(body.size()));
  if (!body.empty()) w.write_raw(body.data(), body.size());
  return w.take();
}

Envelope Envelope::decode(const std::vector<std::uint8_t>& bytes) {
  serial::Reader r(bytes);
  Envelope e;
  const std::uint8_t kind = r.read_u8();
  if (kind > 1) {
    throw common::SerializationError("bad envelope kind " +
                                     std::to_string(kind));
  }
  e.kind = static_cast<EnvelopeKind>(kind);
  e.request_id = common::RequestId{r.read_u64()};
  e.verb = r.read_string();
  if (e.kind == EnvelopeKind::Reply) {
    e.ok = r.read_bool();
    if (!e.ok) e.error = r.read_string();
  }
  const std::uint32_t body_size = r.read_u32();
  e.body.resize(body_size);
  if (body_size > 0) r.read_raw(e.body.data(), body_size);
  return e;
}

}  // namespace mage::rmi
