#include "rmi/channel.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace mage::rmi {

common::SimDuration CallPolicy::backoff_us(int retry,
                                           common::Rng& rng) const {
  double backoff = static_cast<double>(backoff_base_us);
  for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
  if (backoff_jitter > 0.0) {
    // Uniform in [1-j, 1+j], one RNG draw per backoff: deterministic given
    // the shard's seed and the (replayable) order of channel events.
    backoff *= 1.0 + backoff_jitter * (2.0 * rng.next_double() - 1.0);
  }
  if (backoff < 1.0) return 1;
  return static_cast<common::SimDuration>(backoff);
}

CallPolicy CallPolicy::quorum() {
  CallPolicy policy;
  policy.attempt_timeout_us = 2'000;
  policy.attempt_transmissions = 2;
  policy.max_retries = 7;  // 8 full sweeps, as the legacy caller's rounds=8
  policy.backoff_base_us = 4'000;
  policy.backoff_multiplier = 1.0;  // flat pause between sweeps
  policy.backoff_jitter = 0.0;
  return policy;
}

// --- DirectChannel ---------------------------------------------------------

DirectChannel::DirectChannel(Transport& transport, CallPolicy policy)
    : transport_(transport), policy_(policy) {}

Channel::Token DirectChannel::call(common::NodeId dest, common::VerbId verb,
                                   serial::BufferChain body,
                                   Transport::Callback done) {
  const Token token = next_token_++;
  const common::RequestId id = transport_.call(
      dest, verb, std::move(body),
      [this, token, done = std::move(done)](CallResult result) mutable {
        live_.erase(token);
        done(std::move(result));
      },
      policy_.attempt_options());
  live_.emplace(token, id);
  return token;
}

void DirectChannel::cancel(Token token) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  transport_.cancel(it->second);  // callback never fires after this
  live_.erase(it);
}

// --- RetriableChannel ------------------------------------------------------

RetriableChannel::RetriableChannel(Channel& inner, CallPolicy policy)
    : inner_(inner),
      policy_(policy),
      sim_(sim_of(inner.transport())),
      rng_(sim_.rng()),
      retries_(sim_.stats().counter_handle("rmi.retries")),
      deadline_exceeded_(
          sim_.stats().counter_handle("rmi.deadline_exceeded")) {}

Channel::Token RetriableChannel::call(common::NodeId dest,
                                      common::VerbId verb,
                                      serial::BufferChain body,
                                      Transport::Callback done) {
  const Token token = next_token_++;
  Call& call = live_[token];
  call.dest = dest;
  call.verb = verb;
  call.body = std::move(body);
  call.done = std::move(done);
  call.start = sim_.now();
  if (policy_.deadline_us > 0) {
    call.deadline_timer = sim_.schedule_after(
        policy_.deadline_us, [this, token] { on_deadline(token); },
        sim::Wake::No);
    call.deadline_armed = true;
  }
  attempt(token);
  return token;
}

void RetriableChannel::attempt(Token token) {
  Call& call = live_.at(token);
  call.backing_off = false;
  call.inner = inner_.call(call.dest, call.verb, call.body,
                           [this, token](CallResult result) {
                             on_result(token, std::move(result));
                           });
}

void RetriableChannel::on_result(Token token, CallResult result) {
  auto it = live_.find(token);
  if (it == live_.end()) return;  // cancelled/deadline'd concurrently
  Call& call = it->second;
  call.inner = kNoToken;  // the inner call just completed itself
  if (result.ok || call.retries_used >= policy_.max_retries) {
    complete(token, std::move(result));
    return;
  }
  ++call.retries_used;
  ++*retries_;
  call.backoff_timer = sim_.schedule_after(
      policy_.backoff_us(call.retries_used, rng_),
      [this, token] { attempt(token); }, sim::Wake::No);
  call.backing_off = true;
}

void RetriableChannel::on_deadline(Token token) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  Call& call = it->second;
  call.deadline_armed = false;  // this timer just fired
  if (call.inner != kNoToken) inner_.cancel(call.inner);
  if (call.backing_off) sim_.cancel(call.backoff_timer);
  ++*deadline_exceeded_;
  // Completion from a channel-internal timer is a user-code boundary: wake
  // so an enclosing run_until re-checks its predicate (transport-delivered
  // completions are already inside a woken event).
  sim_.wake();
  complete(token, CallResult::failure(
                      "rmi call '" + common::verb_name(call.verb) +
                      "' deadline exceeded after " +
                      std::to_string(policy_.deadline_us) + "us"));
}

void RetriableChannel::complete(Token token, CallResult result) {
  auto node = live_.extract(token);
  Call& call = node.mapped();
  if (call.deadline_armed) sim_.cancel(call.deadline_timer);
  call.done(std::move(result));
}

void RetriableChannel::cancel(Token token) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  Call& call = it->second;
  if (call.inner != kNoToken) inner_.cancel(call.inner);
  if (call.backing_off) sim_.cancel(call.backoff_timer);
  if (call.deadline_armed) sim_.cancel(call.deadline_timer);
  live_.erase(it);
}

// --- HedgedChannel ---------------------------------------------------------

HedgedChannel::HedgedChannel(Channel& inner, CallPolicy policy)
    : inner_(inner),
      policy_(policy),
      sim_(sim_of(inner.transport())),
      hedged_calls_(sim_.stats().counter_handle("rmi.hedged_calls")),
      hedge_wins_(sim_.stats().counter_handle("rmi.hedge_wins")) {}

Channel::Token HedgedChannel::call(common::NodeId dest, common::VerbId verb,
                                   serial::BufferChain body,
                                   Transport::Callback done) {
  const Token token = next_token_++;
  Call& call = live_[token];
  call.dest = dest;
  call.verb = verb;
  call.body = body;  // keep a refcounted copy for the hedge attempt
  call.done = std::move(done);
  call.primary = inner_.call(dest, verb, std::move(body),
                             [this, token](CallResult result) {
                               on_branch(token, false, std::move(result));
                             });
  if (policy_.hedge_after_us > 0) {
    call.hedge_timer = sim_.schedule_after(
        policy_.hedge_after_us, [this, token] { launch_hedge(token); },
        sim::Wake::No);
    call.timer_armed = true;
  }
  return token;
}

void HedgedChannel::launch_hedge(Token token) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  Call& call = it->second;
  call.timer_armed = false;  // this timer just fired
  call.hedge_launched = true;
  call.outstanding = 2;
  ++*hedged_calls_;
  call.hedge = inner_.call(call.dest, call.verb, call.body,
                           [this, token](CallResult result) {
                             on_branch(token, true, std::move(result));
                           });
}

void HedgedChannel::on_branch(Token token, bool is_hedge, CallResult result) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  Call& call = it->second;
  (is_hedge ? call.hedge : call.primary) = kNoToken;
  if (result.ok) {
    // Winner: silence everything else — the losing branch's callback (and
    // its retransmission timer, all the way down to the transport) never
    // fires again.
    if (call.timer_armed) sim_.cancel(call.hedge_timer);
    const Token loser = is_hedge ? call.primary : call.hedge;
    if (loser != kNoToken) inner_.cancel(loser);
    if (is_hedge) ++*hedge_wins_;
    auto node = live_.extract(it);
    node.mapped().done(std::move(result));
    return;
  }
  --call.outstanding;
  if (call.outstanding > 0) return;  // the other branch may still win
  // Sole (or last) branch failed.  A hedge not yet launched would only
  // repeat the same failure; retries are the RetriableChannel's job.
  if (call.timer_armed) sim_.cancel(call.hedge_timer);
  auto node = live_.extract(it);
  node.mapped().done(std::move(result));
}

void HedgedChannel::cancel(Token token) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  Call& call = it->second;
  if (call.timer_armed) sim_.cancel(call.hedge_timer);
  if (call.primary != kNoToken) inner_.cancel(call.primary);
  if (call.hedge != kNoToken) inner_.cancel(call.hedge);
  live_.erase(it);
}

// --- FailoverChannel -------------------------------------------------------

FailoverChannel::FailoverChannel(Transport& transport,
                                 std::vector<common::NodeId> targets,
                                 CallPolicy policy)
    : transport_(transport),
      targets_(std::move(targets)),
      policy_(policy),
      sim_(sim_of(transport)),
      rng_(sim_.rng()),
      preferred_(targets_.empty() ? common::kNoNode : targets_.front()),
      failovers_(sim_.stats().counter_handle("rmi.directory_failovers")) {
  if (targets_.empty()) {
    throw common::MageError("FailoverChannel needs at least one target");
  }
}

std::size_t FailoverChannel::index_of(common::NodeId node) const {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i] == node) return i;
  }
  return 0;
}

void FailoverChannel::set_preferred(common::NodeId node) {
  for (auto target : targets_) {
    if (target == node) {
      preferred_ = node;
      return;
    }
  }
}

Channel::Token FailoverChannel::call(common::NodeId /*dest*/,
                                     common::VerbId verb,
                                     serial::BufferChain body,
                                     Transport::Callback done) {
  return call_with_verdict(
      verb, std::move(body),
      [](common::NodeId, const CallResult&, common::NodeId&) { return true; },
      std::move(done));
}

Channel::Token FailoverChannel::call_with_verdict(common::VerbId verb,
                                                  serial::BufferChain body,
                                                  Verdict verdict,
                                                  Transport::Callback done) {
  const Token token = next_token_++;
  Sweep& sweep = live_[token];
  sweep.verb = verb;
  sweep.body = std::move(body);
  sweep.verdict = std::move(verdict);
  sweep.done = std::move(done);
  sweep.position = index_of(preferred_);
  sweep.start = sim_.now();
  attempt(token);
  return token;
}

void FailoverChannel::attempt(Token token) {
  Sweep& sweep = live_.at(token);
  sweep.backing_off = false;
  const common::NodeId target = targets_[sweep.position];
  ++sweep.tried_this_round;
  sweep.inflight = transport_.call(
      target, sweep.verb, sweep.body,
      [this, token, target](CallResult result) {
        auto it = live_.find(token);
        if (it == live_.end()) return;
        Sweep& sweep = it->second;
        sweep.inflight_armed = false;
        common::NodeId redirect = common::kNoNode;
        if (result.ok && sweep.verdict(target, result, redirect)) {
          set_preferred(target);
          if (sweep.switched) {
            sim_.stats().add("rmi.directory_failover_time_us",
                             sim_.now() - sweep.start);
          }
          complete(token, std::move(result));
          return;
        }
        advance(token, redirect);
      },
      policy_.attempt_options());
  sweep.inflight_armed = true;
}

void FailoverChannel::advance(Token token, common::NodeId redirect) {
  Sweep& sweep = live_.at(token);
  ++*failovers_;
  sweep.switched = true;
  if (!common::is_no_node(redirect) && redirect != targets_[sweep.position]) {
    // A member told us who the leader is; jump straight there.  The
    // redirect still consumes a probe from the round budget, so a lying
    // quorum cannot loop the sweep forever.
    sweep.position = index_of(redirect);
  } else {
    sweep.position = (sweep.position + 1) % targets_.size();
  }
  if (sweep.tried_this_round < static_cast<int>(targets_.size())) {
    attempt(token);
    return;
  }
  sweep.tried_this_round = 0;
  ++sweep.round;
  const int rounds = policy_.max_retries + 1;
  if (sweep.round >= rounds) {
    complete(token,
             CallResult::failure("no directory member accepted the call "
                                 "after " +
                                 std::to_string(rounds) + " rounds"));
    return;
  }
  sweep.backoff_timer = sim_.schedule_after(
      policy_.backoff_us(sweep.round, rng_), [this, token] { attempt(token); },
      sim::Wake::No);
  sweep.backing_off = true;
}

void FailoverChannel::complete(Token token, CallResult result) {
  auto node = live_.extract(token);
  node.mapped().done(std::move(result));
}

void FailoverChannel::cancel(Token token) {
  auto it = live_.find(token);
  if (it == live_.end()) return;
  Sweep& sweep = it->second;
  if (sweep.inflight_armed) transport_.cancel(sweep.inflight);
  if (sweep.backing_off) sim_.cancel(sweep.backoff_timer);
  live_.erase(it);
}

}  // namespace mage::rmi
