#include "rmi/transport.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "serial/writer.hpp"

namespace mage::rmi {

Transport* Replier::fire() {
  if (transport_ == nullptr) {
    throw common::MageError(
        "reply through a spent, moved-from, or default-constructed Replier "
        "(verb '" + common::verb_name(verb_) + "'): services reply exactly "
        "once");
  }
  return std::exchange(transport_, nullptr);
}

void Replier::ok(serial::BufferChain body) {
  fire()->send_reply(to_, id_, verb_, true, {}, std::move(body));
}

void Replier::error(const std::string& message) {
  fire()->send_reply(to_, id_, verb_, false, message, {});
}

Transport::Transport(net::Network& network, common::NodeId self,
                     std::size_t reply_cache_capacity)
    : network_(network),
      sim_(network.node_sim(self)),
      self_(self),
      calls_(sim_.stats().counter_handle("rmi.calls")),
      failures_(sim_.stats().counter_handle("rmi.failures")),
      retransmissions_(sim_.stats().counter_handle("rmi.retransmissions")),
      duplicates_suppressed_(
          sim_.stats().counter_handle("rmi.duplicates_suppressed")),
      stale_replies_(sim_.stats().counter_handle("rmi.stale_replies")),
      reply_cache_evictions_(
          sim_.stats().counter_handle("rmi.reply_cache_evictions")),
      evicted_reexecutions_(
          sim_.stats().counter_handle("rmi.evicted_reexecutions")),
      cancelled_calls_(sim_.stats().counter_handle("rmi.cancelled_calls")),
      oneway_calls_(sim_.stats().counter_handle("rmi.oneway_calls")),
      oneway_executions_(sim_.stats().counter_handle("rmi.oneway_executions")),
      oneway_no_service_(sim_.stats().counter_handle("rmi.oneway_no_service")),
      batches_sent_(sim_.stats().counter_handle("rmi.batches_sent")),
      batched_invokes_(sim_.stats().counter_handle("rmi.batched_invokes")),
      batch_singletons_(sim_.stats().counter_handle("rmi.batch_singletons")),
      reply_cache_grows_(
          sim_.stats().counter_handle("rmi.reply_cache_grows")),
      reply_cache_shrinks_(
          sim_.stats().counter_handle("rmi.reply_cache_shrinks")),
      reply_cache_capacity_stat_(
          sim_.stats().counter_handle("rmi.reply_cache_capacity")),
      reply_cache_capacity_high_water_(
          sim_.stats().counter_handle("rmi.reply_cache_capacity_highwater")),
      batch_verb_(common::intern_verb("rmi.batch")),
      reply_cache_capacity_(reply_cache_capacity) {
  if (reply_cache_capacity_ == 0) {
    throw common::MageError(
        "reply cache capacity must be at least 1 (at-most-once needs a "
        "live entry per in-flight request)");
  }
  // Pre-size the slim probe index so steady-state inserts never rehash.
  // The fat entries ring grows on demand (append-only up to capacity, then
  // in-place overwrite), so an idle transport does not pre-commit
  // capacity * sizeof(ReplyCacheEntry) bytes — once the ring has wrapped,
  // the receive path is allocation-free.
  reply_cache_index_.reserve(reply_cache_capacity_);
  *reply_cache_capacity_stat_ = static_cast<std::int64_t>(reply_cache_capacity_);
  *reply_cache_capacity_high_water_ =
      static_cast<std::int64_t>(reply_cache_capacity_);
  network_.set_handler(self_,
                       [this](net::Message msg) { on_message(std::move(msg)); });
}

void Transport::set_batching(BatchOptions options) {
  if (options.enabled &&
      (options.flush_quantum_us < 1 || options.max_batch_invokes < 1)) {
    throw common::MageError(
        "batching needs a flush quantum and invoke budget of at least 1");
  }
  // Never strand queued envelopes under the old policy.
  flush_all();
  batch_options_ = options;
}

void Transport::set_adaptive_reply_cache(AdaptiveCacheOptions options) {
  if (options.enabled &&
      (options.floor < 1 || options.ceiling < options.floor ||
       options.grow_threshold < 1 || options.idle_shrink_us < 1)) {
    throw common::MageError(
        "adaptive reply cache needs 1 <= floor <= ceiling, a positive grow "
        "threshold, and a positive idle-shrink period");
  }
  adaptive_cache_ = options;
  if (options.enabled) {
    const std::size_t clamped = std::clamp(reply_cache_capacity_,
                                           options.floor, options.ceiling);
    if (clamped != reply_cache_capacity_) resize_reply_cache(clamped);
    last_eviction_us_ = sim_.now();
  }
}

void Transport::register_service(common::VerbId verb, Service service) {
  if (!verb.valid()) {
    throw common::MageError("cannot register a service on an invalid verb");
  }
  if (verb.value() >= services_.size()) {
    services_.resize(verb.value() + 1);
  }
  services_[verb.value()] = std::move(service);
}

std::int64_t* Transport::verb_calls_counter(common::VerbId verb) {
  if (verb.value() >= per_verb_calls_.size()) {
    per_verb_calls_.resize(verb.value() + 1, nullptr);
  }
  auto*& handle = per_verb_calls_[verb.value()];
  if (handle == nullptr) {
    handle = sim_.stats().counter_handle(common::verb_calls_stat(verb));
  }
  return handle;
}

common::RequestId Transport::call(common::NodeId dest, common::VerbId verb,
                                  serial::BufferChain body, Callback callback,
                                  CallOptions options) {
  if (!verb.valid() || verb.value() >= common::interned_verb_count()) {
    throw common::MageError("call on an uninterned verb id");
  }
  const common::RequestId id{next_request_++};
  const std::size_t body_size = body.size();
  auto [pc, inserted] = pending_.try_emplace(id.value());
  assert(inserted);
  (void)inserted;
  pc->dest = dest;
  pc->verb = verb;
  pc->body = std::move(body);
  pc->callback = std::move(callback);
  pc->options = options;

  ++*calls_;
  ++*verb_calls_counter(verb);

  // Client-side overhead: stub entry + argument marshalling, charged as
  // simulated CPU time before the request reaches the wire.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_client_overhead_us + model.marshal_time(body_size);
  // Always an event (never inline, even at zero cost): call() runs in
  // driver context, and the driver must keep its window to mutate faults
  // before the request reaches the wire — the seed's contract.
  sim_.schedule_after(prep, [this, id] { transmit(id); }, sim::Wake::No);
  return id;
}

void Transport::cancel(common::RequestId id) {
  PendingCall* pc = pending_.find(id.value());
  if (pc == nullptr || pc->done) return;
  // The initial prep event (and any armed retry timer) may still reference
  // this id; transmit() tolerates a missing entry, and the timer is
  // cancelled outright so the queue does not keep a dead closure alive.
  sim_.cancel(pc->retry_timer);
  pending_.erase(id.value());
  ++*cancelled_calls_;
}

void Transport::call_oneway(common::NodeId dest, common::VerbId verb,
                            serial::BufferChain body) {
  if (!verb.valid() || verb.value() >= common::interned_verb_count()) {
    throw common::MageError("call_oneway on an uninterned verb id");
  }
  ++*oneway_calls_;
  ++*verb_calls_counter(verb);

  Envelope env;
  env.kind = EnvelopeKind::OneWay;
  // Ids keep the global sequence so traces stay unambiguous; one-way ids
  // never enter the pending table or the at-most-once key space.
  env.request_id = common::RequestId{next_request_++};
  env.verb = verb;
  const std::size_t body_size = body.size();
  env.body = std::move(body);

  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_client_overhead_us + model.marshal_time(body_size);
  // An event for the same reason as call(): keep the driver's window to
  // mutate faults before the send reaches the wire.
  sim_.schedule_after(
      prep,
      [this, dest, env = std::move(env)]() mutable {
        route(dest, std::move(env), net::MsgKind::OneWay);
      },
      sim::Wake::No);
}

void Transport::transmit(common::RequestId id) {
  PendingCall* pc = pending_.find(id.value());
  if (pc == nullptr || pc->done) return;

  if (pc->attempts >= pc->options.max_attempts) {
    pc->done = true;
    auto callback = std::move(pc->callback);
    const std::string message =
        "rmi call '" + common::verb_name(pc->verb) + "' timed out after " +
        std::to_string(pc->options.max_attempts) + " attempts";
    pending_.erase(id.value());
    ++*failures_;
    sim_.wake();  // completion: an enclosing run_until should re-check
    callback(CallResult::failure(message));
    return;
  }

  ++pc->attempts;
  if (pc->attempts > 1) ++*retransmissions_;

  Envelope env;
  env.kind = EnvelopeKind::Request;
  env.request_id = id;
  env.verb = pc->verb;
  env.body = pc->body;  // fragment refcounts, not a copy
  route(pc->dest, std::move(env), net::MsgKind::Request);
  arm_retry_timer(id);
}

void Transport::send_now(common::NodeId dest, Envelope env,
                         net::MsgKind kind) {
  network_.send(net::Message{self_, dest, env.verb, kind, env.encode_header(),
                             std::move(env.body)});
}

void Transport::route(common::NodeId dest, Envelope env, net::MsgKind kind) {
  if (!batch_options_.enabled || dest.value() == self_.value() ||
      env.body.size() > batch_options_.max_inline_body) {
    // Loopback and oversized bodies keep the scatter-gather direct path.
    send_now(dest, std::move(env), kind);
    return;
  }
  if (batch_queues_.size() <= dest.value()) {
    batch_queues_.resize(dest.value() + 1);
  }
  LinkQueue& queue = batch_queues_[dest.value()];
  const std::size_t encoded = env.encoded_size();
  queue.bytes += encoded;
  queue.items.push_back(BatchItem{std::move(env), kind, encoded});
  if (queue.items.size() >= batch_options_.max_batch_invokes ||
      queue.bytes >= batch_options_.max_batch_bytes) {
    flush_link(dest.value());
    return;
  }
  schedule_flush();
}

void Transport::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Absolute quantum boundaries, not now()+quantum: every node's flushes
  // land on the same global grid, so a request batch and the batch of its
  // replies pipeline one quantum apart instead of drifting.
  const common::SimDuration quantum = batch_options_.flush_quantum_us;
  const common::SimTime at = (sim_.now() / quantum + 1) * quantum;
  sim_.schedule_at(at, [this] { flush_all(); }, sim::Wake::No);
}

void Transport::flush_all() {
  flush_scheduled_ = false;
  for (std::size_t dest = 0; dest < batch_queues_.size(); ++dest) {
    flush_link(dest);
  }
}

void Transport::flush_link(std::size_t dest_index) {
  LinkQueue& queue = batch_queues_[dest_index];
  if (queue.items.empty()) return;
  const common::NodeId dest{static_cast<std::uint32_t>(dest_index)};
  if (queue.items.size() == 1) {
    // Single-invoke degenerate case: collapse to the plain envelope so the
    // single-fragment fast path (and its header counter) still applies.
    BatchItem item = std::move(queue.items.front());
    queue.items.clear();
    queue.bytes = 0;
    ++*batch_singletons_;
    send_now(dest, std::move(item.env), item.kind);
    return;
  }
  // Gather every queued envelope into ONE flat frame: a single pre-sized
  // Writer allocation, then one net::Message (one mailbox push, one
  // wire_seq) for the whole batch.
  std::size_t total = 1 + 4 + 4 * queue.items.size() + queue.bytes;
  serial::Writer w(total);
  w.write_u8(kBatchTag);
  w.write_u32(static_cast<std::uint32_t>(queue.items.size()));
  for (const BatchItem& item : queue.items) {
    w.write_u32(static_cast<std::uint32_t>(item.encoded_size));
    item.env.encode_into(w);
  }
  ++*batches_sent_;
  *batched_invokes_ += static_cast<std::int64_t>(queue.items.size());
  queue.items.clear();
  queue.bytes = 0;
  network_.send(net::Message{self_, dest, batch_verb_, net::MsgKind::Batch,
                             w.take(), {}});
}

void Transport::arm_retry_timer(common::RequestId id) {
  PendingCall* pc = pending_.find(id.value());
  assert(pc != nullptr);
  pc->retry_timer = sim_.schedule_after(
      pc->options.retry_timeout_us, [this, id] { transmit(id); },
      sim::Wake::No);
}

serial::BufferChain Transport::call_sync(common::NodeId dest,
                                         common::VerbId verb,
                                         serial::BufferChain body,
                                         CallOptions options) {
  if (network_.is_sharded()) {
    // Blocking here would spin one shard's queue while the reply depends
    // on other shards making progress — a deadlock by construction.
    throw common::MageError(
        "call_sync is driver-mode only: on a sharded network use the "
        "asynchronous call() and complete from the callback");
  }
  std::optional<CallResult> result;
  call(
      dest, verb, std::move(body),
      [&result](CallResult r) { result = std::move(r); }, options);
  const bool completed =
      sim_.run_until([&result] { return result.has_value(); });
  if (!completed) {
    throw common::TransportError("simulation drained while waiting for '" +
                                 common::verb_name(verb) + "' reply");
  }
  if (!result->ok) {
    // Distinguish error families by marker prefix: the wire carries only a
    // string, so the remote side tags policy rejections.
    if (result->error.rfind("rmi call", 0) == 0) {
      throw common::TransportError(result->error);
    }
    if (result->error.rfind("access denied", 0) == 0) {
      throw common::AccessDeniedError(result->error);
    }
    if (result->error.rfind("capacity exceeded", 0) == 0) {
      throw common::CapacityError(result->error);
    }
    throw common::RemoteInvocationError(result->error);
  }
  return std::move(result->body);
}

void Transport::on_message(net::Message msg) {
  if (Envelope::is_batch(msg.header)) {
    // One mailbox push carried the whole flush; unpack (zero-copy slices)
    // and dispatch the sub-envelopes in their sent order.
    std::vector<Envelope> envelopes = Envelope::decode_batch(msg.header);
    for (Envelope& env : envelopes) {
      dispatch_envelope(msg.from, env);
    }
    return;
  }
  Envelope env = Envelope::decode(msg.header, std::move(msg.body));
  dispatch_envelope(msg.from, env);
}

void Transport::dispatch_envelope(common::NodeId from, Envelope& env) {
  switch (env.kind) {
    case EnvelopeKind::Request:
      on_request(from, env);
      break;
    case EnvelopeKind::OneWay:
      on_oneway(from, env);
      break;
    case EnvelopeKind::Reply:
      on_reply(env);
      break;
  }
}

void Transport::on_oneway(common::NodeId from, Envelope& env) {
  // One-way requests never touch the at-most-once state: nothing ever
  // retransmits them, so a duplicate cannot exist; and with no Replier to
  // arm there is no reply to cache.
  const std::uint32_t verb_index = env.verb.value();
  if (verb_index >= services_.size() || !services_[verb_index]) {
    // No reply channel to carry the error — count and drop.
    ++*oneway_no_service_;
    return;
  }
  ++*oneway_executions_;
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_server_dispatch_us + model.marshal_time(env.body.size());
  after_cpu(prep, [this, verb_index, from,
                   body = std::move(env.body)]() mutable {
    sim_.wake();  // user code runs here (see on_request)
    services_[verb_index](from, body, Replier{});
  });
}

void Transport::mark_evicted(std::uint64_t key, common::RequestId id) {
  CallerMarks* marks = caller_marks_.try_emplace(key >> 32).first;
  marks->evicted_max = std::max(marks->evicted_max, id.value());
}

void Transport::resize_reply_cache(std::size_t new_capacity) {
  assert(new_capacity >= 1);
  if (new_capacity == reply_cache_capacity_) return;
  const std::size_t live = reply_cache_entries_.size();
  const std::size_t keep = std::min(live, new_capacity);
  const std::size_t drop = live - keep;
  // Walk the ring oldest-first so the rebuilt vector is exact FIFO order;
  // a shrink evicts the oldest entries with the same accounting as a ring
  // wrap (their at-most-once protection is genuinely gone).
  const std::size_t start =
      live == reply_cache_capacity_ ? reply_cache_head_ : 0;
  std::vector<ReplyCacheEntry> rebuilt;
  rebuilt.reserve(keep);
  for (std::size_t i = 0; i < live; ++i) {
    ReplyCacheEntry& entry =
        reply_cache_entries_[(start + i) % reply_cache_capacity_];
    if (i < drop) {
      ++*reply_cache_evictions_;
      mark_evicted(entry.key, entry.request_id);
      continue;
    }
    rebuilt.push_back(std::move(entry));
  }
  reply_cache_entries_ = std::move(rebuilt);
  reply_cache_head_ = 0;
  if (new_capacity > reply_cache_capacity_) {
    ++*reply_cache_grows_;
  } else {
    ++*reply_cache_shrinks_;
  }
  reply_cache_capacity_ = new_capacity;
  // Rebuild the slim index over the survivors (pre-sized, no rehash).
  reply_cache_index_ = common::FlatMap64<std::uint32_t>();
  reply_cache_index_.reserve(new_capacity);
  for (std::size_t i = 0; i < reply_cache_entries_.size(); ++i) {
    *reply_cache_index_.try_emplace(reply_cache_entries_[i].key).first =
        static_cast<std::uint32_t>(i);
  }
  evictions_since_resize_ = 0;
  *reply_cache_capacity_stat_ = static_cast<std::int64_t>(new_capacity);
  *reply_cache_capacity_high_water_ =
      std::max(*reply_cache_capacity_high_water_,
               static_cast<std::int64_t>(new_capacity));
}

Transport::ReplyCacheEntry* Transport::reply_cache_insert(std::uint64_t key) {
  if (adaptive_cache_.enabled) {
    if (reply_cache_entries_.size() == reply_cache_capacity_ &&
        reply_cache_capacity_ < adaptive_cache_.ceiling &&
        evictions_since_resize_ >= adaptive_cache_.grow_threshold) {
      // Sustained eviction pressure: double before this insert evicts yet
      // another live entry.
      resize_reply_cache(
          std::min(adaptive_cache_.ceiling, reply_cache_capacity_ * 2));
    } else if (reply_cache_capacity_ > adaptive_cache_.floor &&
               sim_.now() - last_eviction_us_ >=
                   adaptive_cache_.idle_shrink_us) {
      // Idle: no eviction for a full shrink period — halve toward the
      // floor, one step per period.
      resize_reply_cache(
          std::max(adaptive_cache_.floor, reply_cache_capacity_ / 2));
      last_eviction_us_ = sim_.now();
    }
  }
  std::uint32_t slot;
  if (reply_cache_entries_.size() < reply_cache_capacity_) {
    slot = static_cast<std::uint32_t>(reply_cache_entries_.size());
    reply_cache_entries_.emplace_back();
  } else {
    // Ring full: this slot's previous occupant is the entry evicted.
    slot = static_cast<std::uint32_t>(reply_cache_head_);
    reply_cache_head_ = (reply_cache_head_ + 1) % reply_cache_capacity_;
    reply_cache_index_.erase(reply_cache_entries_[slot].key);
    ++*reply_cache_evictions_;
    ++evictions_since_resize_;
    last_eviction_us_ = sim_.now();
    mark_evicted(reply_cache_entries_[slot].key,
                 reply_cache_entries_[slot].request_id);
  }
  *reply_cache_index_.try_emplace(key).first = slot;
  ReplyCacheEntry* entry = &reply_cache_entries_[slot];
  entry->key = key;
  return entry;
}

void Transport::on_request(common::NodeId from, Envelope& env) {
  const std::uint64_t key = pack_key(from, env.request_id);
  const std::uint32_t* cached_slot = reply_cache_index_.find(key);
  ReplyCacheEntry* cached =
      cached_slot != nullptr ? &reply_cache_entries_[*cached_slot] : nullptr;
  if (cached != nullptr && cached->request_id == env.request_id) {
    // Duplicate (retransmission).  If we already answered, answer again
    // from the cache; if the service is still working, stay silent.
    ++*duplicates_suppressed_;
    if (cached->completed) {
      Envelope reply = cached->reply;  // fragment refcounts, not a copy
      route(from, std::move(reply), net::MsgKind::ReplyDup);
    }
    return;
  }

  const std::uint32_t verb_index = env.verb.value();
  if (verb_index >= services_.size() || !services_[verb_index]) {
    send_reply(from, env.request_id, env.verb, false,
               "no service registered for verb '" +
                   common::verb_name(env.verb) + "' on node " +
                   std::to_string(self_.value()),
               {});
    return;
  }

  // Not in the cache — a genuinely new request, a first transmission
  // arriving late (its predecessors already raised the high-water mark),
  // or a retransmission whose at-most-once entry was evicted (the ring
  // wrapped while it was in flight).  Only the last re-executes an
  // already-run service; it is the one at or below the caller's evicted
  // high-water mark.  Surface it — nothing better than re-executing is
  // possible once the entry is gone (see CallerMarks).
  {
    CallerMarks* marks = caller_marks_.try_emplace(
        static_cast<std::uint64_t>(from.value())).first;
    if (env.request_id.value() > marks->high_water) {
      marks->high_water = env.request_id.value();
    } else if (env.request_id.value() <= marks->evicted_max) {
      ++*evicted_reexecutions_;
      if (adaptive_cache_.enabled) {
        // An at-most-once violation is the strongest pressure signal there
        // is: trip the grow threshold immediately.
        evictions_since_resize_ =
            std::max(evictions_since_resize_, adaptive_cache_.grow_threshold);
      }
    }
  }

  // Record the request in the at-most-once state.  A fresh key claims a
  // ring slot (evicting its previous occupant once the ring is full); a
  // low-32-bit aliased leftover (cached != null but request ids differ) is
  // overwritten in place, keeping its ring position — re-inserting it
  // would give the key two ring slots and let the older one evict the
  // newer, still-live entry, breaking at-most-once.
  if (cached != nullptr) {
    // Alias overwrite is an eviction in disguise: the previous occupant's
    // at-most-once entry is gone the moment we reuse its slot.
    mark_evicted(cached->key, cached->request_id);
  }
  ReplyCacheEntry* entry =
      cached != nullptr ? cached : reply_cache_insert(key);
  entry->request_id = env.request_id;
  entry->completed = false;
  entry->reply = {};

  // Server-side overhead: skeleton dispatch + argument unmarshalling.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_server_dispatch_us + model.marshal_time(env.body.size());
  Replier replier(this, from, env.request_id, env.verb);
  after_cpu(prep, [this, verb_index, from, body = std::move(env.body),
                   replier = std::move(replier)]() mutable {
    // User code runs here: wake so enclosing run_until predicates see
    // whatever the service mutates (parked repliers, flags, ...).
    sim_.wake();
    // Re-resolve the service at fire time: the table may have grown
    // between dispatch and execution (deque growth leaves the entry in
    // place even if the handler itself registers new verbs).
    services_[verb_index](from, body, std::move(replier));
  });
}

void Transport::send_reply(common::NodeId to, common::RequestId id,
                           common::VerbId verb, bool ok,
                           const std::string& error,
                           serial::BufferChain body) {
  Envelope reply;
  reply.kind = EnvelopeKind::Reply;
  reply.request_id = id;
  reply.verb = verb;
  reply.ok = ok;
  reply.error = error;
  reply.body = std::move(body);

  const std::uint64_t key = pack_key(to, id);
  if (const std::uint32_t* slot = reply_cache_index_.find(key);
      slot != nullptr && reply_cache_entries_[*slot].request_id == id) {
    ReplyCacheEntry& entry = reply_cache_entries_[*slot];
    entry.completed = true;
    entry.reply = reply;  // fragment refcounts, not a payload copy
  }

  // Result marshalling charged on the serving side before the wire.
  // Always an event, even at zero cost: a reply may be sent from user code
  // (service dispatch or a parked Replier), after which the driver regains
  // control at the wake — and drivers legitimately mutate faults in that
  // window expecting the not-yet-sent reply to be affected (rmi_test
  // partitions a link between execution and reply to force a
  // retransmission storm).  Inlining here would leak the reply onto the
  // wire before the driver runs.
  const auto& model = network_.cost_model();
  sim_.schedule_after(
      model.marshal_time(reply.body.size()),
      [this, to, reply = std::move(reply)]() mutable {
        route(to, std::move(reply), net::MsgKind::Reply);
      },
      sim::Wake::No);
}

void Transport::on_reply(Envelope& env) {
  PendingCall* pc = pending_.find(env.request_id.value());
  if (pc == nullptr || pc->done) {
    ++*stale_replies_;
    return;
  }
  pc->done = true;
  sim_.cancel(pc->retry_timer);
  auto callback = std::move(pc->callback);
  CallResult result = env.ok ? CallResult::success(std::move(env.body))
                             : CallResult::failure(std::move(env.error));
  pending_.erase(env.request_id.value());
  sim_.wake();  // completion wakeup for the caller's run_until
  callback(std::move(result));
}

}  // namespace mage::rmi
