#include "rmi/transport.hpp"

#include <cassert>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::rmi {

Transport* Replier::fire() {
  if (transport_ == nullptr) {
    throw common::MageError(
        "reply through a spent, moved-from, or default-constructed Replier "
        "(verb '" + common::verb_name(verb_) + "'): services reply exactly "
        "once");
  }
  return std::exchange(transport_, nullptr);
}

void Replier::ok(serial::BufferChain body) {
  fire()->send_reply(to_, id_, verb_, true, {}, std::move(body));
}

void Replier::error(const std::string& message) {
  fire()->send_reply(to_, id_, verb_, false, message, {});
}

Transport::Transport(net::Network& network, common::NodeId self,
                     std::size_t reply_cache_capacity)
    : network_(network),
      sim_(network.node_sim(self)),
      self_(self),
      calls_(sim_.stats().counter_handle("rmi.calls")),
      failures_(sim_.stats().counter_handle("rmi.failures")),
      retransmissions_(sim_.stats().counter_handle("rmi.retransmissions")),
      duplicates_suppressed_(
          sim_.stats().counter_handle("rmi.duplicates_suppressed")),
      stale_replies_(sim_.stats().counter_handle("rmi.stale_replies")),
      reply_cache_evictions_(
          sim_.stats().counter_handle("rmi.reply_cache_evictions")),
      evicted_reexecutions_(
          sim_.stats().counter_handle("rmi.evicted_reexecutions")),
      reply_cache_capacity_(reply_cache_capacity) {
  if (reply_cache_capacity_ == 0) {
    throw common::MageError(
        "reply cache capacity must be at least 1 (at-most-once needs a "
        "live entry per in-flight request)");
  }
  // Pre-size the slim probe index so steady-state inserts never rehash.
  // The fat entries ring grows on demand (append-only up to capacity, then
  // in-place overwrite), so an idle transport does not pre-commit
  // capacity * sizeof(ReplyCacheEntry) bytes — once the ring has wrapped,
  // the receive path is allocation-free.
  reply_cache_index_.reserve(reply_cache_capacity_);
  network_.set_handler(self_,
                       [this](net::Message msg) { on_message(std::move(msg)); });
}

void Transport::register_service(common::VerbId verb, Service service) {
  if (!verb.valid()) {
    throw common::MageError("cannot register a service on an invalid verb");
  }
  if (verb.value() >= services_.size()) {
    services_.resize(verb.value() + 1);
  }
  services_[verb.value()] = std::move(service);
}

std::int64_t* Transport::verb_calls_counter(common::VerbId verb) {
  if (verb.value() >= per_verb_calls_.size()) {
    per_verb_calls_.resize(verb.value() + 1, nullptr);
  }
  auto*& handle = per_verb_calls_[verb.value()];
  if (handle == nullptr) {
    handle = sim_.stats().counter_handle(common::verb_calls_stat(verb));
  }
  return handle;
}

void Transport::call(common::NodeId dest, common::VerbId verb,
                     serial::BufferChain body, Callback callback,
                     CallOptions options) {
  if (!verb.valid() || verb.value() >= common::interned_verb_count()) {
    throw common::MageError("call on an uninterned verb id");
  }
  const common::RequestId id{next_request_++};
  const std::size_t body_size = body.size();
  auto [pc, inserted] = pending_.try_emplace(id.value());
  assert(inserted);
  (void)inserted;
  pc->dest = dest;
  pc->verb = verb;
  pc->body = std::move(body);
  pc->callback = std::move(callback);
  pc->options = options;

  ++*calls_;
  ++*verb_calls_counter(verb);

  // Client-side overhead: stub entry + argument marshalling, charged as
  // simulated CPU time before the request reaches the wire.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_client_overhead_us + model.marshal_time(body_size);
  sim_.schedule_after(prep, [this, id] { transmit(id); }, sim::Wake::No);
}

void Transport::transmit(common::RequestId id) {
  PendingCall* pc = pending_.find(id.value());
  if (pc == nullptr || pc->done) return;

  if (pc->attempts >= pc->options.max_attempts) {
    pc->done = true;
    auto callback = std::move(pc->callback);
    const std::string message =
        "rmi call '" + common::verb_name(pc->verb) + "' timed out after " +
        std::to_string(pc->options.max_attempts) + " attempts";
    pending_.erase(id.value());
    ++*failures_;
    sim_.wake();  // completion: an enclosing run_until should re-check
    callback(CallResult::failure(message));
    return;
  }

  ++pc->attempts;
  if (pc->attempts > 1) ++*retransmissions_;

  Envelope env;
  env.kind = EnvelopeKind::Request;
  env.request_id = id;
  env.verb = pc->verb;
  env.body = pc->body;  // fragment refcounts, not a copy
  network_.send(net::Message{self_, pc->dest, pc->verb, net::MsgKind::Request,
                             env.encode_header(), std::move(env.body)});
  arm_retry_timer(id);
}

void Transport::arm_retry_timer(common::RequestId id) {
  PendingCall* pc = pending_.find(id.value());
  assert(pc != nullptr);
  pc->retry_timer = sim_.schedule_after(
      pc->options.retry_timeout_us, [this, id] { transmit(id); },
      sim::Wake::No);
}

serial::BufferChain Transport::call_sync(common::NodeId dest,
                                         common::VerbId verb,
                                         serial::BufferChain body,
                                         CallOptions options) {
  if (network_.is_sharded()) {
    // Blocking here would spin one shard's queue while the reply depends
    // on other shards making progress — a deadlock by construction.
    throw common::MageError(
        "call_sync is driver-mode only: on a sharded network use the "
        "asynchronous call() and complete from the callback");
  }
  std::optional<CallResult> result;
  call(
      dest, verb, std::move(body),
      [&result](CallResult r) { result = std::move(r); }, options);
  const bool completed =
      sim_.run_until([&result] { return result.has_value(); });
  if (!completed) {
    throw common::TransportError("simulation drained while waiting for '" +
                                 common::verb_name(verb) + "' reply");
  }
  if (!result->ok) {
    // Distinguish error families by marker prefix: the wire carries only a
    // string, so the remote side tags policy rejections.
    if (result->error.rfind("rmi call", 0) == 0) {
      throw common::TransportError(result->error);
    }
    if (result->error.rfind("access denied", 0) == 0) {
      throw common::AccessDeniedError(result->error);
    }
    if (result->error.rfind("capacity exceeded", 0) == 0) {
      throw common::CapacityError(result->error);
    }
    throw common::RemoteInvocationError(result->error);
  }
  return std::move(result->body);
}

void Transport::on_message(net::Message msg) {
  Envelope env = Envelope::decode(msg.header, std::move(msg.body));
  if (env.kind == EnvelopeKind::Request) {
    on_request(msg.from, env);
  } else {
    on_reply(env);
  }
}

void Transport::mark_evicted(std::uint64_t key, common::RequestId id) {
  CallerMarks* marks = caller_marks_.try_emplace(key >> 32).first;
  marks->evicted_max = std::max(marks->evicted_max, id.value());
}

Transport::ReplyCacheEntry* Transport::reply_cache_insert(std::uint64_t key) {
  std::uint32_t slot;
  if (reply_cache_entries_.size() < reply_cache_capacity_) {
    slot = static_cast<std::uint32_t>(reply_cache_entries_.size());
    reply_cache_entries_.emplace_back();
  } else {
    // Ring full: this slot's previous occupant is the entry evicted.
    slot = static_cast<std::uint32_t>(reply_cache_head_);
    reply_cache_head_ = (reply_cache_head_ + 1) % reply_cache_capacity_;
    reply_cache_index_.erase(reply_cache_entries_[slot].key);
    ++*reply_cache_evictions_;
    mark_evicted(reply_cache_entries_[slot].key,
                 reply_cache_entries_[slot].request_id);
  }
  *reply_cache_index_.try_emplace(key).first = slot;
  ReplyCacheEntry* entry = &reply_cache_entries_[slot];
  entry->key = key;
  return entry;
}

void Transport::on_request(common::NodeId from, Envelope& env) {
  const std::uint64_t key = pack_key(from, env.request_id);
  const std::uint32_t* cached_slot = reply_cache_index_.find(key);
  ReplyCacheEntry* cached =
      cached_slot != nullptr ? &reply_cache_entries_[*cached_slot] : nullptr;
  if (cached != nullptr && cached->request_id == env.request_id) {
    // Duplicate (retransmission).  If we already answered, answer again
    // from the cache; if the service is still working, stay silent.
    ++*duplicates_suppressed_;
    if (cached->completed) {
      const Envelope& reply = cached->reply;
      network_.send(net::Message{self_, from, reply.verb,
                                 net::MsgKind::ReplyDup,
                                 reply.encode_header(), reply.body});
    }
    return;
  }

  const std::uint32_t verb_index = env.verb.value();
  if (verb_index >= services_.size() || !services_[verb_index]) {
    send_reply(from, env.request_id, env.verb, false,
               "no service registered for verb '" +
                   common::verb_name(env.verb) + "' on node " +
                   std::to_string(self_.value()),
               {});
    return;
  }

  // Not in the cache — a genuinely new request, a first transmission
  // arriving late (its predecessors already raised the high-water mark),
  // or a retransmission whose at-most-once entry was evicted (the ring
  // wrapped while it was in flight).  Only the last re-executes an
  // already-run service; it is the one at or below the caller's evicted
  // high-water mark.  Surface it — nothing better than re-executing is
  // possible once the entry is gone (see CallerMarks).
  {
    CallerMarks* marks = caller_marks_.try_emplace(
        static_cast<std::uint64_t>(from.value())).first;
    if (env.request_id.value() > marks->high_water) {
      marks->high_water = env.request_id.value();
    } else if (env.request_id.value() <= marks->evicted_max) {
      ++*evicted_reexecutions_;
    }
  }

  // Record the request in the at-most-once state.  A fresh key claims a
  // ring slot (evicting its previous occupant once the ring is full); a
  // low-32-bit aliased leftover (cached != null but request ids differ) is
  // overwritten in place, keeping its ring position — re-inserting it
  // would give the key two ring slots and let the older one evict the
  // newer, still-live entry, breaking at-most-once.
  if (cached != nullptr) {
    // Alias overwrite is an eviction in disguise: the previous occupant's
    // at-most-once entry is gone the moment we reuse its slot.
    mark_evicted(cached->key, cached->request_id);
  }
  ReplyCacheEntry* entry =
      cached != nullptr ? cached : reply_cache_insert(key);
  entry->request_id = env.request_id;
  entry->completed = false;
  entry->reply = {};

  // Server-side overhead: skeleton dispatch + argument unmarshalling.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_server_dispatch_us + model.marshal_time(env.body.size());
  Replier replier(this, from, env.request_id, env.verb);
  sim_.schedule_after(
      prep,
      [this, verb_index, from, body = std::move(env.body),
       replier = std::move(replier)]() mutable {
        // User code runs here: wake so enclosing run_until predicates see
        // whatever the service mutates (parked repliers, flags, ...).
        sim_.wake();
        // Re-resolve the service at fire time: the table may have grown
        // between dispatch and execution (deque growth leaves the entry in
        // place even if the handler itself registers new verbs).
        services_[verb_index](from, body, std::move(replier));
      },
      sim::Wake::No);
}

void Transport::send_reply(common::NodeId to, common::RequestId id,
                           common::VerbId verb, bool ok,
                           const std::string& error,
                           serial::BufferChain body) {
  Envelope reply;
  reply.kind = EnvelopeKind::Reply;
  reply.request_id = id;
  reply.verb = verb;
  reply.ok = ok;
  reply.error = error;
  reply.body = std::move(body);

  const std::uint64_t key = pack_key(to, id);
  if (const std::uint32_t* slot = reply_cache_index_.find(key);
      slot != nullptr && reply_cache_entries_[*slot].request_id == id) {
    ReplyCacheEntry& entry = reply_cache_entries_[*slot];
    entry.completed = true;
    entry.reply = reply;  // fragment refcounts, not a payload copy
  }

  // Result marshalling charged on the serving side before the wire.
  const auto& model = network_.cost_model();
  sim_.schedule_after(
      model.marshal_time(reply.body.size()),
      [this, to, reply = std::move(reply)]() mutable {
        network_.send(net::Message{self_, to, reply.verb, net::MsgKind::Reply,
                                   reply.encode_header(),
                                   std::move(reply.body)});
      },
      sim::Wake::No);
}

void Transport::on_reply(Envelope& env) {
  PendingCall* pc = pending_.find(env.request_id.value());
  if (pc == nullptr || pc->done) {
    ++*stale_replies_;
    return;
  }
  pc->done = true;
  sim_.cancel(pc->retry_timer);
  auto callback = std::move(pc->callback);
  CallResult result = env.ok ? CallResult::success(std::move(env.body))
                             : CallResult::failure(std::move(env.error));
  pending_.erase(env.request_id.value());
  sim_.wake();  // completion wakeup for the caller's run_until
  callback(std::move(result));
}

}  // namespace mage::rmi
