#include "rmi/transport.hpp"

#include <cassert>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::rmi {

Transport* Replier::fire() {
  if (transport_ == nullptr) {
    throw common::MageError(
        "reply through a spent, moved-from, or default-constructed Replier "
        "(verb '" + common::verb_name(verb_) + "'): services reply exactly "
        "once");
  }
  return std::exchange(transport_, nullptr);
}

void Replier::ok(serial::Buffer body) {
  fire()->send_reply(to_, id_, verb_, true, {}, std::move(body));
}

void Replier::error(const std::string& message) {
  fire()->send_reply(to_, id_, verb_, false, message, {});
}

Transport::Transport(net::Network& network, common::NodeId self)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      calls_(sim_.stats().counter_handle("rmi.calls")),
      failures_(sim_.stats().counter_handle("rmi.failures")),
      retransmissions_(sim_.stats().counter_handle("rmi.retransmissions")),
      duplicates_suppressed_(
          sim_.stats().counter_handle("rmi.duplicates_suppressed")),
      stale_replies_(sim_.stats().counter_handle("rmi.stale_replies")) {
  network_.set_handler(self_,
                       [this](net::Message msg) { on_message(std::move(msg)); });
}

void Transport::register_service(common::VerbId verb, Service service) {
  if (!verb.valid()) {
    throw common::MageError("cannot register a service on an invalid verb");
  }
  if (verb.value() >= services_.size()) {
    services_.resize(verb.value() + 1);
  }
  services_[verb.value()] = std::move(service);
}

std::int64_t* Transport::verb_calls_counter(common::VerbId verb) {
  if (verb.value() >= per_verb_calls_.size()) {
    per_verb_calls_.resize(verb.value() + 1, nullptr);
  }
  auto*& handle = per_verb_calls_[verb.value()];
  if (handle == nullptr) {
    handle = sim_.stats().counter_handle(common::verb_calls_stat(verb));
  }
  return handle;
}

void Transport::call(common::NodeId dest, common::VerbId verb,
                     serial::Buffer body, Callback callback,
                     CallOptions options) {
  if (!verb.valid() || verb.value() >= common::interned_verb_count()) {
    throw common::MageError("call on an uninterned verb id");
  }
  const common::RequestId id{next_request_++};
  const std::size_t body_size = body.size();
  PendingCall pc;
  pc.dest = dest;
  pc.verb = verb;
  pc.body = std::move(body);
  pc.callback = std::move(callback);
  pc.options = options;
  auto [it, inserted] = pending_.emplace(id.value(), std::move(pc));
  assert(inserted);
  (void)it;

  ++*calls_;
  ++*verb_calls_counter(verb);

  // Client-side overhead: stub entry + argument marshalling, charged as
  // simulated CPU time before the request reaches the wire.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_client_overhead_us + model.marshal_time(body_size);
  sim_.schedule_after(prep, [this, id] { transmit(id); });
}

void Transport::transmit(common::RequestId id) {
  auto it = pending_.find(id.value());
  if (it == pending_.end() || it->second.done) return;
  PendingCall& pc = it->second;

  if (pc.attempts >= pc.options.max_attempts) {
    pc.done = true;
    auto callback = std::move(pc.callback);
    const std::string message =
        "rmi call '" + common::verb_name(pc.verb) + "' timed out after " +
        std::to_string(pc.options.max_attempts) + " attempts";
    pending_.erase(it);
    ++*failures_;
    callback(CallResult::failure(message));
    return;
  }

  ++pc.attempts;
  if (pc.attempts > 1) ++*retransmissions_;

  Envelope env;
  env.kind = EnvelopeKind::Request;
  env.request_id = id;
  env.verb = pc.verb;
  env.body = pc.body;  // refcount, not a copy
  network_.send(net::Message{self_, pc.dest, pc.verb, net::MsgKind::Request,
                             env.encode_header(), std::move(env.body)});
  arm_retry_timer(id);
}

void Transport::arm_retry_timer(common::RequestId id) {
  PendingCall& pc = pending_.at(id.value());
  pc.retry_timer = sim_.schedule_after(
      pc.options.retry_timeout_us, [this, id] { transmit(id); });
}

serial::Buffer Transport::call_sync(common::NodeId dest, common::VerbId verb,
                                    serial::Buffer body,
                                    CallOptions options) {
  std::optional<CallResult> result;
  call(
      dest, verb, std::move(body),
      [&result](CallResult r) { result = std::move(r); }, options);
  const bool completed =
      sim_.run_until([&result] { return result.has_value(); });
  if (!completed) {
    throw common::TransportError("simulation drained while waiting for '" +
                                 common::verb_name(verb) + "' reply");
  }
  if (!result->ok) {
    // Distinguish error families by marker prefix: the wire carries only a
    // string, so the remote side tags policy rejections.
    if (result->error.rfind("rmi call", 0) == 0) {
      throw common::TransportError(result->error);
    }
    if (result->error.rfind("access denied", 0) == 0) {
      throw common::AccessDeniedError(result->error);
    }
    if (result->error.rfind("capacity exceeded", 0) == 0) {
      throw common::CapacityError(result->error);
    }
    throw common::RemoteInvocationError(result->error);
  }
  return std::move(result->body);
}

void Transport::on_message(net::Message msg) {
  Envelope env = Envelope::decode(msg.header, std::move(msg.body));
  if (env.kind == EnvelopeKind::Request) {
    on_request(msg.from, std::move(env));
  } else {
    on_reply(std::move(env));
  }
}

void Transport::on_request(common::NodeId from, Envelope env) {
  const std::uint64_t key = pack_key(from, env.request_id);
  if (auto it = reply_cache_.find(key);
      it != reply_cache_.end() && it->second.request_id == env.request_id) {
    // Duplicate (retransmission).  If we already answered, answer again
    // from the cache; if the service is still working, stay silent.
    ++*duplicates_suppressed_;
    if (it->second.completed) {
      const Envelope& reply = it->second.reply;
      network_.send(net::Message{self_, from, reply.verb,
                                 net::MsgKind::ReplyDup,
                                 reply.encode_header(), reply.body});
    }
    return;
  }

  const std::uint32_t verb_index = env.verb.value();
  if (verb_index >= services_.size() || !services_[verb_index]) {
    send_reply(from, env.request_id, env.verb, false,
               "no service registered for verb '" +
                   common::verb_name(env.verb) + "' on node " +
                   std::to_string(self_.value()),
               {});
    return;
  }

  // Insert (or overwrite a low-32-bit aliased leftover) and record the key
  // in the eviction ring, retiring the entry the ring slot previously held.
  // An aliased overwrite must NOT re-record the key: the ring already holds
  // it once, and a duplicate would make the older ring copy evict the
  // newer, still-live entry — breaking at-most-once.
  auto [cache_it, inserted] = reply_cache_.insert_or_assign(
      key, ReplyCacheEntry{env.request_id, false, {}});
  (void)cache_it;
  if (inserted) {
    if (reply_cache_ring_.size() < kReplyCacheCapacity) {
      reply_cache_ring_.push_back(key);
    } else {
      reply_cache_.erase(reply_cache_ring_[reply_cache_head_]);
      reply_cache_ring_[reply_cache_head_] = key;
      reply_cache_head_ = (reply_cache_head_ + 1) % kReplyCacheCapacity;
    }
  }

  // Server-side overhead: skeleton dispatch + argument unmarshalling.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_server_dispatch_us + model.marshal_time(env.body.size());
  Replier replier(this, from, env.request_id, env.verb);
  sim_.schedule_after(
      prep, [this, verb_index, from, body = std::move(env.body),
             replier = std::move(replier)]() mutable {
        // Re-resolve the service at fire time: the flat table may have
        // grown (reallocated) between dispatch and execution.
        services_[verb_index](from, body, std::move(replier));
      });
}

void Transport::send_reply(common::NodeId to, common::RequestId id,
                           common::VerbId verb, bool ok,
                           const std::string& error, serial::Buffer body) {
  Envelope reply;
  reply.kind = EnvelopeKind::Reply;
  reply.request_id = id;
  reply.verb = verb;
  reply.ok = ok;
  reply.error = error;
  reply.body = std::move(body);

  const std::uint64_t key = pack_key(to, id);
  if (auto it = reply_cache_.find(key);
      it != reply_cache_.end() && it->second.request_id == id) {
    it->second.completed = true;
    it->second.reply = reply;  // Buffer refcount, not a payload copy
  }

  // Result marshalling charged on the serving side before the wire.
  const auto& model = network_.cost_model();
  sim_.schedule_after(
      model.marshal_time(reply.body.size()),
      [this, to, reply = std::move(reply)]() mutable {
        network_.send(net::Message{self_, to, reply.verb, net::MsgKind::Reply,
                                   reply.encode_header(),
                                   std::move(reply.body)});
      });
}

void Transport::on_reply(Envelope env) {
  auto it = pending_.find(env.request_id.value());
  if (it == pending_.end() || it->second.done) {
    ++*stale_replies_;
    return;
  }
  PendingCall& pc = it->second;
  pc.done = true;
  sim_.cancel(pc.retry_timer);
  auto callback = std::move(pc.callback);
  CallResult result = env.ok ? CallResult::success(std::move(env.body))
                             : CallResult::failure(std::move(env.error));
  pending_.erase(it);
  callback(std::move(result));
}

}  // namespace mage::rmi
