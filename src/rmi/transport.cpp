#include "rmi/transport.hpp"

#include <cassert>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::rmi {

void Replier::ok(std::vector<std::uint8_t> body) const {
  assert(transport_ != nullptr && "reply on a default-constructed Replier");
  transport_->send_reply(to_, id_, verb_, true, {}, std::move(body));
}

void Replier::error(const std::string& message) const {
  assert(transport_ != nullptr && "reply on a default-constructed Replier");
  transport_->send_reply(to_, id_, verb_, false, message, {});
}

Transport::Transport(net::Network& network, common::NodeId self)
    : network_(network), sim_(network.simulation()), self_(self) {
  network_.set_handler(self_,
                       [this](net::Message msg) { on_message(std::move(msg)); });
}

void Transport::register_service(const std::string& verb, Service service) {
  services_[verb] = std::move(service);
}

void Transport::call(common::NodeId dest, const std::string& verb,
                     std::vector<std::uint8_t> body, Callback callback,
                     CallOptions options) {
  const common::RequestId id{next_request_++};
  PendingCall pc;
  pc.dest = dest;
  pc.verb = verb;
  pc.body = std::move(body);
  pc.callback = std::move(callback);
  pc.options = options;
  auto [it, inserted] = pending_.emplace(id, std::move(pc));
  assert(inserted);
  (void)it;

  sim_.stats().add("rmi.calls");
  sim_.stats().add("rmi.calls." + verb);

  // Client-side overhead: stub entry + argument marshalling, charged as
  // simulated CPU time before the request reaches the wire.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_client_overhead_us +
      model.marshal_time(pending_.at(id).body.size());
  sim_.schedule_after(prep, [this, id] { transmit(id); });
}

void Transport::transmit(common::RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.done) return;
  PendingCall& pc = it->second;

  if (pc.attempts >= pc.options.max_attempts) {
    pc.done = true;
    auto callback = std::move(pc.callback);
    const std::string message =
        "rmi call '" + pc.verb + "' timed out after " +
        std::to_string(pc.options.max_attempts) + " attempts";
    pending_.erase(it);
    sim_.stats().add("rmi.failures");
    callback(CallResult::failure(message));
    return;
  }

  ++pc.attempts;
  if (pc.attempts > 1) sim_.stats().add("rmi.retransmissions");

  Envelope env;
  env.kind = EnvelopeKind::Request;
  env.request_id = id;
  env.verb = pc.verb;
  env.body = pc.body;
  network_.send(net::Message{self_, pc.dest, pc.verb, env.encode()});
  arm_retry_timer(id);
}

void Transport::arm_retry_timer(common::RequestId id) {
  const auto timeout = pending_.at(id).options.retry_timeout_us;
  sim_.schedule_after(timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end() || it->second.done) return;  // already answered
    transmit(id);
  });
}

std::vector<std::uint8_t> Transport::call_sync(common::NodeId dest,
                                               const std::string& verb,
                                               std::vector<std::uint8_t> body,
                                               CallOptions options) {
  std::optional<CallResult> result;
  call(
      dest, verb, std::move(body),
      [&result](CallResult r) { result = std::move(r); }, options);
  const bool completed =
      sim_.run_until([&result] { return result.has_value(); });
  if (!completed) {
    throw common::TransportError("simulation drained while waiting for '" +
                                 verb + "' reply");
  }
  if (!result->ok) {
    // Distinguish error families by marker prefix: the wire carries only a
    // string, so the remote side tags policy rejections.
    if (result->error.rfind("rmi call", 0) == 0) {
      throw common::TransportError(result->error);
    }
    if (result->error.rfind("access denied", 0) == 0) {
      throw common::AccessDeniedError(result->error);
    }
    if (result->error.rfind("capacity exceeded", 0) == 0) {
      throw common::CapacityError(result->error);
    }
    throw common::RemoteInvocationError(result->error);
  }
  return std::move(result->body);
}

void Transport::on_message(net::Message msg) {
  Envelope env = Envelope::decode(msg.payload);
  if (env.kind == EnvelopeKind::Request) {
    on_request(msg.from, std::move(env));
  } else {
    on_reply(env);
  }
}

void Transport::on_request(common::NodeId from, Envelope env) {
  const auto key = std::make_pair(from, env.request_id);
  if (auto it = reply_cache_.find(key); it != reply_cache_.end()) {
    // Duplicate (retransmission).  If we already answered, answer again
    // from the cache; if the service is still working, stay silent.
    sim_.stats().add("rmi.duplicates_suppressed");
    if (it->second.completed) {
      network_.send(net::Message{self_, from, it->second.reply.verb + ".re",
                                 it->second.reply.encode()});
    }
    return;
  }

  auto service_it = services_.find(env.verb);
  if (service_it == services_.end()) {
    send_reply(from, env.request_id, env.verb, false,
               "no service registered for verb '" + env.verb + "' on node " +
                   std::to_string(self_.value()),
               {});
    return;
  }

  reply_cache_.emplace(key, ReplyCacheEntry{});
  reply_cache_order_.push_back(key);
  while (reply_cache_order_.size() > kReplyCacheCapacity) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }

  // Server-side overhead: skeleton dispatch + argument unmarshalling.
  const auto& model = network_.cost_model();
  const common::SimDuration prep =
      model.rmi_server_dispatch_us + model.marshal_time(env.body.size());
  Replier replier(this, from, env.request_id, env.verb);
  sim_.schedule_after(
      prep, [this, service = service_it->second, from,
             body = std::move(env.body), replier]() mutable {
        service(from, body, std::move(replier));
      });
}

void Transport::send_reply(common::NodeId to, common::RequestId id,
                           const std::string& verb, bool ok,
                           const std::string& error,
                           std::vector<std::uint8_t> body) {
  Envelope reply;
  reply.kind = EnvelopeKind::Reply;
  reply.request_id = id;
  reply.verb = verb;
  reply.ok = ok;
  reply.error = error;
  reply.body = std::move(body);

  const auto key = std::make_pair(to, id);
  if (auto it = reply_cache_.find(key); it != reply_cache_.end()) {
    assert(!it->second.completed && "service replied twice to one request");
    it->second.completed = true;
    it->second.reply = reply;
  }

  // Result marshalling charged on the serving side before the wire.
  const auto& model = network_.cost_model();
  sim_.schedule_after(
      model.marshal_time(reply.body.size()),
      [this, to, reply = std::move(reply)]() mutable {
        network_.send(
            net::Message{self_, to, reply.verb + ".reply", reply.encode()});
      });
}

void Transport::on_reply(const Envelope& env) {
  auto it = pending_.find(env.request_id);
  if (it == pending_.end() || it->second.done) {
    sim_.stats().add("rmi.stale_replies");
    return;
  }
  PendingCall& pc = it->second;
  pc.done = true;
  auto callback = std::move(pc.callback);
  CallResult result = env.ok ? CallResult::success(env.body)
                             : CallResult::failure(env.error);
  pending_.erase(it);
  callback(std::move(result));
}

}  // namespace mage::rmi
