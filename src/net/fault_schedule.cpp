#include "net/fault_schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mage::net {

FaultSchedule& FaultSchedule::loss_rate(common::SimTime at, double p) {
  if (p < 0.0 || p > 1.0) {
    throw common::MageError("fault schedule loss rate must be in [0, 1]");
  }
  events_.push_back(FaultEvent{at, FaultKind::LossRate, p, {}, {}});
  base_loss_ = p;
  return *this;
}

FaultSchedule& FaultSchedule::loss_burst(common::SimTime at, double p,
                                         common::SimDuration duration) {
  if (p < 0.0 || p > 1.0) {
    throw common::MageError("fault schedule loss rate must be in [0, 1]");
  }
  if (duration < 1) {
    throw common::MageError("fault schedule loss burst needs duration >= 1us");
  }
  // Two plain entries; the restore targets the builder's base rate so a
  // burst composes with a preceding loss_rate() ramp.
  events_.push_back(FaultEvent{at, FaultKind::LossRate, p, {}, {}});
  events_.push_back(
      FaultEvent{at + duration, FaultKind::LossRate, base_loss_, {}, {}});
  return *this;
}

FaultSchedule& FaultSchedule::link_loss_rate(common::SimTime at,
                                             common::NodeId from,
                                             common::NodeId to, double p) {
  if (p < 0.0 || p > 1.0) {
    throw common::MageError("fault schedule loss rate must be in [0, 1]");
  }
  if (from == to) {
    throw common::MageError("per-link loss needs two distinct nodes");
  }
  events_.push_back(FaultEvent{at, FaultKind::LinkLoss, p, from, to});
  base_link_loss_[{from, to}] = p;
  return *this;
}

FaultSchedule& FaultSchedule::link_loss_burst(common::SimTime at,
                                              common::NodeId from,
                                              common::NodeId to, double p,
                                              common::SimDuration duration) {
  if (p < 0.0 || p > 1.0) {
    throw common::MageError("fault schedule loss rate must be in [0, 1]");
  }
  if (from == to) {
    throw common::MageError("per-link loss needs two distinct nodes");
  }
  if (duration < 1) {
    throw common::MageError("fault schedule loss burst needs duration >= 1us");
  }
  const auto it = base_link_loss_.find({from, to});
  const double base = it == base_link_loss_.end() ? 0.0 : it->second;
  events_.push_back(FaultEvent{at, FaultKind::LinkLoss, p, from, to});
  events_.push_back(
      FaultEvent{at + duration, FaultKind::LinkLoss, base, from, to});
  return *this;
}

FaultSchedule& FaultSchedule::partition(common::SimTime at, common::NodeId a,
                                        common::NodeId b) {
  if (a == b) {
    throw common::MageError("cannot partition a node from itself");
  }
  events_.push_back(FaultEvent{at, FaultKind::Partition, 0.0, a, b});
  return *this;
}

FaultSchedule& FaultSchedule::heal(common::SimTime at, common::NodeId a,
                                   common::NodeId b) {
  events_.push_back(FaultEvent{at, FaultKind::Heal, 0.0, a, b});
  return *this;
}

FaultSchedule& FaultSchedule::partition_for(common::SimTime at,
                                            common::NodeId a, common::NodeId b,
                                            common::SimDuration duration) {
  if (duration < 1) {
    throw common::MageError("fault schedule partition needs duration >= 1us");
  }
  partition(at, a, b);
  return heal(at + duration, a, b);
}

FaultSchedule& FaultSchedule::crash(common::SimTime at, common::NodeId node) {
  events_.push_back(FaultEvent{at, FaultKind::Crash, 0.0, node, {}});
  return *this;
}

FaultSchedule& FaultSchedule::restart(common::SimTime at,
                                      common::NodeId node) {
  events_.push_back(FaultEvent{at, FaultKind::Restart, 0.0, node, {}});
  return *this;
}

FaultSchedule& FaultSchedule::crash_for(common::SimTime at,
                                        common::NodeId node,
                                        common::SimDuration duration) {
  if (duration < 1) {
    throw common::MageError("fault schedule crash needs duration >= 1us");
  }
  crash(at, node);
  return restart(at + duration, node);
}

std::vector<FaultEvent> FaultSchedule::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return out;
}

}  // namespace mage::net
