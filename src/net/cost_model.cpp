#include "net/cost_model.hpp"

namespace mage::net {

CostModel CostModel::jdk122_classic() {
  return CostModel{};  // defaults are the calibrated JDK 1.2.2 values
}

CostModel CostModel::modern_lan() {
  CostModel m;
  m.propagation_us = 25;            // same-rack gigabit
  m.bytes_per_usec = 125.0;         // 1 Gb/s
  m.per_message_cpu_us = 5;
  m.connection_setup_us = 200;
  m.rmi_client_overhead_us = 20;
  m.rmi_server_dispatch_us = 20;
  m.marshal_us_per_byte = 0.002;    // ~500 MB/s serialization
  m.local_invoke_us = 1;
  m.instantiate_us = 2;
  m.class_load_us = 50;
  m.registry_consult_us = 2;
  m.engine_warmup_us = 500;
  return m;
}

CostModel CostModel::wan_site() {
  CostModel m = modern_lan();
  m.propagation_us = 50;       // intra-site floor; WAN hops add extra latency
  m.per_message_cpu_us = 10;   // base lookahead = 60us before WAN widening
  m.connection_setup_us = 400;
  return m;
}

CostModel CostModel::zero() {
  CostModel m;
  m.propagation_us = 1;
  m.bytes_per_usec = 1e9;
  m.per_message_cpu_us = 0;
  m.connection_setup_us = 0;
  m.rmi_client_overhead_us = 0;
  m.rmi_server_dispatch_us = 0;
  m.marshal_us_per_byte = 0.0;
  m.local_invoke_us = 0;
  m.instantiate_us = 0;
  m.class_load_us = 0;
  m.registry_consult_us = 0;
  m.engine_warmup_us = 0;
  return m;
}

}  // namespace mage::net
