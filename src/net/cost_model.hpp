// Latency/CPU cost model for the simulated network and RMI layer.
//
// The paper's testbed: two dual-450 MHz Pentium III machines, 256 MB RAM,
// Linux 2.2.16, Sun JDK 1.2.2, 10 Mb/s Ethernet.  None of that exists here,
// so `jdk122_classic()` encodes a cost model calibrated against Table 3's
// *measured* Java RMI numbers (33 ms cold / 20 ms warm for a trivial call):
// JDK 1.2.2's interpreted marshalling dominates, the wire adds little.  All
// higher-level numbers (TCOD/TREV/MA) then *emerge* from message counts —
// they are not calibrated individually, which is the point of the
// reproduction: Table 3's shape is explained by "multiples of RMI".
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace mage::net {

struct CostModel {
  // One-way propagation + kernel/NIC latency floor per message.
  common::SimDuration propagation_us = 300;

  // Wire bandwidth in bytes per simulated microsecond.
  // 10 Mb/s Ethernet = 1.25 bytes/us.
  double bytes_per_usec = 1.25;

  // CPU charged on the receiving side per message (interrupt + stream
  // decode), independent of RMI-level dispatch.
  common::SimDuration per_message_cpu_us = 200;

  // One-time cost the first time a (from, to) pair talks: TCP connect +
  // RMI transport handshake + stub class resolution + DGC lease setup.
  common::SimDuration connection_setup_us = 13'000;

  // Client-side RMI overhead per call: stub entry, argument marshalling
  // through interpreted object serialization, stream flush.
  common::SimDuration rmi_client_overhead_us = 8500;

  // Server-side RMI overhead per call: skeleton dispatch, argument
  // unmarshalling, reflective invoke, result marshalling.
  common::SimDuration rmi_server_dispatch_us = 8500;

  // CPU charged per payload byte (un)marshalled at RMI level, both sides.
  // JDK 1.2.2 serialization ran at roughly 1 MB/s on a 450 MHz PIII.
  double marshal_us_per_byte = 1.0;

  // Cost of a purely local (same-namespace) invocation, LPC.  Essentially a
  // virtual call; kept nonzero so traces order deterministically.
  common::SimDuration local_invoke_us = 5;

  // Cost of instantiating an object from a cached class (newInstance()).
  common::SimDuration instantiate_us = 450;

  // CPU cost of loading a class image into a namespace's class cache
  // (defineClass + verification), charged once per class per node.
  common::SimDuration class_load_us = 2600;

  // Cost of a mobility attribute consulting its *local* MAGE registry (a
  // direct in-JVM call: synchronized map lookups plus location-cache
  // bookkeeping on a 450 MHz machine).
  common::SimDuration registry_consult_us = 2500;

  // One-time "priming the MAGE engine (warming the caches)" cost per node,
  // charged the first time a node's MageServer executes a migration-family
  // operation: loading the MAGE infrastructure classes, RMI stubs for
  // MageExternalServer, registry cache setup.  This is the dominant cold
  // cost in Table 3's single-invocation column.
  common::SimDuration engine_warmup_us = 30'000;

  [[nodiscard]] common::SimDuration wire_time(std::size_t bytes) const {
    return static_cast<common::SimDuration>(static_cast<double>(bytes) /
                                            bytes_per_usec);
  }

  [[nodiscard]] common::SimDuration marshal_time(std::size_t bytes) const {
    return static_cast<common::SimDuration>(static_cast<double>(bytes) *
                                            marshal_us_per_byte);
  }

  // Calibrated to the paper's testbed (see file comment).
  static CostModel jdk122_classic();

  // A modern gigabit LAN with compiled marshalling, for the "what would
  // MAGE cost today" ablation.
  static CostModel modern_lan();

  // Endpoint costs for a wide-area mesh (Section 7's "competing and
  // disjoint administrative domains" vision): LAN-class machines whose
  // base model covers only the intra-site hop — cross-site links add tens
  // of milliseconds through Network::set_extra_latency, which is what
  // feeds the sharded engine's per-pair lookahead matrix (a WAN hop buys
  // its shards a wide conservative window).
  static CostModel wan_site();

  // All latencies zero/tiny: used by logic-only unit tests that care about
  // behaviour, not time.
  static CostModel zero();
};

}  // namespace mage::net
