// ASCII message-sequence charts from network traces.
//
// Turns a Network trace into the kind of arrow diagram the paper draws for
// its protocols (Figures 1, 2, 7), e.g.:
//
//      client            server
//        |--mage.invoke--->|
//        |<--....reply-----|
//
// Used by the figure benches; also handy when debugging a new protocol.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace mage::net {

struct TraceChartOptions {
  std::size_t column_width = 24;  // per-participant lane width
  bool include_replies = true;
  bool include_drops = true;
  bool show_times = true;
};

// Renders the trace as a sequence chart over the given participant nodes
// (in lane order).  Messages touching nodes outside `participants` are
// skipped.
[[nodiscard]] std::string render_sequence_chart(
    const Network& network, const std::vector<TraceEntry>& trace,
    const std::vector<common::NodeId>& participants,
    const TraceChartOptions& options = {});

}  // namespace mage::net
