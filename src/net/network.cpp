#include "net/network.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::net {
namespace {

std::pair<common::NodeId, common::NodeId> ordered_pair(common::NodeId a,
                                                       common::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Network::Network(sim::Simulation& sim, CostModel model)
    : sim_(sim),
      model_(model),
      messages_sent_(sim.stats().counter_handle("net.messages_sent")),
      bytes_sent_(sim.stats().counter_handle("net.bytes_sent")),
      messages_dropped_(sim.stats().counter_handle("net.messages_dropped")),
      messages_delivered_(
          sim.stats().counter_handle("net.messages_delivered")),
      connections_opened_(
          sim.stats().counter_handle("net.connections_opened")) {}

common::NodeId Network::add_node(std::string label) {
  const common::NodeId id{static_cast<std::uint32_t>(nodes_.size() + 1)};
  NodeState state;
  state.label = std::move(label);
  nodes_.push_back(std::move(state));
  return id;
}

Network::NodeState& Network::state(common::NodeId node) {
  assert(node.value() >= 1 && node.value() <= nodes_.size());
  return nodes_[node.value() - 1];
}

const Network::NodeState& Network::state(common::NodeId node) const {
  assert(node.value() >= 1 && node.value() <= nodes_.size());
  return nodes_[node.value() - 1];
}

void Network::set_handler(common::NodeId node, Handler handler) {
  state(node).handler = std::move(handler);
}

const std::string& Network::label(common::NodeId node) const {
  return state(node).label;
}

std::vector<common::NodeId> Network::node_ids() const {
  std::vector<common::NodeId> ids;
  ids.reserve(nodes_.size());
  for (std::uint32_t i = 1; i <= nodes_.size(); ++i) {
    ids.push_back(common::NodeId{i});
  }
  return ids;
}

void Network::send(Message msg) {
  ++*messages_sent_;
  *bytes_sent_ += static_cast<std::int64_t>(msg.wire_size());

  const common::SimTime sent_at = sim_.now();
  const bool loopback = msg.from == msg.to;

  if (!loopback && (state(msg.from).down || state(msg.to).down)) {
    ++*messages_dropped_;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  if (!loopback && partitions_.contains(ordered_pair(msg.from, msg.to))) {
    ++*messages_dropped_;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  if (!loopback && loss_rate_ > 0.0 && sim_.rng().next_bool(loss_rate_)) {
    ++*messages_dropped_;
    MAGE_DEBUG() << "dropped " << msg.label() << " " << msg.from << " -> "
                 << msg.to;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  common::SimDuration delay = 0;
  if (loopback) {
    delay = model_.local_invoke_us;
  } else {
    delay = model_.propagation_us + model_.wire_time(msg.wire_size()) +
            model_.per_message_cpu_us;
    auto link = std::make_pair(msg.from, msg.to);
    if (auto it = extra_latency_.find(link); it != extra_latency_.end()) {
      delay += it->second;
    }
    // One-time connection setup per unordered pair: once either side has
    // connected, the TCP connection is reused in both directions.
    if (warm_connections_.insert(ordered_pair(msg.from, msg.to)).second) {
      delay += model_.connection_setup_us;
      ++*connections_opened_;
    }
  }

  common::SimTime deliver_at = sent_at + delay;
  if (!loopback) {
    // TCP in-order delivery per directed link.
    auto& floor = state(msg.to).earliest_delivery_from[msg.from];
    deliver_at = std::max(deliver_at, floor);
    floor = deliver_at + 1;
  }

  if (tracing_) {
    trace_.push_back(TraceEntry{sent_at, deliver_at, msg.from, msg.to,
                                msg.label(), msg.wire_size(), false});
  }

  // Wake::No: delivery hands the message to the transport, which wakes the
  // simulation itself exactly where user code runs (service dispatch,
  // completion callbacks).
  sim_.schedule_at(
      deliver_at,
      [this, msg = std::move(msg)]() mutable {
        auto& node = state(msg.to);
        if (!node.handler) {
          throw common::TransportError("node '" + node.label +
                                       "' has no message handler installed");
        }
        ++*messages_delivered_;
        node.handler(std::move(msg));
      },
      sim::Wake::No);
}

void Network::set_partitioned(common::NodeId a, common::NodeId b,
                              bool partitioned) {
  if (partitioned) {
    partitions_.insert(ordered_pair(a, b));
  } else {
    partitions_.erase(ordered_pair(a, b));
  }
}

void Network::set_extra_latency(common::NodeId from, common::NodeId to,
                                common::SimDuration extra) {
  extra_latency_[{from, to}] = extra;
}

void Network::set_load(common::NodeId node, double load) {
  state(node).load = load;
}

double Network::load(common::NodeId node) const { return state(node).load; }

void Network::set_node_down(common::NodeId node, bool down) {
  state(node).down = down;
}

bool Network::node_down(common::NodeId node) const {
  return state(node).down;
}

void Network::set_domain(common::NodeId node, std::string domain) {
  state(node).domain = std::move(domain);
}

const std::string& Network::domain(common::NodeId node) const {
  return state(node).domain;
}

}  // namespace mage::net
