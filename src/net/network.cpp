#include "net/network.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::net {
namespace {

std::pair<common::NodeId, common::NodeId> ordered_pair(common::NodeId a,
                                                       common::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Network::Network(sim::Simulation& sim, CostModel model)
    : driver_sim_(&sim), model_(model) {}

Network::Network(sim::ShardedSim& sharded, CostModel model)
    : sharded_(&sharded), model_(model) {
  if (min_link_latency(model_) < sharded.lookahead()) {
    throw common::MageError(
        "cost model's minimum cross-node delay (" +
        std::to_string(min_link_latency(model_)) +
        "us) does not cover the sharded lookahead (" +
        std::to_string(sharded.lookahead()) +
        "us): a message could arrive inside the conservative window");
  }
}

void Network::require_config_window(const char* what) const {
  if (sharded_ != nullptr && sharded_->running()) {
    throw common::MageError(
        std::string("network configuration is frozen while sharded workers "
                    "run: ") +
        what);
  }
}

common::NodeId Network::add_node(std::string label) {
  require_config_window("add_node");
  if (sharded_ != nullptr && nodes_.size() >= sharded_->shard_count()) {
    throw common::MageError("sharded network is full: " +
                            std::to_string(sharded_->shard_count()) +
                            " shards, cannot add node '" + label + "'");
  }
  const common::NodeId id{static_cast<std::uint32_t>(nodes_.size() + 1)};
  NodeState state;
  state.label = std::move(label);
  nodes_.push_back(std::move(state));
  NodeState& stored = nodes_.back();
  auto& stats = node_sim(id).stats();
  stored.messages_sent = stats.counter_handle("net.messages_sent");
  stored.bytes_sent = stats.counter_handle("net.bytes_sent");
  stored.messages_dropped = stats.counter_handle("net.messages_dropped");
  stored.messages_delivered = stats.counter_handle("net.messages_delivered");
  stored.connections_opened = stats.counter_handle("net.connections_opened");
  return id;
}

Network::NodeState& Network::state(common::NodeId node) {
  assert(node.value() >= 1 && node.value() <= nodes_.size());
  return nodes_[node.value() - 1];
}

const Network::NodeState& Network::state(common::NodeId node) const {
  assert(node.value() >= 1 && node.value() <= nodes_.size());
  return nodes_[node.value() - 1];
}

sim::Simulation& Network::simulation() {
  if (driver_sim_ == nullptr) {
    throw common::MageError(
        "Network::simulation() is driver-mode only: a sharded network has "
        "one simulation context per node (use node_sim)");
  }
  return *driver_sim_;
}

sim::Simulation& Network::node_sim(common::NodeId node) {
  if (driver_sim_ != nullptr) return *driver_sim_;
  assert(node.value() >= 1 && node.value() <= sharded_->shard_count());
  return sharded_->shard(node.value() - 1);
}

void Network::set_handler(common::NodeId node, Handler handler) {
  require_config_window("set_handler");
  state(node).handler = std::move(handler);
}

const std::string& Network::label(common::NodeId node) const {
  return state(node).label;
}

std::vector<common::NodeId> Network::node_ids() const {
  std::vector<common::NodeId> ids;
  ids.reserve(nodes_.size());
  for (std::uint32_t i = 1; i <= nodes_.size(); ++i) {
    ids.push_back(common::NodeId{i});
  }
  return ids;
}

void Network::send(Message msg) {
  NodeState& from = state(msg.from);
  sim::Simulation& sender_sim = node_sim(msg.from);

  ++*from.messages_sent;
  *from.bytes_sent += static_cast<std::int64_t>(msg.wire_size());

  const common::SimTime sent_at = sender_sim.now();
  const bool loopback = msg.from == msg.to;

  if (!loopback && (from.down || state(msg.to).down)) {
    ++*from.messages_dropped;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  if (!loopback && partitions_.contains(ordered_pair(msg.from, msg.to))) {
    ++*from.messages_dropped;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  if (!loopback && loss_rate_ > 0.0 && sender_sim.rng().next_bool(loss_rate_)) {
    ++*from.messages_dropped;
    MAGE_DEBUG() << "dropped " << msg.label() << " " << msg.from << " -> "
                 << msg.to;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  common::SimDuration delay = 0;
  if (loopback) {
    delay = model_.local_invoke_us;
  } else {
    delay = model_.propagation_us + model_.wire_time(msg.wire_size()) +
            model_.per_message_cpu_us;
    auto link = std::make_pair(msg.from, msg.to);
    if (auto it = extra_latency_.find(link); it != extra_latency_.end()) {
      delay += it->second;
    }
    if (driver_sim_ != nullptr) {
      // One-time connection setup per unordered pair: once either side has
      // connected, the TCP connection is reused in both directions.
      if (warm_connections_.insert(ordered_pair(msg.from, msg.to)).second) {
        delay += model_.connection_setup_us;
        ++*from.connections_opened;
      }
    } else {
      // Sharded mode: warmth is per DIRECTED link (each direction pays
      // setup once) so the state stays owned by the sending shard — the
      // unordered pair would be written from two shards.
      if (from.warm_to.insert(msg.to).second) {
        delay += model_.connection_setup_us;
        ++*from.connections_opened;
      }
    }
  }

  common::SimTime deliver_at = sent_at + delay;
  if (!loopback) {
    // TCP in-order delivery per directed link.  The floor lives on the
    // sender (only this link's sends touch it), so sharded workers never
    // write foreign node state.
    auto& floor = from.earliest_delivery_to[msg.to];
    deliver_at = std::max(deliver_at, floor);
    floor = deliver_at + 1;
  }

  if (tracing_) {
    trace_.push_back(TraceEntry{sent_at, deliver_at, msg.from, msg.to,
                                msg.label(), msg.wire_size(), false});
  }

  // Wake::No: delivery hands the message to the transport, which wakes the
  // simulation itself exactly where user code runs (service dispatch,
  // completion callbacks).
  auto deliver = [this, msg = std::move(msg)]() mutable {
    auto& node = state(msg.to);
    if (!node.handler) {
      throw common::TransportError("node '" + node.label +
                                   "' has no message handler installed");
    }
    ++*node.messages_delivered;
    node.handler(std::move(msg));
  };
  if (loopback || driver_sim_ != nullptr) {
    sender_sim.schedule_at(deliver_at, std::move(deliver), sim::Wake::No);
  } else {
    // Cross-shard: into the (from, to) mailbox; the destination shard
    // drains it at the next window boundary.  deliver_at >= sent_at +
    // lookahead by the construction-time cost-model check, so the event
    // always lands outside the current conservative window.
    sharded_->post(msg.from.value() - 1, msg.to.value() - 1, deliver_at,
                   std::move(deliver), sim::Wake::No);
  }
}

void Network::set_loss_rate(double p) {
  require_config_window("set_loss_rate");
  loss_rate_ = p;
}

void Network::set_partitioned(common::NodeId a, common::NodeId b,
                              bool partitioned) {
  require_config_window("set_partitioned");
  if (partitioned) {
    partitions_.insert(ordered_pair(a, b));
  } else {
    partitions_.erase(ordered_pair(a, b));
  }
}

void Network::set_extra_latency(common::NodeId from, common::NodeId to,
                                common::SimDuration extra) {
  require_config_window("set_extra_latency");
  if (sharded_ != nullptr && extra < 0) {
    // Negative "extra" would undercut the conservative lookahead the
    // construction-time check validated; ShardedSim::post would reject
    // the send mid-run anyway — fail at configuration time instead.
    throw common::MageError(
        "negative extra link latency is not allowed on a sharded network "
        "(it would undercut the conservative lookahead)");
  }
  extra_latency_[{from, to}] = extra;
}

void Network::set_load(common::NodeId node, double load) {
  state(node).load = load;
}

double Network::load(common::NodeId node) const { return state(node).load; }

void Network::set_node_down(common::NodeId node, bool down) {
  require_config_window("set_node_down");
  state(node).down = down;
}

bool Network::node_down(common::NodeId node) const {
  return state(node).down;
}

void Network::set_domain(common::NodeId node, std::string domain) {
  require_config_window("set_domain");
  state(node).domain = std::move(domain);
}

const std::string& Network::domain(common::NodeId node) const {
  return state(node).domain;
}

void Network::set_tracing(bool enabled) {
  if (enabled && sharded_ != nullptr) {
    throw common::MageError(
        "message tracing is driver-mode only: sharded workers would "
        "interleave the trace stream");
  }
  tracing_ = enabled;
}

void Network::reset_connections() {
  require_config_window("reset_connections");
  warm_connections_.clear();
  for (auto& node : nodes_) node.warm_to.clear();
}

}  // namespace mage::net
