#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::net {
namespace {

std::pair<common::NodeId, common::NodeId> ordered_pair(common::NodeId a,
                                                       common::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Network::Network(sim::Simulation& sim, CostModel model)
    : driver_sim_(&sim), model_(model) {
  faults_applied_ = sim.stats().counter_handle("net.faults_applied");
}

Network::Network(sim::ShardedSim& sharded, CostModel model,
                 std::vector<std::size_t> node_to_shard)
    : sharded_(&sharded), model_(model), shard_map_(std::move(node_to_shard)) {
  if (min_link_latency(model_) < sharded.lookahead()) {
    throw common::MageError(
        "cost model's minimum cross-node delay (" +
        std::to_string(min_link_latency(model_)) +
        "us) does not cover the sharded lookahead (" +
        std::to_string(sharded.lookahead()) +
        "us): a message could arrive inside the conservative window");
  }
  if (shard_map_.empty()) {
    // Identity mapping: node i on shard i, the historical 1:1 layout.
    shard_map_.resize(sharded.shard_count());
    for (std::size_t i = 0; i < shard_map_.size(); ++i) shard_map_[i] = i;
  } else {
    for (std::size_t i = 0; i < shard_map_.size(); ++i) {
      if (shard_map_[i] >= sharded.shard_count()) {
        throw common::MageError(
            "node:shard mapping sends node " + std::to_string(i + 1) +
            " to shard " + std::to_string(shard_map_[i]) +
            ", but the ShardedSim has only " +
            std::to_string(sharded.shard_count()) + " shards");
      }
    }
  }
  // Faults apply at window boundaries (one thread, all workers parked);
  // shard 0's registry is the conventional home for driver-side counters.
  faults_applied_ = sharded.shard(0).stats().counter_handle(
      "net.faults_applied");
}

Network::~Network() {
  // Schedule appliers capture `this`; leaving them behind would dangle.
  // Sharded: uninstall the boundary hook — but only if it is still OURS
  // (a newer Network on the same ShardedSim may have installed its own).
  // Driver: cancel every not-yet-fired applier event.  Never mid-run in
  // practice (the network outlives its runs), but stay noexcept.
  if (hook_installed_ && !sharded_->running() &&
      sharded_->boundary_hook_owner() == this) {
    sharded_->set_boundary_hook(nullptr);
  }
  cancel_fault_appliers();
}

void Network::cancel_fault_appliers() {
  if (driver_sim_ != nullptr) {
    for (sim::EventId id : fault_applier_events_) driver_sim_->cancel(id);
  }
  fault_applier_events_.clear();
}

void Network::require_config_window(const char* what) const {
  if (sharded_ != nullptr && sharded_->running()) {
    throw common::MageError(
        std::string("network configuration is frozen while sharded workers "
                    "run: ") +
        what);
  }
}

void Network::require_fault_window(const char* what) const {
  if (sharded_ != nullptr && sharded_->running()) {
    throw common::MageError(
        std::string(what) +
        " is frozen while sharded workers run: install a net::FaultSchedule "
        "(Network::set_fault_schedule) before the run — its entries are "
        "applied atomically at window boundaries, so faults can change "
        "mid-run without breaking the threading contract or determinism");
  }
}

common::NodeId Network::add_node(std::string label) {
  require_config_window("add_node");
  if (sharded_ != nullptr && nodes_.size() >= shard_map_.size()) {
    throw common::MageError("sharded network is full: the node:shard "
                            "mapping covers " +
                            std::to_string(shard_map_.size()) +
                            " nodes, cannot add node '" + label + "'");
  }
  const common::NodeId id{static_cast<std::uint32_t>(nodes_.size() + 1)};
  NodeState state;
  state.label = std::move(label);
  nodes_.push_back(std::move(state));
  NodeState& stored = nodes_.back();
  if (sharded_ != nullptr) {
    // Per-node loss stream, a function of the run seed and the node id
    // only — NOT of the shard — so chaos drop patterns survive remapping.
    stored.loss_rng =
        common::Rng(sharded_->seed() ^ (0x9E3779B97F4A7C15ull * id.value()));
  }
  auto& stats = node_sim(id).stats();
  stored.messages_sent = stats.counter_handle("net.messages_sent");
  stored.bytes_sent = stats.counter_handle("net.bytes_sent");
  stored.messages_dropped = stats.counter_handle("net.messages_dropped");
  stored.messages_delivered = stats.counter_handle("net.messages_delivered");
  stored.connections_opened = stats.counter_handle("net.connections_opened");
  stored.messages_dropped_by_schedule =
      stats.counter_handle("net.messages_dropped_by_schedule");
  stored.messages_dropped_by_link_loss =
      stats.counter_handle("net.messages_dropped_by_link_loss");
  stored.fifo_violations = stats.counter_handle("net.fifo_violations");
  return id;
}

Network::NodeState& Network::state(common::NodeId node) {
  assert(node.value() >= 1 && node.value() <= nodes_.size());
  return nodes_[node.value() - 1];
}

const Network::NodeState& Network::state(common::NodeId node) const {
  assert(node.value() >= 1 && node.value() <= nodes_.size());
  return nodes_[node.value() - 1];
}

sim::Simulation& Network::simulation() {
  if (driver_sim_ == nullptr) {
    throw common::MageError(
        "Network::simulation() is driver-mode only: a sharded network has "
        "one simulation context per node (use node_sim)");
  }
  return *driver_sim_;
}

sim::Simulation& Network::node_sim(common::NodeId node) {
  if (driver_sim_ != nullptr) return *driver_sim_;
  assert(node.value() >= 1 && node.value() <= shard_map_.size());
  return sharded_->shard(shard_map_[node.value() - 1]);
}

std::size_t Network::shard_of(common::NodeId node) const {
  if (sharded_ == nullptr) {
    throw common::MageError(
        "Network::shard_of is sharded-mode only: driver mode has no shards");
  }
  assert(node.value() >= 1 && node.value() <= shard_map_.size());
  return shard_map_[node.value() - 1];
}

void Network::refresh_pair_lookaheads() {
  require_config_window("refresh_pair_lookaheads");
  if (sharded_ == nullptr) return;
  const std::size_t shard_total = sharded_->shard_count();
  const common::SimDuration base = min_link_latency(model_);
  // Tightest delay per directed shard pair: base + the smallest extra
  // latency among that pair's links (unconfigured links have extra 0, and
  // every node pair is a potential link, so any populated pair has a
  // defined minimum).
  std::vector<common::SimDuration> tightest(
      shard_total * shard_total, std::numeric_limits<common::SimDuration>::max());
  for (std::uint32_t a = 1; a <= nodes_.size(); ++a) {
    for (std::uint32_t b = 1; b <= nodes_.size(); ++b) {
      if (a == b) continue;
      const std::size_t pa = shard_map_[a - 1];
      const std::size_t pb = shard_map_[b - 1];
      if (pa == pb) continue;  // intra-shard links never constrain windows
      common::SimDuration delay = base;
      if (const auto it =
              extra_latency_.find({common::NodeId{a}, common::NodeId{b}});
          it != extra_latency_.end()) {
        delay += it->second;
      }
      auto& entry = tightest[pa * shard_total + pb];
      entry = std::min(entry, delay);
    }
  }
  for (std::size_t p = 0; p < shard_total; ++p) {
    for (std::size_t q = 0; q < shard_total; ++q) {
      const common::SimDuration la = tightest[p * shard_total + q];
      if (p == q || la == std::numeric_limits<common::SimDuration>::max()) {
        continue;  // no nodes (yet) on one side: leave the uniform default
      }
      sharded_->set_pair_lookahead(p, q, la);
    }
  }
  validate_pair_lookaheads();
}

void Network::validate_pair_lookaheads() const {
  if (sharded_ == nullptr) return;
  const common::SimDuration base = min_link_latency(model_);
  for (std::uint32_t a = 1; a <= nodes_.size(); ++a) {
    for (std::uint32_t b = 1; b <= nodes_.size(); ++b) {
      if (a == b) continue;
      const std::size_t pa = shard_map_[a - 1];
      const std::size_t pb = shard_map_[b - 1];
      if (pa == pb) continue;
      common::SimDuration delay = base;
      if (const auto it =
              extra_latency_.find({common::NodeId{a}, common::NodeId{b}});
          it != extra_latency_.end()) {
        delay += it->second;
      }
      const common::SimDuration la = sharded_->pair_lookahead(pa, pb);
      if (la < 1 || delay < la) {
        throw common::MageError(
            "pair lookahead for shard link " + std::to_string(pa) + " -> " +
            std::to_string(pb) + " is " + std::to_string(la) +
            "us, but link " + nodes_[a - 1].label + " -> " +
            nodes_[b - 1].label + " (node " + std::to_string(a) + " -> " +
            std::to_string(b) + ") can deliver in " + std::to_string(delay) +
            "us under this cost model: a mid-window send on that link would "
            "land inside the conservative window (every entry must be >= 1us "
            "and <= its links' minimum delay)");
      }
    }
  }
}

void Network::set_handler(common::NodeId node, Handler handler) {
  require_config_window("set_handler");
  state(node).handler = std::move(handler);
}

const std::string& Network::label(common::NodeId node) const {
  return state(node).label;
}

std::vector<common::NodeId> Network::node_ids() const {
  std::vector<common::NodeId> ids;
  ids.reserve(nodes_.size());
  for (std::uint32_t i = 1; i <= nodes_.size(); ++i) {
    ids.push_back(common::NodeId{i});
  }
  return ids;
}

void Network::send(Message msg) {
  NodeState& from = state(msg.from);
  sim::Simulation& sender_sim = node_sim(msg.from);

  ++*from.messages_sent;
  *from.bytes_sent += static_cast<std::int64_t>(msg.wire_size());

  const common::SimTime sent_at = sender_sim.now();
  const bool loopback = msg.from == msg.to;
  // Loss draws: the shared driver RNG in driver mode, the sender's own
  // stream in sharded mode (a per-node function of the seed, so drop
  // patterns survive node:shard remapping — a shard stream would braid
  // co-located senders' draws together).
  common::Rng& loss_rng =
      sharded_ != nullptr ? from.loss_rng : sender_sim.rng();

  if (!loopback && (from.down || state(msg.to).down)) {
    ++*from.messages_dropped;
    if (from.down_by_schedule || state(msg.to).down_by_schedule) {
      ++*from.messages_dropped_by_schedule;
    }
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  if (!loopback && partitions_.contains(ordered_pair(msg.from, msg.to))) {
    ++*from.messages_dropped;
    if (scheduled_partitions_.contains(ordered_pair(msg.from, msg.to))) {
      ++*from.messages_dropped_by_schedule;
    }
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  if (!loopback && loss_rate_ > 0.0 && loss_rng.next_bool(loss_rate_)) {
    ++*from.messages_dropped;
    if (loss_from_schedule_) ++*from.messages_dropped_by_schedule;
    MAGE_DEBUG() << "dropped " << msg.label() << " " << msg.from << " -> "
                 << msg.to;
    if (tracing_) {
      trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                  msg.wire_size(), true});
    }
    return;
  }

  // Per-link loss, layered after the global draw.  The RNG is consulted
  // only when this directed link has a nonzero rate, so runs without
  // per-link faults replay the exact same random stream as before.
  if (!loopback && !link_loss_.empty()) {
    const auto link = std::make_pair(msg.from, msg.to);
    const auto it = link_loss_.find(link);
    if (it != link_loss_.end() && it->second > 0.0 &&
        loss_rng.next_bool(it->second)) {
      ++*from.messages_dropped;
      ++*from.messages_dropped_by_link_loss;
      ++from.link_loss_drops_to[msg.to];
      if (scheduled_link_loss_.contains(link)) {
        ++*from.messages_dropped_by_schedule;
      }
      MAGE_DEBUG() << "link-dropped " << msg.label() << " " << msg.from
                   << " -> " << msg.to;
      if (tracing_) {
        trace_.push_back(TraceEntry{sent_at, -1, msg.from, msg.to, msg.label(),
                                    msg.wire_size(), true});
      }
      return;
    }
  }

  common::SimDuration delay = 0;
  if (loopback) {
    delay = model_.local_invoke_us;
  } else {
    delay = model_.propagation_us + model_.wire_time(msg.wire_size()) +
            model_.per_message_cpu_us;
    auto link = std::make_pair(msg.from, msg.to);
    if (auto it = extra_latency_.find(link); it != extra_latency_.end()) {
      delay += it->second;
    }
    if (driver_sim_ != nullptr) {
      // One-time connection setup per unordered pair: once either side has
      // connected, the TCP connection is reused in both directions.
      if (warm_connections_.insert(ordered_pair(msg.from, msg.to)).second) {
        delay += model_.connection_setup_us;
        ++*from.connections_opened;
      }
    } else {
      // Sharded mode: warmth is per DIRECTED link (each direction pays
      // setup once) so the state stays owned by the sending shard — the
      // unordered pair would be written from two shards.
      if (from.warm_to.insert(msg.to).second) {
        delay += model_.connection_setup_us;
        ++*from.connections_opened;
      }
    }
  }

  common::SimTime deliver_at = sent_at + delay;
  if (!loopback) {
    // TCP in-order delivery per directed link.  The floor lives on the
    // sender (only this link's sends touch it), so sharded workers never
    // write foreign node state.
    auto& floor = from.earliest_delivery_to[msg.to];
    deliver_at = std::max(deliver_at, floor);
    floor = deliver_at + 1;
    if (fifo_checks_) {
      // Wire-FIFO stamp, sender-owned (mirrors the ordering floor).
      // Dropped messages never reach this point, so stamps on delivered
      // messages are strictly increasing per directed link by
      // construction — the delivery-side check verifies the floors
      // actually preserved that order.
      msg.wire_seq = ++from.next_wire_seq_to[msg.to];
      // Epoch stamp: which incarnation of this link the stamp belongs to.
      // Crash/restart transitions bump it (see on_node_transition), telling
      // the receiver the sender's counters may have started over.
      msg.link_epoch = link_epoch(msg.from, msg.to);
    }
  }

  if (tracing_) {
    trace_.push_back(TraceEntry{sent_at, deliver_at, msg.from, msg.to,
                                msg.label(), msg.wire_size(), false});
  }

  // Wake::No: delivery hands the message to the transport, which wakes the
  // simulation itself exactly where user code runs (service dispatch,
  // completion callbacks).
  auto deliver = [this, msg = std::move(msg)]() mutable {
    auto& node = state(msg.to);
    if (!node.handler) {
      throw common::TransportError("node '" + node.label +
                                   "' has no message handler installed");
    }
    ++*node.messages_delivered;
    if (fifo_checks_ && msg.wire_seq != 0) {
      // Receiver-owned monotonicity check (this runs on the destination's
      // shard).  Gaps are fine — drops consume no stamp — but any
      // reordering on a directed link is a violation.  A new link epoch
      // means the sender crashed/restarted (or the link was cut and
      // healed) since the last delivery: its counters may have started
      // over, so the expectation resets instead of flagging a spurious
      // violation.
      auto& epoch = node.last_wire_epoch_from[msg.from];
      auto& last = node.last_wire_seq_from[msg.from];
      if (msg.link_epoch != epoch) {
        epoch = msg.link_epoch;
        last = 0;
      }
      if (msg.wire_seq <= last) {
        ++*node.fifo_violations;
      } else {
        last = msg.wire_seq;
      }
    }
    node.handler(std::move(msg));
  };
  // Every delivery carries its source node id as the event-queue tie key:
  // same-instant arrivals at one node execute in source order no matter
  // which mechanism (direct schedule below vs. mailbox drain) inserted
  // them — the keystone of the mapping-independence contract.
  const std::uint32_t tie = msg.from.value();
  if (loopback || driver_sim_ != nullptr ||
      shard_map_[msg.from.value() - 1] == shard_map_[msg.to.value() - 1]) {
    // Same engine context (driver mode, loopback, or co-located nodes in
    // sharded mode): schedule straight into the shared queue.  This is the
    // affinity-mapping payoff — an intra-shard message costs no mailbox,
    // no barrier wait, and does not constrain the lookahead matrix.  Its
    // TIMING is identical to the cross-shard path above, so the mapping
    // never changes when a message arrives, only what carries it.
    sender_sim.schedule_at(deliver_at, std::move(deliver), sim::Wake::No, tie);
  } else {
    // Cross-shard: into the shard-pair mailbox; the destination shard
    // drains it at the next window boundary.  deliver_at >= sent_at + the
    // pair's lookahead entry (validate_pair_lookaheads enforces the matrix
    // never over-promises), so the event always lands outside the current
    // conservative window.
    sharded_->post(shard_map_[msg.from.value() - 1],
                   shard_map_[msg.to.value() - 1], deliver_at,
                   std::move(deliver), sim::Wake::No, tie);
  }
}

void Network::set_loss_rate(double p) {
  require_fault_window("set_loss_rate");
  loss_rate_ = p;
  loss_from_schedule_ = false;
}

void Network::set_link_loss_rate(common::NodeId from, common::NodeId to,
                                 double p) {
  require_fault_window("set_link_loss_rate");
  const auto link = std::make_pair(from, to);
  if (p > 0.0) {
    link_loss_[link] = p;
  } else {
    link_loss_.erase(link);
  }
  scheduled_link_loss_.erase(link);
}

double Network::link_loss_rate(common::NodeId from, common::NodeId to) const {
  const auto it = link_loss_.find({from, to});
  return it == link_loss_.end() ? 0.0 : it->second;
}

std::int64_t Network::link_loss_drops(common::NodeId from,
                                      common::NodeId to) const {
  const auto& drops = state(from).link_loss_drops_to;
  const auto it = drops.find(to);
  return it == drops.end() ? 0 : it->second;
}

void Network::set_partitioned(common::NodeId a, common::NodeId b,
                              bool partitioned) {
  require_fault_window("set_partitioned");
  const auto link = ordered_pair(a, b);
  if (partitioned) {
    if (partitions_.insert(link).second) ++link_epochs_[link];
  } else {
    if (partitions_.erase(link) != 0) ++link_epochs_[link];
  }
  scheduled_partitions_.erase(link);
}

std::int64_t Network::link_epoch(common::NodeId a, common::NodeId b) const {
  const auto it = link_epochs_.find(ordered_pair(a, b));
  return it == link_epochs_.end() ? 0 : it->second;
}

void Network::set_fifo_checks(bool on) {
  require_config_window("set_fifo_checks");
  fifo_checks_ = on;
}

void Network::set_fault_schedule(FaultSchedule schedule) {
  require_config_window("set_fault_schedule");
  for (const FaultEvent& e : schedule.events()) {
    const bool needs_b = e.kind == FaultKind::Partition ||
                         e.kind == FaultKind::Heal ||
                         e.kind == FaultKind::LinkLoss;
    const bool needs_a = needs_b || e.kind == FaultKind::Crash ||
                         e.kind == FaultKind::Restart;
    if ((needs_a && (e.a.value() < 1 || e.a.value() > nodes_.size())) ||
        (needs_b && (e.b.value() < 1 || e.b.value() > nodes_.size()))) {
      throw common::MageError(
          "fault schedule references a node not on this network (add all "
          "nodes before set_fault_schedule)");
    }
  }
  // Replacing a schedule orphans its driver-mode appliers: cancel them.
  cancel_fault_appliers();
  fault_events_ = schedule.sorted();
  next_fault_ = 0;

  if (sharded_ != nullptr) {
    // Applied inside the window barrier, before the window runs: every
    // worker parked, so shards never observe a half-applied config, and
    // the boundary times are a pure function of event timestamps, so the
    // effective application times are identical at any worker count.
    sharded_->set_boundary_hook(
        [this](common::SimTime window_start) { apply_due_faults(window_start); },
        /*owner=*/this);
    hook_installed_ = true;
  } else {
    // Driver mode: one (non-waking) event per entry at its exact time.
    // The ids are kept so a replaced schedule or a destroyed network can
    // cancel appliers that have not fired yet.
    fault_applier_events_.reserve(fault_events_.size());
    for (const FaultEvent& e : fault_events_) {
      const common::SimTime at = std::max(e.at, driver_sim_->now());
      fault_applier_events_.push_back(driver_sim_->schedule_at(
          at, [this] { apply_due_faults(driver_sim_->now()); },
          sim::Wake::No));
    }
  }
}

void Network::apply_due_faults(common::SimTime now) {
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].at <= now) {
    apply_fault(fault_events_[next_fault_]);
    ++next_fault_;
  }
}

void Network::apply_fault(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::LossRate:
      loss_rate_ = event.loss_rate;
      loss_from_schedule_ = true;
      break;
    case FaultKind::LinkLoss: {
      const auto link = std::make_pair(event.a, event.b);
      if (event.loss_rate > 0.0) {
        link_loss_[link] = event.loss_rate;
        scheduled_link_loss_.insert(link);
      } else {
        link_loss_.erase(link);
        scheduled_link_loss_.erase(link);
      }
      break;
    }
    case FaultKind::Partition: {
      const auto link = ordered_pair(event.a, event.b);
      if (partitions_.insert(link).second) ++link_epochs_[link];
      scheduled_partitions_.insert(link);
      break;
    }
    case FaultKind::Heal: {
      const auto link = ordered_pair(event.a, event.b);
      if (partitions_.erase(link) != 0) ++link_epochs_[link];
      scheduled_partitions_.erase(link);
      break;
    }
    case FaultKind::Crash: {
      NodeState& node = state(event.a);
      node.down = true;
      node.down_by_schedule = true;
      on_node_transition(event.a);
      break;
    }
    case FaultKind::Restart: {
      NodeState& node = state(event.a);
      node.down = false;
      node.down_by_schedule = false;
      on_node_transition(event.a);
      break;
    }
  }
  ++*faults_applied_;
}

void Network::set_extra_latency(common::NodeId from, common::NodeId to,
                                common::SimDuration extra) {
  require_config_window("set_extra_latency");
  if (sharded_ != nullptr && extra < 0) {
    // Negative "extra" would undercut the conservative lookahead the
    // construction-time check validated; ShardedSim::post would reject
    // the send mid-run anyway — fail at configuration time instead.
    throw common::MageError(
        "negative extra link latency is not allowed on a sharded network "
        "(it would undercut the conservative lookahead)");
  }
  extra_latency_[{from, to}] = extra;
}

void Network::set_load(common::NodeId node, double load) {
  state(node).load = load;
}

double Network::load(common::NodeId node) const { return state(node).load; }

void Network::on_node_transition(common::NodeId node) {
  // The crashed (or restarting) process loses its wire state: every link
  // it touches becomes a new incarnation, and its own FIFO counters reset
  // — a restarted sender starts stamping from 1 again, and the bumped
  // epoch tells every receiver to reset its expectation rather than flag
  // spurious fifo_violations.  No timing impact: none of this state feeds
  // delay computation.  Runs only with faults frozen (driver / boundary
  // hook), so touching foreign-node maps here is safe.
  for (std::uint32_t i = 1; i <= nodes_.size(); ++i) {
    const common::NodeId other{i};
    if (other == node) continue;
    ++link_epochs_[ordered_pair(node, other)];
  }
  NodeState& self = state(node);
  self.next_wire_seq_to.clear();
  self.last_wire_seq_from.clear();
  self.last_wire_epoch_from.clear();
}

void Network::set_node_down(common::NodeId node, bool down) {
  require_fault_window("set_node_down");
  if (state(node).down == down) return;
  state(node).down = down;
  state(node).down_by_schedule = false;
  on_node_transition(node);
}

bool Network::node_down(common::NodeId node) const {
  return state(node).down;
}

void Network::set_domain(common::NodeId node, std::string domain) {
  require_config_window("set_domain");
  state(node).domain = std::move(domain);
}

const std::string& Network::domain(common::NodeId node) const {
  return state(node).domain;
}

void Network::set_tracing(bool enabled) {
  if (enabled && sharded_ != nullptr) {
    throw common::MageError(
        "message tracing is driver-mode only: sharded workers would "
        "interleave the trace stream");
  }
  tracing_ = enabled;
}

void Network::reset_connections() {
  require_config_window("reset_connections");
  warm_connections_.clear();
  for (auto& node : nodes_) node.warm_to.clear();
}

}  // namespace mage::net
