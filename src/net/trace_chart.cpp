#include "net/trace_chart.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/time.hpp"

namespace mage::net {
namespace {

std::size_t lane_of(const std::vector<common::NodeId>& participants,
                    common::NodeId node) {
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (participants[i] == node) return i;
  }
  return participants.size();
}

}  // namespace

std::string render_sequence_chart(
    const Network& network, const std::vector<TraceEntry>& trace,
    const std::vector<common::NodeId>& participants,
    const TraceChartOptions& options) {
  const std::size_t width = options.column_width;
  std::ostringstream os;

  // Header: participant labels centred over their lifelines.
  const std::size_t time_pad = options.show_times ? 12 : 0;
  os << std::string(time_pad, ' ');
  for (auto node : participants) {
    std::string label = network.label(node);
    if (label.size() > width - 2) label.resize(width - 2);
    const std::size_t left = (width - label.size()) / 2;
    os << std::string(left, ' ') << label
       << std::string(width - left - label.size(), ' ');
  }
  os << "\n";

  auto lifeline_row = [&](std::ostringstream& row) {
    row << std::string(time_pad, ' ');
    for (std::size_t i = 0; i < participants.size(); ++i) {
      row << std::string(width / 2, ' ') << '|'
          << std::string(width - width / 2 - 1, ' ');
    }
  };

  for (const auto& entry : trace) {
    if (entry.dropped && !options.include_drops) continue;
    const bool is_reply =
        entry.verb.find(".reply") != std::string::npos ||
        (entry.verb.size() > 3 &&
         entry.verb.compare(entry.verb.size() - 3, 3, ".re") == 0);
    if (is_reply && !options.include_replies) continue;

    const std::size_t from = lane_of(participants, entry.from);
    const std::size_t to = lane_of(participants, entry.to);
    if (from >= participants.size() || to >= participants.size()) continue;
    if (from == to) continue;  // loopback: no arrow to draw

    std::ostringstream row;
    lifeline_row(row);
    std::string line = row.str();

    const std::size_t from_col = time_pad + from * width + width / 2;
    const std::size_t to_col = time_pad + to * width + width / 2;
    const std::size_t lo = std::min(from_col, to_col);
    const std::size_t hi = std::max(from_col, to_col);

    // Arrow body between the two lifelines.
    for (std::size_t c = lo + 1; c < hi; ++c) line[c] = '-';
    if (to_col > from_col) {
      line[hi - 1] = '>';
    } else {
      line[lo + 1] = '<';
    }

    // Label: the verb (and X for drops), centred on the arrow.
    std::string label = entry.verb;
    if (entry.dropped) label += " [LOST]";
    if (label.size() > hi - lo - 3 && hi - lo > 6) {
      label.resize(hi - lo - 3);
    }
    const std::size_t label_start = lo + 1 + ((hi - lo - 1) - label.size()) / 2;
    for (std::size_t i = 0;
         i < label.size() && label_start + i < line.size(); ++i) {
      line[label_start + i] = label[i];
    }

    if (options.show_times) {
      std::ostringstream stamp;
      stamp << std::fixed << std::setprecision(1)
            << common::to_ms(entry.sent_at) << "ms";
      std::string s = stamp.str();
      if (s.size() > time_pad - 1) s.resize(time_pad - 1);
      for (std::size_t i = 0; i < s.size(); ++i) line[i] = s[i];
    }
    os << line << "\n";
  }
  return os.str();
}

}  // namespace mage::net
