#include "net/message.hpp"

namespace mage::net {

std::string Message::label() const {
  const std::string& name = common::verb_name(verb);
  switch (kind) {
    case MsgKind::Reply:
      return name + ".reply";
    case MsgKind::ReplyDup:
      return name + ".re";
    case MsgKind::OneWay:
      return name + ".oneway";
    case MsgKind::Batch:
      return name;  // the batch verb ("rmi.batch") is already distinct
    case MsgKind::Request:
    default:
      return name;
  }
}

}  // namespace mage::net
