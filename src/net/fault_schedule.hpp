// Scheduled fault injection: a time-ordered program of fault events the
// Network applies while a simulation runs.
//
// Ad-hoc fault mutation (`set_loss_rate`, `set_partitioned`, ...) is
// driver-only and frozen while sharded workers run — a worker observing a
// half-applied fault config would break both the threading contract and
// determinism.  A FaultSchedule closes that gap: the driver builds the
// whole fault program up front (loss-rate ramps, loss bursts, per-link
// partitions and heals, node crash/restart), installs it with
// `Network::set_fault_schedule`, and the network applies due entries
// atomically —
//
//   * driver mode: at each entry's exact simulated time, as an ordinary
//     (non-waking) event on the driver simulation;
//   * sharded mode: at ShardedSim window boundaries, inside the barrier
//     with every worker parked.  An entry takes effect at the first window
//     whose start time (the conservative frontier) is >= the entry's
//     nominal time.  Window boundaries are a pure function of event
//     timestamps, so the quantization — and therefore every loss decision,
//     drop, and retransmission downstream of it — is bit-identical at any
//     worker-thread count.  One seed replays the whole chaos run.
//
// Entries at equal times apply in insertion order (stable sort).  The
// builder is value-semantic: build once, install on a network (or several
// runs' networks) freely.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace mage::net {

enum class FaultKind : std::uint8_t {
  LossRate,   // set the IID loss probability to `loss_rate`
  LinkLoss,   // set the IID loss probability of the directed link a -> b
  Partition,  // cut both directions between nodes `a` and `b`
  Heal,       // restore the (a, b) link
  Crash,      // take node `a` down (messages to/from it are dropped)
  Restart,    // bring node `a` back up
};

struct FaultEvent {
  common::SimTime at = 0;
  FaultKind kind = FaultKind::LossRate;
  double loss_rate = 0.0;           // LossRate/LinkLoss only
  common::NodeId a;                 // link endpoint / sender, Crash/Restart node
  common::NodeId b;                 // link endpoint / receiver
};

class FaultSchedule {
 public:
  // Sets the IID message-loss probability from `at` onward.
  FaultSchedule& loss_rate(common::SimTime at, double p);

  // Loss burst: rate `p` during [at, at + duration), then back to the base
  // rate — the rate set by the most recent `loss_rate()` call on this
  // builder (0 when none), evaluated at build time.
  FaultSchedule& loss_burst(common::SimTime at, double p,
                            common::SimDuration duration);

  // Per-link loss: sets the IID loss probability of the DIRECTED link
  // from -> to from `at` onward, layered on top of the global rate (a
  // message first survives the global draw, then the link draw).  Model
  // one flaky NIC or an asymmetric WAN path without touching the rest of
  // the mesh.
  FaultSchedule& link_loss_rate(common::SimTime at, common::NodeId from,
                                common::NodeId to, double p);

  // Per-link loss burst: rate `p` on from -> to during [at, at + duration),
  // then back to that link's base rate — the rate set by the most recent
  // `link_loss_rate()` call for the same directed link (0 when none),
  // evaluated at build time.
  FaultSchedule& link_loss_burst(common::SimTime at, common::NodeId from,
                                 common::NodeId to, double p,
                                 common::SimDuration duration);

  // Cuts / restores both directions between a and b at `at`.
  FaultSchedule& partition(common::SimTime at, common::NodeId a,
                           common::NodeId b);
  FaultSchedule& heal(common::SimTime at, common::NodeId a, common::NodeId b);

  // Convenience: partition at `at`, heal at `at + duration`.
  FaultSchedule& partition_for(common::SimTime at, common::NodeId a,
                               common::NodeId b, common::SimDuration duration);

  // Crashes node at `at` / restarts it.  While down every message to or
  // from the node is dropped; its objects survive in memory (the simulated
  // "reboot with memory intact" — MAGE has no replication).
  FaultSchedule& crash(common::SimTime at, common::NodeId node);
  FaultSchedule& restart(common::SimTime at, common::NodeId node);

  // Convenience: crash at `at`, restart at `at + duration`.
  FaultSchedule& crash_for(common::SimTime at, common::NodeId node,
                           common::SimDuration duration);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  // Entries sorted by time, ties in insertion order — the order the
  // network applies them in.
  [[nodiscard]] std::vector<FaultEvent> sorted() const;

 private:
  std::vector<FaultEvent> events_;
  double base_loss_ = 0.0;  // last loss_rate(), restored after bursts
  // Last link_loss_rate() per directed link, restored after link bursts.
  std::map<std::pair<common::NodeId, common::NodeId>, double> base_link_loss_;
};

}  // namespace mage::net
