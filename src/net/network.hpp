// Simulated network connecting MAGE namespaces.
//
// Responsibilities:
//   * node table: each cooperating VM registers and installs a message
//     handler (the MAGE server's dispatch entry point);
//   * delivery timing from the CostModel: propagation + serialization onto
//     a shared-medium wire + receive CPU, plus one-time connection setup
//     per (from, to) pair (models TCP/RMI handshake and explains the
//     paper's cold-vs-warm split in Table 3);
//   * in-order delivery per directed link (TCP semantics);
//   * fault injection: IID message loss, per-link partitions and node
//     crashes, used by the at-most-once RMI tests ("protocols must recover
//     from message loss", Section 4.3) — mutable ad-hoc while stopped, or
//     mid-run through a scheduled net::FaultSchedule applied atomically at
//     sharded window boundaries (see net/fault_schedule.hpp);
//   * tracing: optional per-message trace that benches turn into the
//     paper's protocol figures;
//   * a per-node load metric for load-directed mobility policies
//     (the paper's `cloc.getLoad()`).
//
// Execution modes.  A Network runs over either
//   * one driver sim::Simulation (the classic single-core mode: every node
//     shares the queue, clock, RNG and stats registry), or
//   * a sim::ShardedSim (multi-core mode): each node lives on the shard the
//     node:shard mapping assigns it (identity — node i on shard i — by
//     default; pass an affinity mapping to cluster chatty nodes, see
//     net/affinity.hpp).  Delivery between co-located nodes is scheduled
//     directly into the shared shard queue; cross-shard delivery is posted
//     through the per-link mailboxes, and every cross-shard delay is >= the
//     shard pair's lookahead matrix entry (refresh_pair_lookaheads derives
//     the matrix from the cost model + per-link extra latency, so a WAN hop
//     widens its shards' conservative windows).  Message TIMING is
//     identical either way — the mapping changes which mechanism carries a
//     message, never when it arrives — and deliveries carry their source
//     node id as the event-queue tie key, so per-node event order is
//     bit-identical under any mapping and any worker count.
// The threading contract in sharded mode (enforced, not advisory): all
// configuration — adding nodes, handlers, fault injection, tracing — is
// driver-only and throws while workers run; per-node state (counters,
// connection warmth, ordering floors, the loss RNG, the load metric) is
// only ever touched from the owning node's shard.  See
// docs/ARCHITECTURE.md.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/cost_model.hpp"
#include "net/fault_schedule.hpp"
#include "net/message.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"

namespace mage::net {

class Network {
 public:
  using Handler = std::function<void(Message)>;

  // Driver mode: all nodes share `sim`.
  Network(sim::Simulation& sim, CostModel model);

  // Sharded mode.  `node_to_shard` maps node i (the i-th add_node, NodeId
  // i+1) to its shard; at most node_to_shard.size() nodes may be added.
  // Empty (the default) means the identity mapping — node i on shard i,
  // capacity sharded.shard_count().  Build a clustering mapping with
  // net::affinity_mapping().  Requires the model's minimum cross-node
  // delay to cover the sharded base lookahead (checked at construction).
  Network(sim::ShardedSim& sharded, CostModel model,
          std::vector<std::size_t> node_to_shard = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Uninstalls this network's ShardedSim boundary hook, if one was set.
  ~Network();

  // --- topology -------------------------------------------------------

  // Adds a namespace/VM to the federation; label is for traces only.
  common::NodeId add_node(std::string label);

  void set_handler(common::NodeId node, Handler handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& label(common::NodeId node) const;
  [[nodiscard]] std::vector<common::NodeId> node_ids() const;

  // --- traffic ----------------------------------------------------------

  // Sends msg; delivery is scheduled on the simulation.  A message to the
  // sender's own node is delivered after local_invoke_us with no wire cost
  // and is never dropped (loopback).  In sharded mode this must run on the
  // sending node's shard (true by construction: sends originate from
  // transports, whose events run on their own shard).
  void send(Message msg);

  // --- fault injection --------------------------------------------------
  //
  // The ad-hoc mutators below are driver-only and frozen while sharded
  // workers run (they throw, pointing at FaultSchedule).  To change faults
  // MID-RUN, install a FaultSchedule: the network applies its entries
  // atomically — at each entry's exact time in driver mode, at window
  // boundaries (workers parked) in sharded mode — so one seed replays the
  // whole chaos run bit-identically at any worker count.

  // IID probability that a non-loopback message is dropped in flight.
  void set_loss_rate(double p);

  // IID loss probability for the DIRECTED link from -> to, layered on top
  // of the global rate (a message must survive both draws).  0 removes the
  // per-link rate.
  void set_link_loss_rate(common::NodeId from, common::NodeId to, double p);
  [[nodiscard]] double link_loss_rate(common::NodeId from,
                                      common::NodeId to) const;

  // Provenance: messages dropped by the per-link loss rate on the directed
  // link from -> to.  Driver-only read (while stopped) in sharded mode.
  [[nodiscard]] std::int64_t link_loss_drops(common::NodeId from,
                                             common::NodeId to) const;

  // Cuts / restores both directions between a and b.
  void set_partitioned(common::NodeId a, common::NodeId b, bool partitioned);

  // Crashes / restarts a node: while down, every message to or from it is
  // dropped (its hosted objects are lost to the federation until restart —
  // MAGE has no replication; callers see timeouts and forwarding chains
  // pointing into the void).
  void set_node_down(common::NodeId node, bool down);
  [[nodiscard]] bool node_down(common::NodeId node) const;

  // Installs `schedule` (replacing any previous one, applied or not).
  // Driver-only while stopped; entries referencing unknown nodes throw.
  // Applied-by-schedule faults are additionally accounted in the
  // "net.faults_applied" counter (driver registry / shard 0) and drops
  // they cause in the per-node "net.messages_dropped_by_schedule".
  void set_fault_schedule(FaultSchedule schedule);

  // Entries not yet applied (introspection for tests/benches).
  [[nodiscard]] std::size_t pending_fault_events() const {
    return fault_events_.size() - next_fault_;
  }

  // Number of transitions applied to the (a, b) link, by schedule or
  // ad-hoc mutator — each cut and each heal bumps the epoch, as does each
  // crash and each restart of either endpoint (a restarted node's wire
  // state is gone, so its links are new incarnations).  Driver-only read
  // (while stopped) in sharded mode.
  [[nodiscard]] std::int64_t link_epoch(common::NodeId a,
                                        common::NodeId b) const;

  // Wire-FIFO self-check: when enabled, every non-loopback message is
  // stamped with a per-directed-link sequence number at send (sender-owned
  // state) and verified monotonic at delivery (receiver-owned state);
  // violations bump the receiver's "net.fifo_violations" counter.  Off by
  // default (two map touches per message); the chaos harness turns it on
  // to assert per-link FIFO holds across partition heals.  Driver-only.
  void set_fifo_checks(bool on);
  [[nodiscard]] bool fifo_checks() const { return fifo_checks_; }

  // Extra one-way latency for a directed link (e.g. a WAN hop).
  void set_extra_latency(common::NodeId from, common::NodeId to,
                         common::SimDuration extra);

  // --- load metric --------------------------------------------------------

  // Contract: in sharded mode, call from the driver while stopped or from
  // the owning node's shard; reading another node's load mid-run is what
  // the `mage.get_load` RMI verb is for.
  void set_load(common::NodeId node, double load);
  [[nodiscard]] double load(common::NodeId node) const;

  // --- administrative domains ------------------------------------------------

  // Assigns the node to a named administrative domain (Section 7's WAN
  // vision: "competing and disjoint administrative domains").  Empty by
  // default; access-control policies may key on it.
  void set_domain(common::NodeId node, std::string domain);
  [[nodiscard]] const std::string& domain(common::NodeId node) const;

  // --- introspection -----------------------------------------------------

  [[nodiscard]] const CostModel& cost_model() const { return model_; }

  // Driver mode only (the trace is a single ordered stream; sharded
  // workers would interleave it): throws in sharded mode.
  void set_tracing(bool enabled);
  [[nodiscard]] const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  // Forgets all warm connections, so the next message on every pair pays
  // connection setup again (benches use this between "single" runs).
  void reset_connections();

  // The driver simulation; throws in sharded mode (there is no single
  // universe — use node_sim()).
  [[nodiscard]] sim::Simulation& simulation();

  // The simulation context a node's events run on: the shared driver sim
  // in driver mode, the node's shard in sharded mode.
  [[nodiscard]] sim::Simulation& node_sim(common::NodeId node);

  [[nodiscard]] bool is_sharded() const { return sharded_ != nullptr; }
  [[nodiscard]] sim::ShardedSim* sharded() { return sharded_; }

  // The shard a node's events run on (sharded mode; throws in driver mode).
  [[nodiscard]] std::size_t shard_of(common::NodeId node) const;

  // Recomputes the ShardedSim pair-lookahead matrix from the cost model,
  // the per-link extra latencies and the node:shard mapping: entry (p, q)
  // becomes the minimum delay any message from a node on p to a node on q
  // can experience (min_link_latency + the smallest extra latency among
  // those directed links).  Call after configuring extra latencies and
  // before running; ends by validating the installed matrix (below).
  // Driver-only; a no-op in driver mode.
  void refresh_pair_lookaheads();

  // Checks the installed matrix against this network: every entry must be
  // >= 1 simulated microsecond and no cross-shard directed link may be
  // able to deliver faster than its shard pair's entry claims — a matrix
  // that over-promises would make ShardedSim::post throw mid-window (or,
  // unchecked, corrupt the conservative bound).  Throws naming the
  // offending link.  Driver-only; a no-op in driver mode.
  void validate_pair_lookaheads() const;

  // The minimum delay any cross-node message can experience under `model`
  // — the conservative lookahead a ShardedSim driving this network must
  // use.  (Connection setup, wire time, extra link latency and ordering
  // floors only ever add on top.)
  [[nodiscard]] static common::SimDuration min_link_latency(
      const CostModel& model) {
    return model.propagation_us + model.per_message_cpu_us;
  }

 private:
  struct NodeState {
    std::string label;
    Handler handler;
    double load = 0.0;
    std::string domain;
    bool down = false;
    // Per TCP ordering: no message on a directed link may be delivered
    // before one sent earlier on the same link.  Owned by the SENDER (only
    // sends on the (this, to) link ever touch floor[to]), which is what
    // lets sharded workers apply floors without touching foreign state.
    std::map<common::NodeId, common::SimTime> earliest_delivery_to;
    // Sharded mode: directed warm links (each direction pays connection
    // setup once).  Driver mode uses the shared unordered-pair set below,
    // matching real TCP connection reuse in both directions.
    std::set<common::NodeId> warm_to;
    // Crash state: `down` is the effective flag; `down_by_schedule` records
    // whether the current down state was installed by the fault schedule
    // (provenance for the messages_dropped_by_schedule counter).
    bool down_by_schedule = false;
    // Wire-FIFO self-check state (only touched when fifo_checks_ is on):
    // next_wire_seq_to is sender-owned, last_wire_seq_from receiver-owned —
    // same shard-ownership split as the ordering floors.
    std::map<common::NodeId, std::uint64_t> next_wire_seq_to;
    std::map<common::NodeId, std::uint64_t> last_wire_seq_from;
    // Link epoch the receiver last saw per sender; a change resets the
    // expected wire_seq (the peer's counters restarted across a crash).
    std::map<common::NodeId, std::int64_t> last_wire_epoch_from;
    // Per-link loss provenance, sender-owned (plain ints, not registry
    // counters: the key space is dynamic).
    std::map<common::NodeId, std::int64_t> link_loss_drops_to;
    // Sharded mode: loss draws come from this per-NODE stream (seeded from
    // the ShardedSim seed + the node id at add_node) rather than the shard
    // RNG, so a node's drop pattern is a function of its own send sequence
    // — identical under any node:shard mapping, which a shared shard
    // stream could not be once two senders co-locate.  Driver mode keeps
    // drawing from the shared driver RNG.
    common::Rng loss_rng{0};
    // Hot-path counters, resolved from the node's own stats registry at
    // add_node (per-shard registries in sharded mode; all handles alias
    // the same slots in driver mode).
    std::int64_t* messages_sent = nullptr;
    std::int64_t* bytes_sent = nullptr;
    std::int64_t* messages_dropped = nullptr;
    std::int64_t* messages_delivered = nullptr;
    std::int64_t* connections_opened = nullptr;
    std::int64_t* messages_dropped_by_schedule = nullptr;
    std::int64_t* messages_dropped_by_link_loss = nullptr;
    std::int64_t* fifo_violations = nullptr;
  };

  [[nodiscard]] NodeState& state(common::NodeId node);
  [[nodiscard]] const NodeState& state(common::NodeId node) const;

  // Throws while sharded workers run: all global configuration is frozen.
  void require_config_window(const char* what) const;
  // Same freeze, but for the ad-hoc fault mutators: the error points at
  // FaultSchedule, the supported way to mutate faults mid-run.
  void require_fault_window(const char* what) const;

  // Applies every schedule entry with at <= now, in order.  Driver mode:
  // runs as ordinary simulation events.  Sharded mode: runs as the
  // ShardedSim boundary hook, every worker parked.
  void apply_due_faults(common::SimTime now);
  void apply_fault(const FaultEvent& event);
  // Crash/restart epoch discipline: every link incident to `node` becomes a
  // new incarnation, and the node's own wire-FIFO state is forgotten (a
  // fresh process restarts its sequence counters).
  void on_node_transition(common::NodeId node);
  // Cancels driver-mode applier events that have not fired yet.
  void cancel_fault_appliers();

  sim::Simulation* driver_sim_ = nullptr;
  sim::ShardedSim* sharded_ = nullptr;
  CostModel model_;
  // Sharded mode: shard_map_[i] is node i+1's shard; its size is the node
  // capacity.  Identity unless a mapping was passed at construction.
  std::vector<std::size_t> shard_map_;
  std::vector<NodeState> nodes_;
  std::set<std::pair<common::NodeId, common::NodeId>> warm_connections_;
  std::set<std::pair<common::NodeId, common::NodeId>> partitions_;
  std::map<std::pair<common::NodeId, common::NodeId>, common::SimDuration>
      extra_latency_;
  double loss_rate_ = 0.0;
  // Per-directed-link loss rates.  Mutated only from the driver while
  // stopped or at window boundaries (workers parked); read from sender
  // shards mid-run — same discipline as partitions_.
  std::map<std::pair<common::NodeId, common::NodeId>, double> link_loss_;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;

  // --- scheduled fault state ------------------------------------------------
  std::vector<FaultEvent> fault_events_;  // sorted; applied prefix < next_fault_
  std::size_t next_fault_ = 0;
  // Driver mode: pending applier events, cancelled on schedule replacement
  // and in the destructor (they capture `this`).
  std::vector<sim::EventId> fault_applier_events_;
  bool hook_installed_ = false;
  // Provenance: was the current loss rate / this partition / this crash
  // installed by the schedule?  Drops they cause are double-counted into
  // messages_dropped_by_schedule.
  bool loss_from_schedule_ = false;
  std::set<std::pair<common::NodeId, common::NodeId>> scheduled_partitions_;
  // Directed links whose current per-link loss rate came from the schedule.
  std::set<std::pair<common::NodeId, common::NodeId>> scheduled_link_loss_;
  // Link-transition count per unordered link (partition/heal/crash/restart).
  std::map<std::pair<common::NodeId, common::NodeId>, std::int64_t>
      link_epochs_;
  std::int64_t* faults_applied_ = nullptr;  // driver / shard-0 registry
  bool fifo_checks_ = false;
};

}  // namespace mage::net
