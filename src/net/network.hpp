// Simulated network connecting MAGE namespaces.
//
// Responsibilities:
//   * node table: each cooperating VM registers and installs a message
//     handler (the MAGE server's dispatch entry point);
//   * delivery timing from the CostModel: propagation + serialization onto
//     a shared-medium wire + receive CPU, plus one-time connection setup
//     per (from, to) pair (models TCP/RMI handshake and explains the
//     paper's cold-vs-warm split in Table 3);
//   * in-order delivery per directed link (TCP semantics);
//   * fault injection: IID message loss and per-link partitions, used by
//     the at-most-once RMI tests ("protocols must recover from message
//     loss", Section 4.3);
//   * tracing: optional per-message trace that benches turn into the
//     paper's protocol figures;
//   * a per-node load metric for load-directed mobility policies
//     (the paper's `cloc.getLoad()`).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "net/cost_model.hpp"
#include "net/message.hpp"
#include "sim/simulation.hpp"

namespace mage::net {

class Network {
 public:
  using Handler = std::function<void(Message)>;

  Network(sim::Simulation& sim, CostModel model);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -------------------------------------------------------

  // Adds a namespace/VM to the federation; label is for traces only.
  common::NodeId add_node(std::string label);

  void set_handler(common::NodeId node, Handler handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& label(common::NodeId node) const;
  [[nodiscard]] std::vector<common::NodeId> node_ids() const;

  // --- traffic ----------------------------------------------------------

  // Sends msg; delivery is scheduled on the simulation.  A message to the
  // sender's own node is delivered after local_invoke_us with no wire cost
  // and is never dropped (loopback).
  void send(Message msg);

  // --- fault injection --------------------------------------------------

  // IID probability that a non-loopback message is dropped in flight.
  void set_loss_rate(double p) { loss_rate_ = p; }

  // Cuts / restores both directions between a and b.
  void set_partitioned(common::NodeId a, common::NodeId b, bool partitioned);

  // Crashes / restarts a node: while down, every message to or from it is
  // dropped (its hosted objects are lost to the federation until restart —
  // MAGE has no replication; callers see timeouts and forwarding chains
  // pointing into the void).
  void set_node_down(common::NodeId node, bool down);
  [[nodiscard]] bool node_down(common::NodeId node) const;

  // Extra one-way latency for a directed link (e.g. a WAN hop).
  void set_extra_latency(common::NodeId from, common::NodeId to,
                         common::SimDuration extra);

  // --- load metric --------------------------------------------------------

  void set_load(common::NodeId node, double load);
  [[nodiscard]] double load(common::NodeId node) const;

  // --- administrative domains ------------------------------------------------

  // Assigns the node to a named administrative domain (Section 7's WAN
  // vision: "competing and disjoint administrative domains").  Empty by
  // default; access-control policies may key on it.
  void set_domain(common::NodeId node, std::string domain);
  [[nodiscard]] const std::string& domain(common::NodeId node) const;

  // --- introspection -----------------------------------------------------

  [[nodiscard]] const CostModel& cost_model() const { return model_; }

  void set_tracing(bool enabled) { tracing_ = enabled; }
  [[nodiscard]] const std::vector<TraceEntry>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  // Forgets all warm connections, so the next message on every pair pays
  // connection setup again (benches use this between "single" runs).
  void reset_connections() { warm_connections_.clear(); }

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  struct NodeState {
    std::string label;
    Handler handler;
    double load = 0.0;
    std::string domain;
    bool down = false;
    // Per TCP ordering: no message on a directed link may be delivered
    // before one sent earlier on the same link.
    std::map<common::NodeId, common::SimTime> earliest_delivery_from;
  };

  [[nodiscard]] NodeState& state(common::NodeId node);
  [[nodiscard]] const NodeState& state(common::NodeId node) const;

  sim::Simulation& sim_;
  CostModel model_;
  // Hot-path counters, resolved once (see StatsRegistry::counter_handle).
  std::int64_t* messages_sent_;
  std::int64_t* bytes_sent_;
  std::int64_t* messages_dropped_;
  std::int64_t* messages_delivered_;
  std::int64_t* connections_opened_;
  std::vector<NodeState> nodes_;
  std::set<std::pair<common::NodeId, common::NodeId>> warm_connections_;
  std::set<std::pair<common::NodeId, common::NodeId>> partitions_;
  std::map<std::pair<common::NodeId, common::NodeId>, common::SimDuration>
      extra_latency_;
  double loss_rate_ = 0.0;
  bool tracing_ = false;
  std::vector<TraceEntry> trace_;
};

}  // namespace mage::net
