// Wire message: the unit the simulated network delivers between namespaces.
//
// The payload is opaque to the network; upper layers (src/rmi) serialize
// envelopes into it.  `verb` duplicates the envelope's operation name purely
// for tracing and stats — benches reconstruct the paper's protocol figures
// (Figure 1, Figure 7) from the sequence of verbs on the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace mage::net {

// Fixed per-message framing overhead charged by the cost model
// (Ethernet + IP + TCP headers plus RMI stream framing).
inline constexpr std::size_t kHeaderBytes = 96;

struct Message {
  common::NodeId from;
  common::NodeId to;
  std::string verb;                   // operation name, for tracing only
  std::vector<std::uint8_t> payload;  // serialized envelope

  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kHeaderBytes;
  }
};

// One entry of the network's message trace (enabled on demand; benches use
// it to print protocol diagrams).
struct TraceEntry {
  common::SimTime sent_at;
  common::SimTime delivered_at;  // -1 when dropped
  common::NodeId from;
  common::NodeId to;
  std::string verb;
  std::size_t wire_size;
  bool dropped;
};

}  // namespace mage::net
