// Wire message: the unit the simulated network delivers between namespaces.
//
// The payload is opaque to the network; upper layers (src/rmi) serialize
// envelopes into it.  Scatter-gather framing: `header` carries the envelope
// framing bytes as one ref-counted serial::Buffer and `body` the
// application payload as a serial::BufferChain fragment list — so
// forwarding a message never copies payload bytes (the wire-equivalent
// byte stream is header ++ the concatenated fragments).
//
// `verb` + `kind` duplicate the envelope's operation purely for tracing and
// stats — benches reconstruct the paper's protocol figures (Figure 1,
// Figure 7) from the sequence of verbs on the wire.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/verb.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"

namespace mage::net {

// Fixed per-message framing overhead charged by the cost model
// (Ethernet + IP + TCP headers plus RMI stream framing).
inline constexpr std::size_t kHeaderBytes = 96;

// What a message is, for trace labels: requests print the verb, replies
// "<verb>.reply", duplicate-suppression re-sends "<verb>.re", one-way
// (no-reply) requests "<verb>.oneway", and batch frames the batch verb
// itself (the sub-envelope verbs live inside the frame).
enum class MsgKind : std::uint8_t {
  Request = 0,
  Reply = 1,
  ReplyDup = 2,
  OneWay = 3,
  Batch = 4,
};

struct Message {
  common::NodeId from;
  common::NodeId to;
  common::VerbId verb;   // operation name, for tracing only
  MsgKind kind = MsgKind::Request;
  serial::Buffer header;      // envelope framing
  serial::BufferChain body;   // application payload fragments
  // Per-directed-link delivery stamp, assigned by the network when its
  // wire-FIFO self-check is enabled (Network::set_fifo_checks); 0 = not
  // stamped.  Simulation-side only — never serialized to the wire.
  std::uint64_t wire_seq = 0;
  // Link epoch at send time (crash/restart/partition transitions of the
  // link bump it).  The receiver's FIFO check resets its expected wire_seq
  // when the epoch changes, so a restarted sender — whose seq counters
  // start over — cannot trip a spurious violation.  Simulation-side only.
  std::int64_t link_epoch = 0;

  [[nodiscard]] std::size_t payload_size() const {
    return header.size() + body.size();
  }
  [[nodiscard]] std::size_t wire_size() const {
    return payload_size() + kHeaderBytes;
  }

  // Trace/debug label: the verb name plus the kind suffix.
  [[nodiscard]] std::string label() const;
};

// One entry of the network's message trace (enabled on demand; benches use
// it to print protocol diagrams).
struct TraceEntry {
  common::SimTime sent_at;
  common::SimTime delivered_at;  // -1 when dropped
  common::NodeId from;
  common::NodeId to;
  std::string verb;
  std::size_t wire_size;
  bool dropped;
};

}  // namespace mage::net
