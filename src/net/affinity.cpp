#include "net/affinity.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/error.hpp"

namespace mage::net {
namespace {

// Union-find with path halving; find also returns the group size through
// the parallel size_ array indexed by root.
std::size_t find_root(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

std::vector<std::size_t> affinity_mapping(std::size_t node_count,
                                          std::size_t shard_count,
                                          std::vector<AffinityEdge> edges) {
  if (shard_count == 0) {
    throw common::MageError("affinity_mapping: shard_count must be >= 1");
  }
  for (const AffinityEdge& e : edges) {
    if (e.a >= node_count || e.b >= node_count) {
      throw common::MageError(
          "affinity_mapping: edge (" + std::to_string(e.a) + ", " +
          std::to_string(e.b) + ") references a node >= node_count " +
          std::to_string(node_count));
    }
  }
  const std::size_t capacity =
      shard_count >= node_count ? 1
                                : (node_count + shard_count - 1) / shard_count;

  // Heaviest edges first; full tie order makes the mapping a pure function
  // of the inputs (std::sort is not stable).
  std::sort(edges.begin(), edges.end(),
            [](const AffinityEdge& x, const AffinityEdge& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  std::vector<std::size_t> parent(node_count);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::size_t> size(node_count, 1);
  for (const AffinityEdge& e : edges) {
    if (e.a == e.b) continue;
    const std::size_t ra = find_root(parent, e.a);
    const std::size_t rb = find_root(parent, e.b);
    if (ra == rb || size[ra] + size[rb] > capacity) continue;
    // Deterministic union: the smaller root index becomes the group root.
    const std::size_t root = std::min(ra, rb);
    const std::size_t child = ra + rb - root;
    parent[child] = root;
    size[root] += size[child];
  }

  // Collect groups, largest first (ties by root index), then first-fit
  // each onto the least-loaded shard (ties to the lowest shard index).
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < node_count; ++i) {
    if (find_root(parent, i) == i) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end(), [&](std::size_t x, std::size_t y) {
    if (size[x] != size[y]) return size[x] > size[y];
    return x < y;
  });

  std::vector<std::size_t> load(shard_count, 0);
  std::vector<std::size_t> group_shard(node_count, 0);
  for (const std::size_t root : roots) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[best]) best = s;
    }
    group_shard[root] = best;
    load[best] += size[root];
  }

  std::vector<std::size_t> mapping(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    mapping[i] = group_shard[find_root(parent, i)];
  }
  return mapping;
}

}  // namespace mage::net
