// Affinity-aware node:shard mapping.
//
// The sharded engine pays for cross-shard traffic twice: every message
// crosses a mailbox and waits for a window boundary, and the busiest
// cross-shard link's lookahead bounds how wide windows can be.  Traffic
// between nodes that SHARE a shard costs neither — it is scheduled
// directly into the common event queue and does not constrain the
// lookahead matrix at all.  So the mapping question is a graph-clustering
// one: place chatty node pairs together, keep only quiet (ideally
// high-latency) links on the shard boundary.
//
// affinity_mapping() is a deterministic greedy clusterer over a weighted
// communication graph (weights are expected message counts or rates; the
// caller knows its workload — e.g. bench_storm knows each site's nodes
// talk all-to-all inside the site and only site leaders talk across).  It
// is heuristic bin-packing, not an optimal partitioner — good enough to
// turn a "nodes 2k and 2k+1 exchange 500 calls" workload into zero
// cross-shard messages, which is what the scaling benches exercise.
#pragma once

#include <cstddef>
#include <vector>

namespace mage::net {

// One weighted, undirected communication edge between two nodes, 0-based
// (node i here is the i-th add_node call, NodeId i+1).
struct AffinityEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double weight = 1.0;
};

// Returns a node -> shard assignment (size node_count, entries in
// [0, shard_count)) that greedily clusters heavy edges subject to a
// per-shard capacity of ceil(node_count / shard_count) nodes:
//   1. sort edges by weight descending (ties by endpoint indices, so the
//      result is a pure function of the inputs);
//   2. union the endpoints' groups when the merged group still fits the
//      capacity;
//   3. assign groups to shards largest-first, each onto the currently
//      least-loaded shard (ties to the lowest shard index).
// Throws common::MageError on shard_count == 0 or an edge endpoint out of
// range.  Self-edges are ignored.
std::vector<std::size_t> affinity_mapping(std::size_t node_count,
                                          std::size_t shard_count,
                                          std::vector<AffinityEdge> edges);

}  // namespace mage::net
