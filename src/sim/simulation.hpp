// Simulation driver.
//
// One Simulation instance is the "universe" for a MAGE federation: it owns
// simulated time, the event queue, the deterministic RNG, and the stats
// registry every layer records into.
//
// Synchrony model (see DESIGN.md): application code — the "driver" — makes
// synchronous calls (`bind()`, stub invocations).  Internally those calls
// send messages and then run the event loop via run_until(predicate) until
// the reply lands.  Server-side protocol steps never block; they are plain
// event handlers that may send further messages.  This gives the paper's
// synchronous programmer-facing semantics on top of an asynchronous
// message-passing substrate.
#pragma once

#include <functional>
#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace mage::sim {

// Whether a scheduled event is driver-visible: run_until(predicate) only
// re-evaluates its predicate after waking events (or an explicit wake()).
// Library-internal bookkeeping events — wire deliveries, retransmission
// timers, marshalling delays — schedule with Wake::No; the layer that
// eventually invokes user code (a service handler, a call completion
// callback) calls wake() at that boundary.  Driver/test schedules default
// to Wake::Yes, so ad-hoc predicates keep working unchanged.
enum class Wake : bool { No = false, Yes = true };

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 0x6D616765u);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] common::SimTime now() const { return now_; }

  // `tie` orders same-instant events deterministically before insertion
  // order (EventQueue tie key): the network stamps deliveries with their
  // source node id so a node observes equal-time arrivals in source order
  // regardless of the node:shard mapping or engine mode.  Ordinary events
  // leave it 0 and run before any same-instant delivery.
  EventId schedule_at(common::SimTime at, EventQueue::Action action,
                      Wake wake = Wake::Yes, std::uint32_t tie = 0);
  EventId schedule_after(common::SimDuration delay, EventQueue::Action action,
                         Wake wake = Wake::Yes, std::uint32_t tie = 0);

  // Cancels a scheduled event; no-op if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Marks the current event as having touched driver-visible state, so an
  // enclosing run_until re-checks its predicate after this event.
  void wake() { woken_ = true; }

  // Runs one pending event; returns false when the queue is empty.
  bool step();

  // Runs events until the queue drains.
  void run_until_idle();

  // Runs events until `done` returns true.  Returns false if the queue
  // drained (or `deadline` passed) before the predicate was satisfied —
  // the caller decides whether that is a timeout error.  The predicate is
  // evaluated only after waking events (completion wakeups), not per event;
  // see enum Wake for the contract.
  bool run_until(const std::function<bool()>& done,
                 common::SimTime deadline = kNoDeadline);

  // Runs events for a fixed span of simulated time, then advances the clock
  // to exactly now()+span even if the queue drained earlier.
  void run_for(common::SimDuration span);

  // --- sharded-execution primitives (see sim/sharded.hpp) -----------------

  // Time of the earliest pending event, or kNoDeadline when the queue is
  // empty.  The sharded driver folds these into the global virtual-time
  // frontier.
  [[nodiscard]] common::SimTime next_event_time() {
    return queue_.empty() ? kNoDeadline : queue_.next_time();
  }

  // Runs every event with time strictly before `end` — this shard's share
  // of one conservative window.  The clock is left at the last executed
  // event's time (not advanced to `end`).  Returns true when any waking
  // event ran, consuming the wake mark; the sharded driver folds the marks
  // and re-checks the driver predicate at the window barrier.
  bool run_window(common::SimTime end);

  // --- wake-contract checking ----------------------------------------------

  // When enabled, run_until additionally evaluates its predicate after
  // every NON-waking event.  A predicate that flips true there exposes a
  // mis-marked event: some layer ran user-visible code under Wake::No and
  // forgot its wake() call, so the caller would have stalled until the
  // drain-time re-check (or the next unrelated wakeup).  Violations bump
  // the "sim.wake_contract_violations" counter and log one warning per
  // simulation; run_until's observable behaviour is unchanged (the check
  // never returns early), so debug and release runs stay step-identical.
  // Defaults to on in debug builds (!NDEBUG), off in release.
  void set_wake_contract_checks(bool on) { wake_contract_checks_ = on; }
  [[nodiscard]] bool wake_contract_checks() const {
    return wake_contract_checks_;
  }

  [[nodiscard]] common::Rng& rng() { return rng_; }
  [[nodiscard]] common::StatsRegistry& stats() { return stats_; }

  static constexpr common::SimTime kNoDeadline =
      std::numeric_limits<common::SimTime>::max();

 private:
  // Runs one event, folding its wake mark into woken_.
  bool step_event();

  common::SimTime now_ = 0;
  EventQueue queue_;
  common::Rng rng_;
  common::StatsRegistry stats_;
  bool woken_ = false;
#ifdef NDEBUG
  bool wake_contract_checks_ = false;
#else
  bool wake_contract_checks_ = true;
#endif
  bool wake_contract_warned_ = false;
  // Observability: how often run_until actually evaluated predicates vs how
  // many events ran (docs/PERF.md tracks the ratio).
  std::int64_t* predicate_checks_;
  std::int64_t* wakeups_;
  std::int64_t* wake_contract_violations_;
};

}  // namespace mage::sim
