// Simulation driver.
//
// One Simulation instance is the "universe" for a MAGE federation: it owns
// simulated time, the event queue, the deterministic RNG, and the stats
// registry every layer records into.
//
// Synchrony model (see DESIGN.md): application code — the "driver" — makes
// synchronous calls (`bind()`, stub invocations).  Internally those calls
// send messages and then run the event loop via run_until(predicate) until
// the reply lands.  Server-side protocol steps never block; they are plain
// event handlers that may send further messages.  This gives the paper's
// synchronous programmer-facing semantics on top of an asynchronous
// message-passing substrate.
#pragma once

#include <functional>
#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace mage::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 0x6D616765u);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] common::SimTime now() const { return now_; }

  EventId schedule_at(common::SimTime at, EventQueue::Action action);
  EventId schedule_after(common::SimDuration delay, EventQueue::Action action);

  // Cancels a scheduled event; no-op if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs one pending event; returns false when the queue is empty.
  bool step();

  // Runs events until the queue drains.
  void run_until_idle();

  // Runs events until `done` returns true.  Returns false if the queue
  // drained (or `deadline` passed) before the predicate was satisfied —
  // the caller decides whether that is a timeout error.
  bool run_until(const std::function<bool()>& done,
                 common::SimTime deadline = kNoDeadline);

  // Runs events for a fixed span of simulated time, then advances the clock
  // to exactly now()+span even if the queue drained earlier.
  void run_for(common::SimDuration span);

  [[nodiscard]] common::Rng& rng() { return rng_; }
  [[nodiscard]] common::StatsRegistry& stats() { return stats_; }

  static constexpr common::SimTime kNoDeadline =
      std::numeric_limits<common::SimTime>::max();

 private:
  common::SimTime now_ = 0;
  EventQueue queue_;
  common::Rng rng_;
  common::StatsRegistry stats_;
};

}  // namespace mage::sim
