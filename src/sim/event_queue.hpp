// Discrete-event queue with deterministic tie-breaking.
//
// Events scheduled for the same instant fire in (tie, scheduling order):
// an explicit u32 tie key first, then FIFO by a monotonically increasing
// sequence number, so a seed plus a program fully determines a simulation
// run — a property every test in this repository leans on.
//
// The tie key exists for the sharded engine's mapping-independence
// contract: a network delivery is stamped with its SOURCE node id, so two
// messages arriving at one node at the same instant from different peers
// execute in source-node order no matter when (or through which mechanism
// — direct schedule vs. boundary mailbox drain) each was inserted.  Local
// events keep the default tie of 0 and so run before any same-instant
// delivery, matching the classic insertion-order behaviour.
//
// Steady-state scheduling is allocation-free: actions are move-only
// callables with inline storage (common::UniqueFunction) parked in a pooled
// slab of event nodes (free-list reuse), and the heap itself orders small
// POD entries {time, seq, slot} in a plain vector.  The old implementation
// paid one shared_ptr<std::function> heap allocation per event.
//
// Events can be cancelled (schedule() returns an EventId): the action is
// destroyed and its slab node recycled immediately; the heap entry is
// lazily skipped on pop, and the heap compacts itself when stale entries
// outnumber live ones.  This keeps retry timers — armed per RMI attempt,
// cancelled on completion — from growing the queue without bound.
#pragma once

#include <cstdint>
#include <vector>

#include "common/function.hpp"
#include "common/time.hpp"

namespace mage::sim {

// Identifies one scheduled event for cancellation.
struct EventId {
  std::uint32_t slot = 0xFFFFFFFFu;
  std::uint64_t seq = 0;
};

class EventQueue {
 public:
  using Action = common::UniqueFunction<void()>;

  // Schedules `action` to fire at absolute simulated time `at`.  `wake`
  // marks the event as driver-visible: Simulation::run_until re-evaluates
  // its predicate only after waking events (or an explicit wake()), so
  // internal bookkeeping events (retransmission timers, wire deliveries,
  // marshalling delays) schedule with wake=false and the layers that invoke
  // user code wake explicitly at the callback boundary.  `tie` orders
  // same-instant events before the FIFO sequence number (see file comment);
  // network deliveries pass their source node id, everything else 0.
  EventId schedule(common::SimTime at, Action action, bool wake = true,
                   std::uint32_t tie = 0);

  // Cancels a scheduled event; a no-op if it already fired (or was already
  // cancelled).  Returns true when the event was live.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Time of the earliest pending event; only valid when !empty().
  // Non-const: drops heap entries left behind by cancelled events.
  [[nodiscard]] common::SimTime next_time() {
    skip_stale();
    return heap_[0].at;
  }

  // Removes and returns the earliest pending event's action; `wake` reports
  // the event's wake mark.
  [[nodiscard]] Action pop(common::SimTime& at, bool& wake);
  [[nodiscard]] Action pop(common::SimTime& at) {
    bool wake = false;
    return pop(at, wake);
  }

  // Number of pooled event nodes currently allocated (grows to the peak
  // number of simultaneously pending events, then stays flat).
  [[nodiscard]] std::size_t pool_size() const { return slab_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct HeapEntry {
    common::SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;  // index into slab_
    std::uint32_t tie;   // same-instant priority (source node id; 0 local)

    [[nodiscard]] bool before(const HeapEntry& other) const {
      if (at != other.at) return at < other.at;
      if (tie != other.tie) return tie < other.tie;
      return seq < other.seq;
    }
  };

  struct Node {
    // Metadata first: the liveness check on pop touches only this line.
    std::uint64_t seq = 0;      // seq of the event occupying this slot
    std::uint32_t next_free = kNil;
    bool live = false;
    bool wake = true;  // driver-visible event (see schedule())
    Action action;
  };

  // True when the heap entry still refers to a live event (its slab node
  // has not been cancelled or recycled).
  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    const Node& node = slab_[e.slot];
    return node.live && node.seq == e.seq;
  }

  void release_slot(std::uint32_t slot);
  // Drops stale entries off the heap top.
  void skip_stale();
  // Rebuilds the heap without stale entries.
  void compact();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<HeapEntry> heap_;  // binary min-heap by (at, seq)
  std::vector<Node> slab_;       // pooled action storage
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;  // live (non-cancelled) events in heap_
};

}  // namespace mage::sim
