// Discrete-event queue with deterministic tie-breaking.
//
// Events scheduled for the same instant fire in scheduling order (FIFO by a
// monotonically increasing sequence number), so a seed plus a program fully
// determines a simulation run — a property every test in this repository
// leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace mage::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` to fire at absolute simulated time `at`.
  void schedule(common::SimTime at, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] common::SimTime next_time() const { return heap_.top().at; }

  // Removes and returns the earliest pending event's action.
  [[nodiscard]] Action pop(common::SimTime& at);

 private:
  struct Event {
    common::SimTime at;
    std::uint64_t seq;
    // shared_ptr rather than inline std::function: priority_queue elements
    // must be copyable, and Action may capture move-only state.
    std::shared_ptr<Action> action;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mage::sim
