#include "sim/event_queue.hpp"

#include <memory>
#include <utility>

namespace mage::sim {

void EventQueue::schedule(common::SimTime at, Action action) {
  heap_.push(Event{at, next_seq_++,
                   std::make_shared<Action>(std::move(action))});
}

EventQueue::Action EventQueue::pop(common::SimTime& at) {
  Event event = heap_.top();
  heap_.pop();
  at = event.at;
  return std::move(*event.action);
}

}  // namespace mage::sim
