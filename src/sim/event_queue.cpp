#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace mage::sim {

EventId EventQueue::schedule(common::SimTime at, Action action, bool wake,
                             std::uint32_t tie) {
  std::uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot].action = std::move(action);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(Node{0, kNil, false, true, std::move(action)});
  }
  const std::uint64_t seq = next_seq_++;
  Node& node = slab_[slot];
  node.seq = seq;
  node.live = true;
  node.wake = wake;
  heap_.push_back(HeapEntry{at, seq, slot, tie});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{slot, seq};
}

bool EventQueue::cancel(EventId id) {
  if (id.slot >= slab_.size()) return false;
  Node& node = slab_[id.slot];
  if (!node.live || node.seq != id.seq) return false;  // already fired
  release_slot(id.slot);
  --live_;
  // The heap entry is now stale; drop it lazily, compacting when stale
  // entries dominate so cancelled timers cannot grow the heap unboundedly.
  if (heap_.size() > 8 && heap_.size() - live_ > live_) compact();
  return true;
}

EventQueue::Action EventQueue::pop(common::SimTime& at, bool& wake) {
  skip_stale();
  const HeapEntry top = heap_[0];
  at = top.at;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  wake = slab_[top.slot].wake;
  Action action = std::move(slab_[top.slot].action);
  release_slot(top.slot);
  --live_;
  return action;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Node& node = slab_[slot];
  node.action = nullptr;  // destroy the callable now
  node.live = false;
  node.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::skip_stale() {
  while (!heap_.empty() && !entry_live(heap_[0])) {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const HeapEntry& e) { return !entry_live(e); });
  // Re-heapify bottom-up.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

void EventQueue::sift_up(std::size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) {
  HeapEntry entry = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].before(heap_[child])) ++child;
    if (!heap_[child].before(entry)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

}  // namespace mage::sim
