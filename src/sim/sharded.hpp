// Sharded simulation: event-queue shards driven by a worker-thread pool
// under conservative-lookahead synchronization.
//
// The single-queue sim::Simulation executes an N-node federation on one
// core; this driver runs a set of Simulation shards (private clock, event
// queue, RNG, stats registry each) in parallel, synchronized in *windows*
// of virtual time:
//
//   frontier      = min over shards (queues + undrained mailboxes) of the
//                   next pending event's time
//   window_end(s) = frontier + min over p != s of lookahead(p, s)
//
// where lookahead(p, s) is the minimum latency any interaction from shard
// p can add to shard s (for the simulated network: the smallest delay of
// any cross-shard link from a node on p to a node on s).  Shard s may
// safely execute every event with time < window_end(s), because any
// message another shard p sends this window was sent at a time >= frontier
// and therefore arrives at >= frontier + lookahead(p, s) >= window_end(s)
// — outside s's window.  That is the classic conservative
// (Chandy–Misra-style) bound with a barrier instead of null messages,
// generalized to a per-pair lookahead matrix: a WAN-scale link widens the
// windows of the shards behind it instead of the slowest link throttling
// everyone.  The matrix defaults to the uniform construction-time
// lookahead; set_pair_lookahead() widens individual pairs (net::Network
// derives entries from its CostModel + per-link extra latency).
//
// More than one simulated node may live on one shard (an affinity-aware
// node:shard mapping — see net::Network): traffic between co-located nodes
// is scheduled directly into the shared shard queue with no mailbox or
// barrier involvement and does NOT constrain the lookahead matrix, which
// is what makes clustering chatty node pairs profitable.
//
// Cross-shard sends travel through per-link mailboxes, double-buffered by
// round: during a round the source shard's worker appends to the write
// side of mailbox (from, to), while the destination shard's worker drains
// the read side (everything posted last round).  The sides swap inside the
// round barrier, so no mailbox is ever touched by two threads — the one
// barrier per round is the only synchronization.  (The previous design
// needed two full barriers per round to separate the drain and run phases;
// double-buffering removes that ordering requirement and halves the
// barrier cost.)  The barrier itself is a centralized sense-reversing
// barrier that spins briefly and then parks with exponential backoff —
// oversubscribed runs (more workers than hardware threads) park almost
// immediately instead of burning each other's quantum.
//
// Determinism: the window sequence is a pure function of event timestamps,
// so it does not depend on the worker count.  Within a window each shard
// executes its own queue sequentially; equal-time events are ordered by
// the EventQueue tie key (deliveries carry their source node id), so the
// events of every NODE fire in an identical order at any thread count AND
// under any node:shard mapping — a property tests/sharded_sim_test.cpp
// enforces and BENCH_storm's threaded mode re-asserts with a per-node
// order digest on every run.
//
// Threading contract (audited; see docs/ARCHITECTURE.md):
//   * shard state (queue, clock, RNG, stats) is touched only by the worker
//     that owns the shard while running, and only by the driver thread
//     while stopped;
//   * post() may be called only from the source shard's worker (or from
//     the driver while stopped);
//   * the driver predicate runs at round barriers with all workers
//     parked, so it may read anything the shards wrote — but state it
//     reads that is written from multiple shards' callbacks must be
//     per-shard or atomic;
//   * configuration (adding nodes, handlers, fault injection, the
//     lookahead matrix) is frozen while workers run — net::Network and
//     set_pair_lookahead enforce this by throwing.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace mage::sim {

class ShardedSim {
 public:
  // `lookahead` (>= 1 simulated microsecond: a zero lookahead makes every
  // window empty and the conservative driver cannot progress) seeds every
  // entry of the pair-lookahead matrix; widen individual pairs afterwards
  // with set_pair_lookahead.  Shard i is seeded deterministically from
  // `seed` and i.
  ShardedSim(std::size_t shard_count, std::uint64_t seed,
             common::SimDuration lookahead);

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Simulation& shard(std::size_t i) { return *shards_[i]; }

  // The uniform construction-time lookahead: the floor every matrix entry
  // started from.  Pair entries may since have been widened.
  [[nodiscard]] common::SimDuration lookahead() const { return lookahead_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Widens (or narrows) one directed entry of the lookahead matrix: the
  // minimum virtual-time distance any event posted from shard `from` to
  // shard `to` must keep from the sender's clock.  Driver-only (throws
  // while workers run — a matrix mutated mid-window would deadlock or
  // corrupt the conservative bound); entries must be >= 1 simulated
  // microsecond.  The per-shard window bounds are recomputed at the next
  // run.
  void set_pair_lookahead(std::size_t from, std::size_t to,
                          common::SimDuration lookahead);
  [[nodiscard]] common::SimDuration pair_lookahead(std::size_t from,
                                                   std::size_t to) const {
    return la_[from * shards_.size() + to];
  }

  // True while run_until's workers are executing; layers use this to
  // reject configuration changes mid-run.
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

  // Window-boundary hook: invoked inside the round barrier — every worker
  // parked — with the start time of the window about to run (the
  // conservative frontier), before any shard executes an event of that
  // window.  This is the one place mid-run global mutation is safe: the
  // barrier orders the hook's plain writes before every worker's reads, so
  // shards never observe a half-applied change, and because the window
  // sequence is a pure function of event timestamps the hook fires at
  // identical virtual times at any worker count.  net::Network installs
  // its FaultSchedule applier here.  The hook MUST be deterministic (no
  // wall clock, no shared RNG) or the determinism contract is void.
  // Driver-only; throws while workers run.  Pass nullptr to clear.
  // `owner` tags the installer (opaque identity) so a layer tearing down
  // can verify the installed hook is still its own before clearing.
  using BoundaryHook = std::function<void(common::SimTime window_start)>;
  void set_boundary_hook(BoundaryHook hook, const void* owner = nullptr);
  [[nodiscard]] const void* boundary_hook_owner() const {
    return boundary_hook_owner_;
  }

  // Schedules `action` at absolute time `at` on shard `to`.  Callable from
  // shard `from`'s worker during a window (the action lands in the write
  // side of the (from, to) mailbox and is drained next round), or from the
  // driver thread while stopped.  `at` must be >= the posting shard's
  // current time + pair_lookahead(from, to) when posting mid-run; the
  // network layer guarantees this by construction (every cross-shard delay
  // >= the pair's lookahead entry).  `tie` is the EventQueue same-instant
  // key (deliveries pass their source node id).
  void post(std::size_t from, std::size_t to, common::SimTime at,
            EventQueue::Action action, Wake wake = Wake::Yes,
            std::uint32_t tie = 0);

  // Runs all shards on `threads` workers until `done` returns true —
  // checked at round barriers after any shard executed a waking event —
  // or every queue and mailbox drains (returns done() then, or true when
  // no predicate was given), or the frontier passes `deadline` (returns
  // done()).  Driver-only; not reentrant.
  bool run_until(const std::function<bool()>& done, int threads,
                 common::SimTime deadline = Simulation::kNoDeadline);

  // Runs until every shard queue and mailbox drains.
  void run_until_idle(int threads) { (void)run_until(nullptr, threads); }

  // Global virtual-time frontier reached by the last run.
  [[nodiscard]] common::SimTime frontier() const { return frontier_; }

  // Sum of one named counter across all shard registries (driver-only).
  [[nodiscard]] std::int64_t counter(const std::string& key) const;

  // Windows executed by the last run (observability: the barrier cost per
  // unit of progress — exactly one barrier per window since the
  // double-buffered-mailbox redesign).
  [[nodiscard]] std::int64_t windows() const { return windows_; }

 private:
  struct Posted {
    common::SimTime at;
    std::uint32_t tie;
    bool wake;
    EventQueue::Action action;
  };

  // One direction of one link, double-buffered by round parity: posts go
  // to side `write_side_`, drains read the other side — so the one round
  // barrier is the only synchronization a mailbox ever needs.  Padded to a
  // cache line so neighbouring mailboxes written by different workers
  // never share one.
  struct alignas(64) Mailbox {
    std::vector<Posted> items[2];
    common::SimTime min_at[2] = {Simulation::kNoDeadline,
                                 Simulation::kNoDeadline};
  };

  // One per (side, destination shard): lets a drain — and the frontier
  // fold in control() — skip a shard's whole mailbox column when nothing
  // was posted to it.  Padded: many source workers store `true`
  // concurrently.
  struct alignas(64) InboundFlag {
    std::atomic<bool> any{false};
  };

  [[nodiscard]] Mailbox& mailbox(std::size_t from, std::size_t to) {
    return mail_[from * shards_.size() + to];
  }
  [[nodiscard]] InboundFlag& inbound(std::size_t side, std::size_t to) {
    return inbound_[side * shards_.size() + to];
  }

  // Drains the read side of every inbound mailbox of shard `s` into its
  // queue.  Runs on the shard's worker during the round, racing nothing:
  // posts target the write side.
  void drain_shard(std::size_t s);

  // The control step, run by exactly one thread inside the round barrier
  // (all workers parked): folds wake marks, evaluates the predicate,
  // computes the next window (frontier + per-shard bounds, swapping the
  // mailbox sides) or decides to stop.
  void control(const std::function<bool()>& done, common::SimTime deadline);

  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<Mailbox> mail_;  // row-major: mail_[from * S + to]
  std::vector<InboundFlag> inbound_;  // [side * S + to]
  common::SimDuration lookahead_;
  std::uint64_t seed_;
  // Pair-lookahead matrix, row-major [from * S + to], and the cached
  // per-shard window margin (min over incoming entries), rebuilt at run
  // start.
  std::vector<common::SimDuration> la_;
  std::vector<common::SimDuration> min_in_la_;
  BoundaryHook boundary_hook_;
  const void* boundary_hook_owner_ = nullptr;

  // Run-scoped state.  Written by control() inside the barrier or by
  // workers under the phase discipline above; the barrier provides the
  // ordering.
  common::SimTime frontier_ = 0;
  std::vector<common::SimTime> window_ends_;  // per shard
  std::size_t write_side_ = 0;  // mailbox side posts go to this round
  bool stop_ = false;
  bool success_ = false;
  std::int64_t windows_ = 0;
  std::atomic<bool> any_woke_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
};

}  // namespace mage::sim
