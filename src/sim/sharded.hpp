// Sharded simulation: one event-queue shard per simulated node, driven by a
// worker-thread pool under conservative-lookahead synchronization.
//
// The single-queue sim::Simulation executes an N-node federation on one
// core; this driver gives each node its own Simulation shard (private
// clock, event queue, RNG, stats registry) and runs the shards in parallel,
// synchronized in *windows* of virtual time:
//
//   frontier   = min over shards of their next pending event's time
//   window_end = frontier + lookahead
//
// where `lookahead` is the minimum latency any cross-shard interaction can
// add (for the simulated network: the smallest cross-node link delay).  A
// shard may safely execute every event with time < window_end, because any
// message another shard sends this window was sent at a time >= frontier
// and therefore arrives at >= frontier + lookahead = window_end — outside
// the window.  That is the classic conservative (Chandy–Misra-style) bound
// with a barrier instead of null messages.
//
// Cross-shard sends travel through per-link SPSC mailboxes: during a
// window only the source shard's worker appends to mailbox (from, to), and
// only the destination shard's worker drains it — at the next window
// boundary, after a barrier.  The phase barriers are the synchronization;
// the mailboxes themselves need no locks or atomics.
//
// Determinism: the window sequence is a pure function of event timestamps,
// so it does not depend on the worker count.  Within a window each shard
// executes its own queue sequentially, and at each boundary a shard drains
// its inbound mailboxes in fixed source order (each mailbox FIFO), so the
// events of every shard fire in an identical order at any thread count —
// a property tests/sharded_sim_test.cpp enforces and BENCH_storm's
// threaded mode re-asserts with a per-node order digest on every run.
//
// Threading contract (audited; see docs/ARCHITECTURE.md):
//   * shard state (queue, clock, RNG, stats) is touched only by the worker
//     that owns the shard while running, and only by the driver thread
//     while stopped;
//   * post() may be called only from the source shard's worker (or from
//     the driver while stopped);
//   * the driver predicate runs at window barriers with all workers
//     parked, so it may read anything the shards wrote — but state it
//     reads that is written from multiple shards' callbacks must be
//     per-shard or atomic;
//   * configuration (adding nodes, handlers, fault injection) is frozen
//     while workers run — net::Network enforces this by throwing.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace mage::sim {

class ShardedSim {
 public:
  // `lookahead` must be >= 1 simulated microsecond: a zero lookahead makes
  // every window empty and the conservative driver cannot progress.
  // Shard i is seeded deterministically from `seed` and i.
  ShardedSim(std::size_t shard_count, std::uint64_t seed,
             common::SimDuration lookahead);

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Simulation& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] common::SimDuration lookahead() const { return lookahead_; }

  // True while run_until's workers are executing; layers use this to
  // reject configuration changes mid-run.
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

  // Window-boundary hook: invoked inside the window barrier — every worker
  // parked — with the start time of the window about to run (the
  // conservative frontier), before any shard executes an event of that
  // window.  This is the one place mid-run global mutation is safe: the
  // barrier orders the hook's plain writes before every worker's reads, so
  // shards never observe a half-applied change, and because the window
  // sequence is a pure function of event timestamps the hook fires at
  // identical virtual times at any worker count.  net::Network installs
  // its FaultSchedule applier here.  The hook MUST be deterministic (no
  // wall clock, no shared RNG) or the determinism contract is void.
  // Driver-only; throws while workers run.  Pass nullptr to clear.
  // `owner` tags the installer (opaque identity) so a layer tearing down
  // can verify the installed hook is still its own before clearing.
  using BoundaryHook = std::function<void(common::SimTime window_start)>;
  void set_boundary_hook(BoundaryHook hook, const void* owner = nullptr);
  [[nodiscard]] const void* boundary_hook_owner() const {
    return boundary_hook_owner_;
  }

  // Schedules `action` at absolute time `at` on shard `to`.  Callable from
  // shard `from`'s worker during a window (the action lands in the (from,
  // to) mailbox and is drained at the next boundary), or from the driver
  // thread while stopped.  `at` must be >= the posting shard's current
  // time + lookahead when posting cross-shard mid-run; the network layer
  // guarantees this by construction (every cross-node delay >= lookahead).
  void post(std::size_t from, std::size_t to, common::SimTime at,
            EventQueue::Action action, Wake wake = Wake::Yes);

  // Runs all shards on `threads` workers until `done` returns true —
  // checked at window boundaries after any shard executed a waking event —
  // or every queue and mailbox drains (returns done() then, or true when
  // no predicate was given), or the frontier passes `deadline` (returns
  // done()).  Driver-only; not reentrant.
  bool run_until(const std::function<bool()>& done, int threads,
                 common::SimTime deadline = Simulation::kNoDeadline);

  // Runs until every shard queue and mailbox drains.
  void run_until_idle(int threads) { (void)run_until(nullptr, threads); }

  // Global virtual-time frontier reached by the last run.
  [[nodiscard]] common::SimTime frontier() const { return frontier_; }

  // Sum of one named counter across all shard registries (driver-only).
  [[nodiscard]] std::int64_t counter(const std::string& key) const;

  // Windows executed by the last run (observability: the barrier cost per
  // unit of progress).
  [[nodiscard]] std::int64_t windows() const { return windows_; }

 private:
  struct Posted {
    common::SimTime at;
    bool wake;
    EventQueue::Action action;
  };

  // One direction of one link.  Padded to a cache line so neighbouring
  // mailboxes written by different workers never share one.
  struct alignas(64) Mailbox {
    std::vector<Posted> items;
  };

  [[nodiscard]] Mailbox& mailbox(std::size_t from, std::size_t to) {
    return mail_[from * shards_.size() + to];
  }

  // Drains every inbound mailbox of shard `s` into its queue, in source
  // order.  Runs on the shard's worker between barriers.
  void drain_shard(std::size_t s);

  // The control step, run by exactly one thread inside the window barrier
  // (all workers parked): folds wake marks, evaluates the predicate,
  // computes the next window or decides to stop.
  void control(const std::function<bool()>& done, common::SimTime deadline);

  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<Mailbox> mail_;  // row-major: mail_[from * S + to]
  common::SimDuration lookahead_;
  BoundaryHook boundary_hook_;
  const void* boundary_hook_owner_ = nullptr;

  // Run-scoped state.  Written by control() inside a barrier or by workers
  // under the phase discipline above; the barriers provide the ordering.
  common::SimTime frontier_ = 0;
  common::SimTime window_end_ = 0;
  bool stop_ = false;
  bool success_ = false;
  std::int64_t windows_ = 0;
  std::atomic<bool> any_woke_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
};

}  // namespace mage::sim
