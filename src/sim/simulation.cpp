#include "sim/simulation.hpp"

#include <cassert>

namespace mage::sim {

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed),
      predicate_checks_(stats_.counter_handle("sim.predicate_checks")),
      wakeups_(stats_.counter_handle("sim.wakeups")) {}

EventId Simulation::schedule_at(common::SimTime at, EventQueue::Action action,
                                Wake wake) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(action), wake == Wake::Yes);
}

EventId Simulation::schedule_after(common::SimDuration delay,
                                   EventQueue::Action action, Wake wake) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(action), wake);
}

bool Simulation::step_event() {
  if (queue_.empty()) return false;
  common::SimTime at = 0;
  bool wake = false;
  auto action = queue_.pop(at, wake);
  now_ = at;
  action();
  if (wake) woken_ = true;
  return true;
}

bool Simulation::step() { return step_event(); }

void Simulation::run_until_idle() {
  while (step_event()) {
  }
}

bool Simulation::run_until(const std::function<bool()>& done,
                           common::SimTime deadline) {
  ++*predicate_checks_;
  if (done()) return true;
  while (true) {
    if (queue_.empty() || queue_.next_time() > deadline) {
      // Final check: a wake may have been missed (e.g. a predicate flipped
      // by a non-waking event) — never report false while done() holds.
      ++*predicate_checks_;
      return done();
    }
    (void)step_event();
    if (woken_) {
      woken_ = false;
      ++*wakeups_;
      ++*predicate_checks_;
      if (done()) return true;
    }
  }
}

void Simulation::run_for(common::SimDuration span) {
  const common::SimTime end = now_ + span;
  while (!queue_.empty() && queue_.next_time() <= end) (void)step_event();
  now_ = end;
}

}  // namespace mage::sim
