#include "sim/simulation.hpp"

#include <cassert>

#include "common/log.hpp"

namespace mage::sim {

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed),
      predicate_checks_(stats_.counter_handle("sim.predicate_checks")),
      wakeups_(stats_.counter_handle("sim.wakeups")),
      wake_contract_violations_(
          stats_.counter_handle("sim.wake_contract_violations")) {}

EventId Simulation::schedule_at(common::SimTime at, EventQueue::Action action,
                                Wake wake, std::uint32_t tie) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(action), wake == Wake::Yes, tie);
}

EventId Simulation::schedule_after(common::SimDuration delay,
                                   EventQueue::Action action, Wake wake,
                                   std::uint32_t tie) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(action), wake,
                     tie);
}

bool Simulation::step_event() {
  if (queue_.empty()) return false;
  common::SimTime at = 0;
  bool wake = false;
  auto action = queue_.pop(at, wake);
  now_ = at;
  action();
  if (wake) woken_ = true;
  return true;
}

bool Simulation::step() { return step_event(); }

void Simulation::run_until_idle() {
  while (step_event()) {
  }
}

bool Simulation::run_until(const std::function<bool()>& done,
                           common::SimTime deadline) {
  ++*predicate_checks_;
  if (done()) return true;
  while (true) {
    if (queue_.empty() || queue_.next_time() > deadline) {
      // Final check: a wake may have been missed (e.g. a predicate flipped
      // by a non-waking event) — never report false while done() holds.
      ++*predicate_checks_;
      return done();
    }
    (void)step_event();
    if (woken_) {
      woken_ = false;
      ++*wakeups_;
      ++*predicate_checks_;
      if (done()) return true;
    } else if (wake_contract_checks_ && done()) {
      // Wake-contract violation: a non-waking event flipped the predicate.
      // Whatever that event ran touched driver-visible state, so its layer
      // should have scheduled with Wake::Yes or called wake() — without
      // this check the caller silently stalls until the drain-time
      // re-check.  Flag it, but keep the release-build behaviour (do not
      // return early) so debug and release runs are step-identical.
      ++*wake_contract_violations_;
      if (!wake_contract_warned_) {
        wake_contract_warned_ = true;
        MAGE_WARN() << "wake-contract violation: a run_until predicate "
                       "flipped true after a non-waking event (a layer ran "
                       "user-visible code under Wake::No without wake()); "
                       "counted in sim.wake_contract_violations";
      }
    }
  }
}

bool Simulation::run_window(common::SimTime end) {
  bool woke = false;
  while (!queue_.empty() && queue_.next_time() < end) {
    (void)step_event();
    if (woken_) {
      woken_ = false;
      woke = true;
    }
  }
  return woke;
}

void Simulation::run_for(common::SimDuration span) {
  const common::SimTime end = now_ + span;
  while (!queue_.empty() && queue_.next_time() <= end) (void)step_event();
  now_ = end;
}

}  // namespace mage::sim
