#include "sim/simulation.hpp"

#include <cassert>

namespace mage::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule_at(common::SimTime at,
                                EventQueue::Action action) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(action));
}

EventId Simulation::schedule_after(common::SimDuration delay,
                                   EventQueue::Action action) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(action));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  common::SimTime at = 0;
  auto action = queue_.pop(at);
  now_ = at;
  action();
  return true;
}

void Simulation::run_until_idle() {
  while (step()) {
  }
}

bool Simulation::run_until(const std::function<bool()>& done,
                           common::SimTime deadline) {
  while (!done()) {
    if (queue_.empty()) return false;
    if (queue_.next_time() > deadline) return false;
    step();
  }
  return true;
}

void Simulation::run_for(common::SimDuration span) {
  const common::SimTime end = now_ + span;
  while (!queue_.empty() && queue_.next_time() <= end) step();
  now_ = end;
}

}  // namespace mage::sim
