#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace mage::sim {
namespace {

// SplitMix64: spreads one master seed into decorrelated per-shard seeds.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ShardedSim::ShardedSim(std::size_t shard_count, std::uint64_t seed,
                       common::SimDuration lookahead)
    : mail_(shard_count * shard_count), lookahead_(lookahead) {
  if (shard_count == 0) {
    throw common::MageError("sharded simulation needs at least one shard");
  }
  if (lookahead < 1) {
    throw common::MageError(
        "conservative lookahead must be >= 1 simulated microsecond (a zero "
        "lookahead makes every window empty); use a cost model with nonzero "
        "cross-node latency");
  }
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Simulation>(splitmix64(seed + i)));
  }
}

void ShardedSim::set_boundary_hook(BoundaryHook hook, const void* owner) {
  if (running()) {
    throw common::MageError(
        "ShardedSim::set_boundary_hook is driver-only: the hook table "
        "cannot change while workers run");
  }
  boundary_hook_ = std::move(hook);
  boundary_hook_owner_ = boundary_hook_ ? owner : nullptr;
}

void ShardedSim::post(std::size_t from, std::size_t to, common::SimTime at,
                      EventQueue::Action action, Wake wake) {
  // Causality check, enforced rather than documented: a mid-run post that
  // lands inside the current conservative window would execute in the
  // destination's past and silently break determinism (e.g. a cost model
  // whose effective cross-node delay dropped below the lookahead).
  // Driver-side posts while stopped are exempt — they are drained before
  // the first window is computed.
  if (running() && at < shards_[from]->now() + lookahead_) {
    throw common::MageError(
        "cross-shard post at t=" + std::to_string(at) + " from shard " +
        std::to_string(from) + " (now " +
        std::to_string(shards_[from]->now()) + ") lands inside the " +
        std::to_string(lookahead_) +
        "us conservative window: the link's delay undercuts the lookahead");
  }
  mailbox(from, to).items.push_back(
      Posted{at, wake == Wake::Yes, std::move(action)});
}

void ShardedSim::drain_shard(std::size_t s) {
  const std::size_t count = shards_.size();
  Simulation& sim = *shards_[s];
  for (std::size_t from = 0; from < count; ++from) {
    auto& box = mailbox(from, s).items;
    for (Posted& p : box) {
      (void)sim.schedule_at(p.at, std::move(p.action),
                            p.wake ? Wake::Yes : Wake::No);
    }
    box.clear();  // keeps capacity: steady-state drains allocate nothing
  }
}

void ShardedSim::control(const std::function<bool()>& done,
                         common::SimTime deadline) {
  if (failed_.load(std::memory_order_relaxed)) {
    stop_ = true;
    success_ = false;
    return;
  }
  // All of this runs with every worker parked inside the barrier, so plain
  // reads of shard state and plain writes of the run-scoped fields are
  // ordered by the barrier itself.
  try {
    if (any_woke_.exchange(false, std::memory_order_relaxed) && done) {
      if (done()) {
        stop_ = true;
        success_ = true;
        return;
      }
    }
    common::SimTime frontier = Simulation::kNoDeadline;
    for (const auto& s : shards_) {
      frontier = std::min(frontier, s->next_event_time());
    }
    if (frontier == Simulation::kNoDeadline) {
      // Every queue and mailbox drained.  Mirror Simulation::run_until's
      // final re-check: never report false while done() holds.
      stop_ = true;
      success_ = done ? done() : true;
      return;
    }
    if (frontier > deadline) {
      stop_ = true;
      success_ = done ? done() : false;
      return;
    }
    frontier_ = frontier;
    // Boundary hook (fault schedules, window instrumentation): all workers
    // are parked, so plain mutation of state the shards read mid-window is
    // ordered by the barrier itself.  Runs before the window executes, so
    // every event of [frontier, window_end) sees the updated state.
    if (boundary_hook_) boundary_hook_(frontier);
    // Clamp to the deadline so no event past it ever executes — the same
    // contract as Simulation::run_until.  frontier <= deadline here, so
    // the window still makes progress (>= frontier + 1).
    window_end_ = frontier + lookahead_;
    if (deadline != Simulation::kNoDeadline && window_end_ > deadline + 1) {
      window_end_ = deadline + 1;
    }
    ++windows_;
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
    stop_ = true;
    success_ = false;
  }
}

bool ShardedSim::run_until(const std::function<bool()>& done, int threads,
                           common::SimTime deadline) {
  if (running_.load(std::memory_order_relaxed)) {
    throw common::MageError("ShardedSim::run_until is not reentrant");
  }
  if (done && done()) return true;

  const std::size_t shard_total = shards_.size();
  const std::size_t workers = std::clamp<std::size_t>(
      threads < 1 ? 1 : static_cast<std::size_t>(threads), 1, shard_total);

  stop_ = false;
  success_ = false;
  windows_ = 0;
  any_woke_.store(false, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  auto on_window = [this, &done, deadline]() noexcept {
    control(done, deadline);
  };
  std::barrier window_barrier(static_cast<std::ptrdiff_t>(workers), on_window);
  std::barrier round_barrier(static_cast<std::ptrdiff_t>(workers));

  auto worker = [&](std::size_t w) {
    const std::size_t begin = w * shard_total / workers;
    const std::size_t end = (w + 1) * shard_total / workers;
    while (true) {
      // Phase 1: drain inbound mailboxes (fixed source order — this is
      // where cross-shard determinism is decided).
      for (std::size_t s = begin; s < end; ++s) drain_shard(s);
      // The barrier's completion step computes the next window (or stops)
      // with everyone parked.
      window_barrier.arrive_and_wait();
      if (stop_) break;
      // Phase 2: run this worker's shards up to the window bound.
      bool woke = false;
      try {
        for (std::size_t s = begin; s < end; ++s) {
          woke = shards_[s]->run_window(window_end_) || woke;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
      }
      if (woke) any_woke_.store(true, std::memory_order_relaxed);
      round_barrier.arrive_and_wait();
    }
  };

  running_.store(true, std::memory_order_release);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
  running_.store(false, std::memory_order_release);

  if (first_error_) std::rethrow_exception(first_error_);
  return success_;
}

std::int64_t ShardedSim::counter(const std::string& key) const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->stats().counter(key);
  return total;
}

}  // namespace mage::sim
