#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace mage::sim {
namespace {

// SplitMix64: spreads one master seed into decorrelated per-shard seeds.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Centralized sense-reversing barrier that parks instead of spinning.
//
// std::barrier's wait spins hard; with more workers than hardware threads
// the spinners burn exactly the quantum the straggler needs to arrive, and
// the old two-barriers-per-round loop paid that tax twice.  This barrier
// spins only briefly (shorter when oversubscribed), then yields with
// exponential backoff, then parks on the generation word's futex until it
// advances.  The completion runs on the last arriver with every other
// party quiescent — exactly the window the control step needs.
class ParkingBarrier {
 public:
  ParkingBarrier(std::size_t parties, bool oversubscribed)
      : parties_(parties),
        spin_limit_(parties == 1 ? 0 : (oversubscribed ? 64 : 4096)) {}

  // `completion` must not throw (mirror of std::barrier's contract).
  template <typename Completion>
  void arrive_and_wait(Completion&& completion) {
    const std::uint32_t gen = generation_.load(std::memory_order_acquire);
    // acq_rel: each arriver's release publishes its round writes into the
    // release sequence on arrived_; the last arriver's acquire therefore
    // sees every party's writes before running the completion.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      completion();
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
      return;
    }
    for (int i = 0; i < spin_limit_; ++i) {
      if (generation_.load(std::memory_order_acquire) != gen) return;
      cpu_relax();
    }
    int backoff = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (backoff < kMaxYields) {
        for (int i = 0; i < (1 << backoff); ++i) std::this_thread::yield();
        ++backoff;
      } else {
        generation_.wait(gen, std::memory_order_acquire);
      }
    }
  }

 private:
  static constexpr int kMaxYields = 4;

  const std::size_t parties_;
  const int spin_limit_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
};

}  // namespace

ShardedSim::ShardedSim(std::size_t shard_count, std::uint64_t seed,
                       common::SimDuration lookahead)
    : mail_(shard_count * shard_count),
      inbound_(2 * shard_count),
      lookahead_(lookahead),
      seed_(seed),
      la_(shard_count * shard_count, lookahead),
      min_in_la_(shard_count, lookahead),
      window_ends_(shard_count, 0) {
  if (shard_count == 0) {
    throw common::MageError("sharded simulation needs at least one shard");
  }
  if (lookahead < 1) {
    throw common::MageError(
        "conservative lookahead must be >= 1 simulated microsecond (a zero "
        "lookahead makes every window empty); use a cost model with nonzero "
        "cross-node latency");
  }
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Simulation>(splitmix64(seed + i)));
  }
}

void ShardedSim::set_pair_lookahead(std::size_t from, std::size_t to,
                                    common::SimDuration lookahead) {
  if (running()) {
    throw common::MageError(
        "ShardedSim::set_pair_lookahead is driver-only: the lookahead matrix "
        "cannot change while workers run");
  }
  const std::size_t count = shards_.size();
  if (from >= count || to >= count) {
    throw common::MageError("set_pair_lookahead(" + std::to_string(from) +
                            ", " + std::to_string(to) +
                            ") out of range for shard count " +
                            std::to_string(count));
  }
  if (lookahead < 1) {
    throw common::MageError(
        "pair lookahead for shard link " + std::to_string(from) + " -> " +
        std::to_string(to) + " must be >= 1 simulated microsecond, got " +
        std::to_string(lookahead));
  }
  la_[from * count + to] = lookahead;
}

void ShardedSim::set_boundary_hook(BoundaryHook hook, const void* owner) {
  if (running()) {
    throw common::MageError(
        "ShardedSim::set_boundary_hook is driver-only: the hook table "
        "cannot change while workers run");
  }
  boundary_hook_ = std::move(hook);
  boundary_hook_owner_ = boundary_hook_ ? owner : nullptr;
}

void ShardedSim::post(std::size_t from, std::size_t to, common::SimTime at,
                      EventQueue::Action action, Wake wake,
                      std::uint32_t tie) {
  // Causality check, enforced rather than documented: a mid-run post that
  // lands inside the destination's conservative window would execute in
  // its past and silently break determinism (e.g. a cost model whose
  // effective cross-shard delay dropped below the pair's lookahead entry).
  // Driver-side posts while stopped are exempt — they are folded into the
  // frontier before the first window is computed.
  const common::SimDuration la = la_[from * shards_.size() + to];
  if (running() && at < shards_[from]->now() + la) {
    throw common::MageError(
        "cross-shard post at t=" + std::to_string(at) + " from shard " +
        std::to_string(from) + " (now " +
        std::to_string(shards_[from]->now()) + ") to shard " +
        std::to_string(to) + " lands inside the " + std::to_string(la) +
        "us conservative window: the link's delay undercuts the pair "
        "lookahead");
  }
  Mailbox& box = mailbox(from, to);
  auto& items = box.items[write_side_];
  items.push_back(Posted{at, tie, wake == Wake::Yes, std::move(action)});
  box.min_at[write_side_] = std::min(box.min_at[write_side_], at);
  inbound(write_side_, to).any.store(true, std::memory_order_relaxed);
}

void ShardedSim::drain_shard(std::size_t s) {
  // Reads the side posts are NOT going to this round; the swap happened
  // inside the barrier, so nothing races these vectors.
  const std::size_t drain_side = 1 - write_side_;
  InboundFlag& flag = inbound(drain_side, s);
  if (!flag.any.load(std::memory_order_relaxed)) return;
  flag.any.store(false, std::memory_order_relaxed);
  const std::size_t count = shards_.size();
  Simulation& sim = *shards_[s];
  for (std::size_t from = 0; from < count; ++from) {
    Mailbox& box = mailbox(from, s);
    auto& items = box.items[drain_side];
    if (items.empty()) continue;
    for (Posted& p : items) {
      (void)sim.schedule_at(p.at, std::move(p.action),
                            p.wake ? Wake::Yes : Wake::No, p.tie);
    }
    items.clear();  // keeps capacity: steady-state drains allocate nothing
    box.min_at[drain_side] = Simulation::kNoDeadline;
  }
}

void ShardedSim::control(const std::function<bool()>& done,
                         common::SimTime deadline) {
  if (failed_.load(std::memory_order_relaxed)) {
    stop_ = true;
    success_ = false;
    return;
  }
  // All of this runs with every worker parked inside the barrier, so plain
  // reads of shard state and plain writes of the run-scoped fields are
  // ordered by the barrier itself.
  try {
    if (any_woke_.exchange(false, std::memory_order_relaxed) && done) {
      if (done()) {
        stop_ = true;
        success_ = true;
        return;
      }
    }
    // The frontier folds the shard queues AND the not-yet-drained
    // mailboxes: control runs before the next round's drains, so an event
    // that so far exists only in a mailbox (posted last round, or by the
    // driver while stopped) must still count.  Only the write side can
    // hold items here — the other side was drained during the round that
    // just ended — and the inbound flags bound the scan to destinations
    // that actually received posts.
    const std::size_t count = shards_.size();
    common::SimTime frontier = Simulation::kNoDeadline;
    for (const auto& s : shards_) {
      frontier = std::min(frontier, s->next_event_time());
    }
    for (std::size_t to = 0; to < count; ++to) {
      if (!inbound(write_side_, to).any.load(std::memory_order_relaxed)) {
        continue;
      }
      for (std::size_t from = 0; from < count; ++from) {
        frontier = std::min(frontier, mailbox(from, to).min_at[write_side_]);
      }
    }
    if (frontier == Simulation::kNoDeadline) {
      // Every queue and mailbox drained.  Mirror Simulation::run_until's
      // final re-check: never report false while done() holds.
      stop_ = true;
      success_ = done ? done() : true;
      return;
    }
    if (frontier > deadline) {
      stop_ = true;
      success_ = done ? done() : false;
      return;
    }
    frontier_ = frontier;
    // Boundary hook (fault schedules, window instrumentation): all workers
    // are parked, so plain mutation of state the shards read mid-window is
    // ordered by the barrier itself.  Runs before the window executes, so
    // every event of [frontier, window_end) sees the updated state.
    if (boundary_hook_) boundary_hook_(frontier);
    // Continue: swap the mailbox sides — last round's posts become the
    // coming round's drain side.  The swap happens ONLY on the continue
    // path, so when run_until returns, pending posts always sit in
    // items[write_side_] and the other side is empty: the invariant the
    // frontier fold above (and the next run) relies on.
    write_side_ = 1 - write_side_;
    // Per-shard window bound: the tightest INCOMING pair lookahead is what
    // limits how far past the frontier shard s may run.  Clamp to the
    // deadline so no event past it ever executes — the same contract as
    // Simulation::run_until; frontier <= deadline here, so the window
    // still makes progress (>= frontier + 1).
    for (std::size_t s = 0; s < count; ++s) {
      const common::SimDuration margin = min_in_la_[s];
      common::SimTime end = frontier > Simulation::kNoDeadline - margin
                                ? Simulation::kNoDeadline
                                : frontier + margin;
      if (deadline != Simulation::kNoDeadline && end > deadline + 1) {
        end = deadline + 1;
      }
      window_ends_[s] = end;
    }
    ++windows_;
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
    stop_ = true;
    success_ = false;
  }
}

bool ShardedSim::run_until(const std::function<bool()>& done, int threads,
                           common::SimTime deadline) {
  if (running_.load(std::memory_order_relaxed)) {
    throw common::MageError("ShardedSim::run_until is not reentrant");
  }
  if (done && done()) return true;

  const std::size_t shard_total = shards_.size();
  const std::size_t workers = std::clamp<std::size_t>(
      threads < 1 ? 1 : static_cast<std::size_t>(threads), 1, shard_total);

  // Cache each shard's window margin: min over the incoming row of the
  // pair matrix.  Intra-shard entries (p == s) deliberately do NOT
  // constrain the window — co-located nodes share one queue and need no
  // conservative bound; that is the payoff of affinity mapping.  A single
  // shard keeps the uniform entry so window cadence (and hence boundary
  // hooks like fault schedules) matches the multi-shard case.
  for (std::size_t s = 0; s < shard_total; ++s) {
    common::SimDuration margin =
        shard_total == 1 ? la_[0] : Simulation::kNoDeadline;
    for (std::size_t p = 0; p < shard_total; ++p) {
      if (p == s) continue;
      margin = std::min(margin, la_[p * shard_total + s]);
    }
    min_in_la_[s] = margin;
  }

  stop_ = false;
  success_ = false;
  windows_ = 0;
  any_woke_.store(false, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  const unsigned hw = std::thread::hardware_concurrency();
  ParkingBarrier barrier(workers, hw != 0 && workers > hw);

  // One barrier per round: control (frontier, predicate, side swap, window
  // bounds) runs as the barrier's completion, then every worker drains its
  // shards' freshly swapped mailbox sides and runs its windows.  The drain
  // races nothing — posts during the round target the other side.
  auto worker = [&](std::size_t w) {
    const std::size_t begin = w * shard_total / workers;
    const std::size_t end = (w + 1) * shard_total / workers;
    while (true) {
      barrier.arrive_and_wait([&]() noexcept { control(done, deadline); });
      if (stop_) return;
      bool woke = false;
      try {
        for (std::size_t s = begin; s < end; ++s) {
          drain_shard(s);
          woke = shards_[s]->run_window(window_ends_[s]) || woke;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
      }
      if (woke) any_woke_.store(true, std::memory_order_relaxed);
    }
  };

  running_.store(true, std::memory_order_release);
  if (workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (auto& t : pool) t.join();
  }
  running_.store(false, std::memory_order_release);

  if (first_error_) std::rethrow_exception(first_error_);
  return success_;
}

std::int64_t ShardedSim::counter(const std::string& key) const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->stats().counter(key);
  return total;
}

}  // namespace mage::sim
