// Mobility coercion (Section 3.4, Table 2).
//
// "A mobility attribute can specify component migration that does not make
// sense, as when applying COD to a component that is already local. ...
// Whenever a mismatch occurs, MAGE attempts to coerce the computation into
// a distributed programming paradigm that matches the actual distribution
// of code and data."
//
// The CoercionPolicy is Table 2 as an executable function: given the
// attribute's model and the component's situation relative to the caller
// and the computation target, it yields what the bind should do.  The
// bench for Table 2 regenerates the table by driving real binds through
// every cell.
#pragma once

#include <string>

#include "core/model_triple.hpp"

namespace mage::core {

// Component location relative to the invoking namespace and the
// attribute's computation target — the columns of Table 2.
enum class Situation {
  Local,              // component is in the caller's namespace
  RemoteAtTarget,     // elsewhere, and already at the computation target
  RemoteNotAtTarget,  // elsewhere, and not at the computation target
};

[[nodiscard]] const char* situation_name(Situation s);

// What a bind does after coercion — the cells of Table 2.
enum class BindAction {
  Default,        // the model's own behaviour
  CoerceToRpc,    // no move needed: invoke in place through a stub
  CoerceToLpc,    // already local: plain local call
  RaiseException, // the model forbids this configuration
  NotApplicable,  // the situation cannot arise for this model
};

[[nodiscard]] const char* bind_action_name(BindAction a);

class CoercionPolicy {
 public:
  // Table 2, verbatim.
  [[nodiscard]] static BindAction decide(Model model, Situation situation);

  // Classifies a component configuration into a Situation (a component in
  // the caller's namespace is Local even when the caller is also the
  // target; attributes short-circuit the at-target case before moving).
  [[nodiscard]] static Situation classify(bool local, bool at_target);
};

}  // namespace mage::core
