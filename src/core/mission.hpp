// AgentMission: the multi-hop mobile-agent pattern as a reusable harness.
//
// Section 3.5 distinguishes MA from REV as "multi-hop and asynchronous".
// An AgentMission drives an MAgent through its itinerary, invoking a chosen
// method at every stop and collecting each stop's result — the classic
// travelling-agent workload (gather readings at every sensor, audit every
// host).  Weak migration means the agent's accumulated heap state travels
// with it from stop to stop.
#pragma once

#include <string>
#include <vector>

#include "core/attributes.hpp"

namespace mage::core {

struct MissionStop {
  common::NodeId node;
  serial::Buffer result;  // serialized result of the stop's call
};

class AgentMission {
 public:
  // The agent will visit `itinerary` in order; at each stop it invokes
  // `method` (one-way, mobile-agent style) and fetches the parked result
  // before hopping on.
  AgentMission(rts::MageClient& client, common::ComponentName agent_name,
               std::vector<common::NodeId> itinerary, std::string method)
      : client_(client),
        agent_(client, agent_name, itinerary),
        name_(std::move(agent_name)),
        itinerary_(std::move(itinerary)),
        method_(std::move(method)) {}

  // Runs the whole itinerary synchronously; returns one entry per stop.
  template <typename... Args>
  std::vector<MissionStop> run(const Args&... args) {
    std::vector<MissionStop> stops;
    stops.reserve(itinerary_.size());
    for (std::size_t i = 0; i < itinerary_.size(); ++i) {
      auto handle = agent_.bind();  // hop to the next stop
      handle.invoke_oneway(method_, args...);
      MissionStop stop;
      stop.node = handle.location();
      common::NodeId at = handle.location();
      stop.result = client_.fetch_result_raw(at, name_);
      stops.push_back(std::move(stop));
    }
    return stops;
  }

  // Decodes one stop's result.
  template <typename T>
  static T result_of(const MissionStop& stop) {
    serial::Reader r(stop.result);
    return serial::get<T>(r);
  }

  [[nodiscard]] MAgent& agent() { return agent_; }

 private:
  rts::MageClient& client_;
  MAgent agent_;
  common::ComponentName name_;
  std::vector<common::NodeId> itinerary_;
  std::string method_;
};

}  // namespace mage::core
