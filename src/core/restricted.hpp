// Namespace-restricted mobility attributes.
//
// "We can also use MAGE to define mobility attributes that restrict the
// namespace on which a component can execute by restricting current
// location and target to subsets of the available hosts."  (Section 3.3.)
//
// RestrictedAttribute decorates any inner attribute with two node sets:
// the component may only be *found* inside `allowed_locations` and may only
// be *sent* to members of `allowed_targets`.  Violations raise
// CoercionError before anything moves — the restriction is a property of
// the attribute, checked at bind time, not a property of the nodes.
#pragma once

#include <memory>
#include <set>
#include <utility>

#include "core/mobility_attribute.hpp"

namespace mage::core {

class RestrictedAttribute : public MobilityAttribute {
 public:
  // Empty sets mean "unrestricted" for that side.
  RestrictedAttribute(std::unique_ptr<MobilityAttribute> inner,
                      std::set<common::NodeId> allowed_locations,
                      std::set<common::NodeId> allowed_targets)
      : MobilityAttribute(inner->client(), inner->name()),
        inner_(std::move(inner)),
        allowed_locations_(std::move(allowed_locations)),
        allowed_targets_(std::move(allowed_targets)) {}

  [[nodiscard]] Model model() const override { return inner_->model(); }

  [[nodiscard]] ModelTriple triple() const override {
    return inner_->triple();
  }

  [[nodiscard]] common::NodeId target() const override {
    return inner_->target();
  }

  [[nodiscard]] const std::set<common::NodeId>& allowed_locations() const {
    return allowed_locations_;
  }
  [[nodiscard]] const std::set<common::NodeId>& allowed_targets() const {
    return allowed_targets_;
  }

 protected:
  RemoteHandle do_bind() override {
    const auto inner_target = inner_->target();
    if (!common::is_no_node(inner_target) && !allowed_targets_.empty() &&
        !allowed_targets_.contains(inner_target)) {
      record_action(BindAction::RaiseException);
      throw common::CoercionError(
          name_, "restricted attribute: target node " +
                     std::to_string(inner_target.value()) +
                     " is outside the allowed target set");
    }
    // Verify the component's current namespace before letting the inner
    // attribute act on it.
    if (!allowed_locations_.empty()) {
      const auto at = client_.find(name_);
      if (!allowed_locations_.contains(at) &&
          !allowed_targets_.contains(at)) {
        record_action(BindAction::RaiseException);
        throw common::CoercionError(
            name_, "restricted attribute: component found at node " +
                       std::to_string(at.value()) +
                       ", outside the allowed location set");
      }
    }
    auto handle = inner_->bind();
    cloc_ = handle.location();
    return handle;
  }

 private:
  std::unique_ptr<MobilityAttribute> inner_;
  std::set<common::NodeId> allowed_locations_;
  std::set<common::NodeId> allowed_targets_;
};

}  // namespace mage::core
