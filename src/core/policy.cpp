#include "core/policy.hpp"

#include "common/error.hpp"

namespace mage::core {

common::NodeId LeastLoadedPolicy::select(
    rts::MageClient& client,
    const std::vector<common::NodeId>& candidates) {
  if (candidates.empty()) {
    throw common::MageError("LeastLoadedPolicy: no candidates");
  }
  common::NodeId best = candidates.front();
  double best_load = client.load_of(best);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double load = client.load_of(candidates[i]);
    if (load < best_load ||
        (load == best_load && candidates[i] < best)) {
      best = candidates[i];
      best_load = load;
    }
  }
  return best;
}

common::NodeId RoundRobinPolicy::select(
    rts::MageClient& client, const std::vector<common::NodeId>& candidates) {
  (void)client;
  if (candidates.empty()) {
    throw common::MageError("RoundRobinPolicy: no candidates");
  }
  return candidates[next_++ % candidates.size()];
}

common::NodeId RandomPolicy::select(
    rts::MageClient& client, const std::vector<common::NodeId>& candidates) {
  if (candidates.empty()) {
    throw common::MageError("RandomPolicy: no candidates");
  }
  const auto index =
      client.simulation().rng().next_below(candidates.size());
  return candidates[index];
}

common::NodeId LoadThresholdPolicy::select(
    rts::MageClient& client, const std::vector<common::NodeId>& candidates) {
  if (client.load_of(current_) <= threshold_) return current_;
  return fallback_.select(client, candidates);
}

}  // namespace mage::core
