// RemoteHandle: the "stub" a mobility attribute's bind() returns.
//
// The paper's bind() returns a `Remote` that the programmer casts to the
// component's interface and invokes ("o = ma.bind(); o.f();").  Our handle
// is the typed-by-method-name equivalent: invoke<R>("f", args...) marshals
// the arguments, chases the component if it moved, and unmarshals the
// result.  A handle to a component in the caller's own namespace takes the
// LPC fast path inside MageClient.
#pragma once

#include <string>
#include <utility>

#include "rts/client.hpp"

namespace mage::core {

class RemoteHandle {
 public:
  RemoteHandle() = default;
  RemoteHandle(rts::MageClient* client, common::ComponentName name,
               common::NodeId location)
      : client_(client), name_(std::move(name)), location_(location) {}

  [[nodiscard]] bool valid() const { return client_ != nullptr; }
  [[nodiscard]] const common::ComponentName& name() const { return name_; }

  // Last known location; refreshed as invocations chase the component.
  [[nodiscard]] common::NodeId location() const { return location_; }

  // Synchronous invocation with result.
  template <typename R, typename... Args>
  R invoke(const std::string& method, const Args&... args) {
    return client_->invoke<R>(location_, name_, method, args...);
  }

  // Asynchronous one-way invocation (mobile-agent semantics).
  template <typename... Args>
  void invoke_oneway(const std::string& method, const Args&... args) {
    client_->invoke_oneway(location_, name_, method, args...);
  }

  // Retrieves a result parked by invoke_oneway.
  template <typename R>
  R fetch_result() {
    return client_->fetch_result<R>(location_, name_);
  }

 private:
  rts::MageClient* client_ = nullptr;
  common::ComponentName name_;
  common::NodeId location_ = common::kNoNode;
};

}  // namespace mage::core
