#include "core/coercion.hpp"

namespace mage::core {

const char* situation_name(Situation s) {
  switch (s) {
    case Situation::Local:
      return "Local";
    case Situation::RemoteAtTarget:
      return "Remote, At Computation Target";
    case Situation::RemoteNotAtTarget:
      return "Remote, Not At Computation Target";
  }
  return "?";
}

const char* bind_action_name(BindAction a) {
  switch (a) {
    case BindAction::Default:
      return "Default Behavior";
    case BindAction::CoerceToRpc:
      return "RPC";
    case BindAction::CoerceToLpc:
      return "LPC";
    case BindAction::RaiseException:
      return "Exception thrown";
    case BindAction::NotApplicable:
      return "n/a";
  }
  return "?";
}

Situation CoercionPolicy::classify(bool local, bool at_target) {
  if (local) return Situation::Local;
  return at_target ? Situation::RemoteAtTarget
                   : Situation::RemoteNotAtTarget;
}

BindAction CoercionPolicy::decide(Model model, Situation situation) {
  // Table 2: "Component Location and Programming Model Behavior".
  switch (model) {
    case Model::MobileAgent:
    case Model::Rev:
      switch (situation) {
        case Situation::Local:
          return BindAction::Default;  // move it to the target
        case Situation::RemoteAtTarget:
          return BindAction::CoerceToRpc;  // no move needed
        case Situation::RemoteNotAtTarget:
          return BindAction::Default;  // move it to the target
      }
      break;
    case Model::Cod:
      switch (situation) {
        case Situation::Local:
          return BindAction::CoerceToLpc;  // already here
        case Situation::RemoteAtTarget:
          // COD's target is the caller's namespace, so "remote yet at the
          // target" cannot arise.
          return BindAction::NotApplicable;
        case Situation::RemoteNotAtTarget:
          return BindAction::Default;  // pull it here
      }
      break;
    case Model::Rpc:
      switch (situation) {
        case Situation::Local:
          return BindAction::RaiseException;
        case Situation::RemoteAtTarget:
          return BindAction::Default;
        case Situation::RemoteNotAtTarget:
          return BindAction::RaiseException;
      }
      break;
    case Model::Cle:
      return BindAction::Default;  // wherever it is, invoke it there
    case Model::Grev:
      // GREV was *designed* for every configuration (Section 3.3); the only
      // shortcut is skipping the move when already at the target.
      return situation == Situation::RemoteAtTarget ? BindAction::CoerceToRpc
                                                    : BindAction::Default;
    case Model::Lpc:
      return situation == Situation::Local ? BindAction::Default
                                           : BindAction::RaiseException;
  }
  return BindAction::RaiseException;
}

}  // namespace mage::core
