// Target-selection policies for user-defined mobility attributes.
//
// The paper's Section 3.1 example defines a migration policy from load:
//
//     public Remote bind() {
//       if ( cloc.getLoad() > 100 ) {
//         target = selectNewHost();
//         ...
//
// These policies are the selectNewHost() building blocks.  Querying a
// remote node's load is a real protocol round trip (get_load), exactly as
// it would be in the Java system.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "rts/client.hpp"

namespace mage::core {

class TargetPolicy {
 public:
  virtual ~TargetPolicy() = default;

  // Picks a computation target among `candidates` (must be non-empty).
  [[nodiscard]] virtual common::NodeId select(
      rts::MageClient& client,
      const std::vector<common::NodeId>& candidates) = 0;
};

// Queries every candidate's load and picks the least loaded (ties broken
// by lower node id, deterministically).
class LeastLoadedPolicy : public TargetPolicy {
 public:
  [[nodiscard]] common::NodeId select(
      rts::MageClient& client,
      const std::vector<common::NodeId>& candidates) override;
};

// Cycles through the candidates.
class RoundRobinPolicy : public TargetPolicy {
 public:
  [[nodiscard]] common::NodeId select(
      rts::MageClient& client,
      const std::vector<common::NodeId>& candidates) override;

 private:
  std::size_t next_ = 0;
};

// Uniformly random candidate, drawn from the simulation's deterministic
// RNG.
class RandomPolicy : public TargetPolicy {
 public:
  [[nodiscard]] common::NodeId select(
      rts::MageClient& client,
      const std::vector<common::NodeId>& candidates) override;
};

// The paper's §3.1 policy: stay where the component is unless the current
// host's load exceeds `threshold`, then offload to the least loaded
// candidate.
class LoadThresholdPolicy : public TargetPolicy {
 public:
  explicit LoadThresholdPolicy(double threshold, common::NodeId current)
      : threshold_(threshold), current_(current) {}

  [[nodiscard]] common::NodeId select(
      rts::MageClient& client,
      const std::vector<common::NodeId>& candidates) override;

  void set_current(common::NodeId current) { current_ = current; }

 private:
  double threshold_;
  common::NodeId current_;
  LeastLoadedPolicy fallback_;
};

}  // namespace mage::core
