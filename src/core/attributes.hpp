// The built-in mobility attribute hierarchy (Section 3.5, Figure 5).
//
// MAGE ships attributes for every classical model — LPC, RPC, COD, REV,
// MA — plus the two models the paper derives from the design space: GREV
// (generalized remote evaluation, Section 3.3/Figure 2) and CLE
// (current-location evaluation, Figure 3).  "Mobility attributes differ
// mainly in their implementations of this bind method."
//
// COD and REV come in the three flavours Section 4.2 describes for
// class/object component pairs:
//   * Factory        — traditional: ship the class, instantiate a fresh
//                      object per bind;
//   * SingleUseFactory — first bind instantiates, later binds move that
//                      same object;
//   * Object         — bind directly to an existing object and move it.
#pragma once

#include <optional>
#include <vector>

#include "core/mobility_attribute.hpp"

namespace mage::core {

enum class FactoryMode { Object, Factory, SingleUseFactory };

// --- LPC ----------------------------------------------------------------------

// Plain local invocation; included because "programmers employ it in
// distributed systems wherever possible because of its inherent
// efficiency".  Throws CoercionError when the component is not local.
class Lpc : public MobilityAttribute {
 public:
  Lpc(rts::MageClient& client, common::ComponentName name);

  [[nodiscard]] Model model() const override { return Model::Lpc; }
  [[nodiscard]] common::NodeId target() const override {
    return client_.self();
  }

 protected:
  RemoteHandle do_bind() override;
};

// --- RPC -----------------------------------------------------------------------

// "We provided one anyway so that a programmer could use it to denote an
// immobile object.  MAGE RPC throws an exception if it does not find its
// object on its target."  Returns (and caches) a stub; never moves
// anything.
class Rpc : public MobilityAttribute {
 public:
  Rpc(rts::MageClient& client, common::ComponentName name,
      common::NodeId target);

  [[nodiscard]] Model model() const override { return Model::Rpc; }
  [[nodiscard]] common::NodeId target() const override { return target_; }

 protected:
  RemoteHandle do_bind() override;

 private:
  common::NodeId target_;
};

// --- COD ----------------------------------------------------------------------

// Code on demand: the computation target is always the caller's own
// namespace.  Factory flavours pull the class image from `source` and
// instantiate locally; the Object flavour pulls the bound object itself.
class Cod : public MobilityAttribute {
 public:
  // Object flavour: bind to an existing component and pull it local
  // (the paper's `new COD("geoData")`).
  Cod(rts::MageClient& client, common::ComponentName name);

  // Factory flavours: pull `class_name` from `source`, instantiate under
  // `object_name` locally.
  Cod(rts::MageClient& client, std::string class_name,
      common::ComponentName object_name, common::NodeId source,
      FactoryMode mode = FactoryMode::Factory);

  [[nodiscard]] Model model() const override { return Model::Cod; }
  [[nodiscard]] common::NodeId target() const override {
    return client_.self();
  }
  [[nodiscard]] FactoryMode mode() const { return mode_; }

 protected:
  RemoteHandle do_bind() override;

 private:
  std::string class_name_;
  common::NodeId source_ = common::kNoNode;
  FactoryMode mode_ = FactoryMode::Object;
};

// --- REV ----------------------------------------------------------------------

// Remote evaluation: push the component to the target and execute there.
// Single hop and synchronous (Section 3.5).  The factory form matches the
// paper's example: REV("GeoDataFilterImpl", "geoData", "sensor1").
class Rev : public MobilityAttribute {
 public:
  // Object flavour: move the existing component to `target`.
  Rev(rts::MageClient& client, common::ComponentName name,
      common::NodeId target);

  // Factory flavours: push `class_name` to `target`, instantiate there
  // under `object_name`.
  Rev(rts::MageClient& client, std::string class_name,
      common::ComponentName object_name, common::NodeId target,
      FactoryMode mode = FactoryMode::Factory);

  // "Programs can also dynamically rebind mobility attributes to modify
  // their distribution characteristics."
  void retarget(common::NodeId target) { target_ = target; }

  [[nodiscard]] Model model() const override { return Model::Rev; }
  [[nodiscard]] common::NodeId target() const override { return target_; }
  [[nodiscard]] FactoryMode mode() const { return mode_; }

 protected:
  RemoteHandle do_bind() override;

 private:
  RemoteHandle bind_factory();
  RemoteHandle bind_object();

  std::string class_name_;
  common::NodeId target_;
  FactoryMode mode_ = FactoryMode::Object;
};

// --- GREV --------------------------------------------------------------------

// Generalized remote evaluation (Section 3.3, Figure 2): "GREV moves its
// component to its target, regardless of whether the component was
// initially local or remote and whether the target is local or remote."
class Grev : public MobilityAttribute {
 public:
  Grev(rts::MageClient& client, common::ComponentName name,
       common::NodeId target);

  void retarget(common::NodeId target) { target_ = target; }

  [[nodiscard]] Model model() const override { return Model::Grev; }
  [[nodiscard]] common::NodeId target() const override { return target_; }

 protected:
  RemoteHandle do_bind() override;

 private:
  common::NodeId target_;
};

// --- CLE --------------------------------------------------------------------

// Current-location evaluation (Section 3.3, Figure 3): "CLE does not
// specify a computation target; rather, CLE evaluates its component in the
// namespace in which the component currently resides."  Its target is
// conceptually the set of all namespaces, so every bind is a fresh find.
class Cle : public MobilityAttribute {
 public:
  Cle(rts::MageClient& client, common::ComponentName name);

  [[nodiscard]] Model model() const override { return Model::Cle; }

 protected:
  RemoteHandle do_bind() override;
};

// --- MA ----------------------------------------------------------------------

// Mobile agent: multi-hop and asynchronous (Section 3.5).  Each bind moves
// the component to the next stop of its itinerary (weak migration: heap
// state only).  Invocations through the returned handle may be one-way;
// results stay at the remote host until fetched.
class MAgent : public MobilityAttribute {
 public:
  MAgent(rts::MageClient& client, common::ComponentName name,
         common::NodeId target);

  // Multi-hop form: bind() visits the itinerary stops in order.
  MAgent(rts::MageClient& client, common::ComponentName name,
         std::vector<common::NodeId> itinerary);

  void retarget(common::NodeId target);

  [[nodiscard]] Model model() const override { return Model::MobileAgent; }
  [[nodiscard]] common::NodeId target() const override;

  // Remaining itinerary stops (the next bind consumes the front).
  [[nodiscard]] std::size_t stops_remaining() const {
    return itinerary_.size() - next_stop_;
  }

 protected:
  RemoteHandle do_bind() override;

 private:
  std::vector<common::NodeId> itinerary_;
  std::size_t next_stop_ = 0;
};

}  // namespace mage::core
