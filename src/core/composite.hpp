// Composite mobility attributes.
//
// Section 3.6's CombinedMA shows the pattern: a user-defined attribute
// whose bind() selects among child attributes ("this mobility attribute
// would contain the three mobility attributes declared above").  This
// header provides the pattern as a library type, so applications can write
//
//   CompositeAttribute policy(client, "geoData",
//       [&](std::size_t n_binds) -> MobilityAttribute& {
//         return n_binds < sensors ? rev : cod;
//       });
//
// without subclassing.  The selector sees how many binds have happened and
// returns the child whose model should govern this invocation.
#pragma once

#include <functional>
#include <utility>

#include "core/mobility_attribute.hpp"

namespace mage::core {

class CompositeAttribute : public MobilityAttribute {
 public:
  // `select` receives the number of completed binds (0 for the first) and
  // returns the child attribute to delegate to.
  using Selector = std::function<MobilityAttribute&(std::size_t bind_count)>;

  CompositeAttribute(rts::MageClient& client, common::ComponentName name,
                     Selector select)
      : MobilityAttribute(client, std::move(name)),
        select_(std::move(select)) {}

  // The composite's own model is whatever the *next* child would use.
  [[nodiscard]] Model model() const override {
    return select_(bind_count_).model();
  }

  [[nodiscard]] common::NodeId target() const override {
    return select_(bind_count_).target();
  }

  [[nodiscard]] std::size_t bind_count() const { return bind_count_; }

 protected:
  RemoteHandle do_bind() override {
    MobilityAttribute& child = select_(bind_count_);
    auto handle = child.bind(name_);  // rebind the child to our component
    ++bind_count_;
    cloc_ = handle.location();
    return handle;
  }

 private:
  Selector select_;
  std::size_t bind_count_ = 0;
};

}  // namespace mage::core
