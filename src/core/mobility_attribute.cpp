#include "core/mobility_attribute.hpp"

namespace mage::core {

MobilityAttribute::MobilityAttribute(rts::MageClient& client,
                                     common::ComponentName name)
    : client_(client), name_(std::move(name)) {}

RemoteHandle MobilityAttribute::bind() {
  auto& stats = client_.simulation().stats();
  stats.add("core.binds");
  stats.add(std::string("core.binds.") + model_name(model()));
  return do_bind();
}

RemoteHandle MobilityAttribute::bind(const common::ComponentName& name) {
  if (name != name_) {
    name_ = name;
    cloc_ = common::kNoNode;  // the cached location belongs to the old name
  }
  return bind();
}

common::NodeId MobilityAttribute::find() {
  cloc_ = client_.find(name_);
  return cloc_;
}

bool MobilityAttribute::is_shared() const { return client_.is_shared(name_); }

common::NodeId MobilityAttribute::resolve() {
  if (!common::is_no_node(cloc_) && !is_shared()) {
    // Private object: only this activity moves it, so the cache is exact.
    // Re-validating the cached stub against the local registry still costs
    // a registry consult (the per-bind overhead visible in Table 3 as
    // MAGE RMI's +3 ms over plain Java RMI).
    client_.charge(
        client_.local_server().transport().network().cost_model()
            .registry_consult_us);
    return cloc_;
  }
  return find();
}

void MobilityAttribute::record_action(BindAction action) {
  auto& stats = client_.simulation().stats();
  stats.add(std::string("core.actions.") + model_name(model()) + "." +
            bind_action_name(action));
}

}  // namespace mage::core
