// The <Location, Target, Moves> design space (Section 3.2, Table 1).
//
// "The triple <Location, Target, Moves>, where Location, Target ∈ {remote,
// local, not specified} and Moves ∈ {yes, no}, uniquely specifies all
// distributed programming models discussed in this paper."  Mobility
// attributes are instances of these triples; the bench for Table 1
// enumerates the built-in attributes and prints theirs.
#pragma once

#include <string>

namespace mage::core {

enum class Locality { Local, Remote, Unspecified };

[[nodiscard]] const char* locality_name(Locality l);

// The classical models plus the two models the paper derives (Section 3.3).
enum class Model {
  Lpc,          // local procedure call
  Rpc,          // remote procedure call (client-server)
  Cod,          // code on demand
  Rev,          // remote evaluation
  Grev,         // generalized remote evaluation (paper's new model #1)
  Cle,          // current-location evaluation (paper's new model #2)
  MobileAgent,  // MA
};

[[nodiscard]] const char* model_name(Model m);

struct ModelTriple {
  Locality location = Locality::Unspecified;
  Locality target = Locality::Unspecified;
  bool moves = false;

  friend bool operator==(const ModelTriple&, const ModelTriple&) = default;
};

// The canonical triple of each model, exactly Table 1 (GREV's is derived
// from Section 3.3: any location, any target, always moves).
[[nodiscard]] ModelTriple canonical_triple(Model m);

[[nodiscard]] std::string to_string(const ModelTriple& t);

}  // namespace mage::core
