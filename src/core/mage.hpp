// Umbrella header: everything a MAGE application needs.
//
//   #include "core/mage.hpp"
//
//   mage::rts::MageSystem system;                  // the federation
//   auto lab = system.add_node("lab");
//   auto sensor = system.add_node("sensor1");
//   mage::rts::ClassBuilder<GeoDataFilter>(system.world(), "GeoDataFilter")
//       .method("filterData", &GeoDataFilter::filter_data);
//   auto& client = system.client(lab);
//   client.create_component("geoData", "GeoDataFilter");
//   mage::core::Rev rev(client, "GeoDataFilter", "geoData", sensor);
//   auto filter = rev.bind();
//   filter.invoke<double>("filterData");
#pragma once

#include "core/attributes.hpp"        // IWYU pragma: export
#include "core/coercion.hpp"          // IWYU pragma: export
#include "core/composite.hpp"         // IWYU pragma: export
#include "core/handle.hpp"            // IWYU pragma: export
#include "core/mobility_attribute.hpp"  // IWYU pragma: export
#include "core/model_triple.hpp"      // IWYU pragma: export
#include "core/policy.hpp"            // IWYU pragma: export
#include "core/mission.hpp"           // IWYU pragma: export
#include "core/restricted.hpp"        // IWYU pragma: export
#include "rts/system.hpp"             // IWYU pragma: export
