#include "core/attributes.hpp"

#include <utility>

#include "common/error.hpp"

namespace mage::core {
namespace {

// Resolves a component's class name from the shared static directory.
const std::string& class_of(rts::MageClient& client,
                            const common::ComponentName& name) {
  return client.directory().info(name).class_name;
}

}  // namespace

// --- LPC ---------------------------------------------------------------------

Lpc::Lpc(rts::MageClient& client, common::ComponentName name)
    : MobilityAttribute(client, std::move(name)) {}

RemoteHandle Lpc::do_bind() {
  const common::NodeId at = resolve();
  if (at != client_.self()) {
    record_action(BindAction::RaiseException);
    throw common::CoercionError(name_,
                                "LPC requires a local component, but it is "
                                "at node " +
                                    std::to_string(at.value()));
  }
  record_action(BindAction::Default);
  return handle_at(at);
}

// --- RPC ---------------------------------------------------------------------

Rpc::Rpc(rts::MageClient& client, common::ComponentName name,
         common::NodeId target)
    : MobilityAttribute(client, std::move(name)), target_(target) {}

RemoteHandle Rpc::do_bind() {
  const common::NodeId at = resolve();
  const auto action = CoercionPolicy::decide(
      Model::Rpc, CoercionPolicy::classify(at == client_.self() &&
                                               target_ != client_.self(),
                                           at == target_));
  record_action(action);
  if (action == BindAction::RaiseException) {
    throw common::CoercionError(
        name_, "RPC did not find its object on its target (object at node " +
                   std::to_string(at.value()) + ", target node " +
                   std::to_string(target_.value()) + ")");
  }
  // Default behaviour: hand back a stub to the immobile object.
  return handle_at(at);
}

// --- COD ---------------------------------------------------------------------

Cod::Cod(rts::MageClient& client, common::ComponentName name)
    : MobilityAttribute(client, std::move(name)) {}

Cod::Cod(rts::MageClient& client, std::string class_name,
         common::ComponentName object_name, common::NodeId source,
         FactoryMode mode)
    : MobilityAttribute(client, std::move(object_name)),
      class_name_(std::move(class_name)),
      source_(source),
      mode_(mode) {}

RemoteHandle Cod::do_bind() {
  if (mode_ == FactoryMode::Factory ||
      (mode_ == FactoryMode::SingleUseFactory &&
       common::is_no_node(cloc_))) {
    // Traditional COD: migrate the class image to the local host (a
    // revalidation round trip to the origin on every bind; the image bytes
    // only travel while the local cache is cold), instantiate locally.
    client_.fetch_class_to_local(source_, class_name_);
    client_.charge(client_.local_server().transport().network().cost_model()
                       .instantiate_us);
    client_.create_component(name_, class_name_, /*is_public=*/false);
    record_action(BindAction::Default);
    cloc_ = client_.self();
    return handle_at(cloc_);
  }

  // Object flavour (and SingleUseFactory after the first bind).
  const common::NodeId at = resolve();
  const auto action = CoercionPolicy::decide(
      Model::Cod,
      CoercionPolicy::classify(at == client_.self(), at == client_.self()));
  record_action(action);
  if (action == BindAction::CoerceToLpc) {
    return handle_at(at);  // already local: plain local calls
  }
  // Default behaviour: pull the object (class ships automatically when the
  // local cache lacks it).
  cloc_ = client_.move(name_, client_.self(), at);
  return handle_at(cloc_);
}

// --- REV ---------------------------------------------------------------------

Rev::Rev(rts::MageClient& client, common::ComponentName name,
         common::NodeId target)
    : MobilityAttribute(client, std::move(name)), target_(target) {}

Rev::Rev(rts::MageClient& client, std::string class_name,
         common::ComponentName object_name, common::NodeId target,
         FactoryMode mode)
    : MobilityAttribute(client, std::move(object_name)),
      class_name_(std::move(class_name)),
      target_(target),
      mode_(mode) {}

RemoteHandle Rev::do_bind() {
  if (mode_ == FactoryMode::Factory ||
      (mode_ == FactoryMode::SingleUseFactory &&
       common::is_no_node(cloc_))) {
    return bind_factory();
  }
  return bind_object();
}

RemoteHandle Rev::bind_factory() {
  // Traditional REV, the paper's four-RMI-call protocol: look up the remote
  // execution server's stub, revalidate/push the class, instantiate on the
  // target.  (The fourth call is the invocation the programmer makes
  // through the returned stub.)
  client_.resolve_server(target_);
  client_.ensure_class_at(target_, class_name_);
  client_.instantiate_at(target_, class_name_, name_);
  record_action(BindAction::Default);
  cloc_ = target_;
  return handle_at(target_);
}

RemoteHandle Rev::bind_object() {
  const common::NodeId at = resolve();
  const auto action = CoercionPolicy::decide(
      Model::Rev, CoercionPolicy::classify(
                      at == client_.self() && target_ != client_.self(),
                      at == target_));
  record_action(action);
  if (action == BindAction::CoerceToRpc) {
    return handle_at(at);  // already at the target: no move needed
  }
  // Default behaviour: single-hop synchronous move to the target.
  if (at == client_.self()) {
    client_.transfer_out(name_, target_);
  } else {
    client_.move(name_, target_, at);
  }
  cloc_ = target_;
  return handle_at(target_);
}

// --- GREV --------------------------------------------------------------------

Grev::Grev(rts::MageClient& client, common::ComponentName name,
           common::NodeId target)
    : MobilityAttribute(client, std::move(name)), target_(target) {}

RemoteHandle Grev::do_bind() {
  // "GREV moves its component to its target, regardless of whether the
  // component was initially local or remote and whether the target is
  // local or remote."  Figure 7's protocol: find (1-2), move request (3),
  // object send (4), ack (5); the invocation (6-7) follows through the
  // returned handle.
  const common::NodeId at = resolve();
  const auto action = CoercionPolicy::decide(
      Model::Grev,
      CoercionPolicy::classify(at == client_.self() &&
                                   target_ != client_.self(),
                               at == target_));
  record_action(action);
  if (action == BindAction::CoerceToRpc) {
    return handle_at(at);
  }
  if (at == client_.self()) {
    client_.transfer_out(name_, target_);
  } else {
    client_.move(name_, target_, at);
  }
  cloc_ = target_;
  return handle_at(target_);
}

// --- CLE ---------------------------------------------------------------------

Cle::Cle(rts::MageClient& client, common::ComponentName name)
    : MobilityAttribute(client, std::move(name)) {}

RemoteHandle Cle::do_bind() {
  // Always a fresh find: the component may have been moved by anyone since
  // the last bind — that is the point of CLE.
  const common::NodeId at = find();
  record_action(BindAction::Default);
  return handle_at(at);
}

// --- MA ----------------------------------------------------------------------

MAgent::MAgent(rts::MageClient& client, common::ComponentName name,
               common::NodeId target)
    : MobilityAttribute(client, std::move(name)), itinerary_{target} {}

MAgent::MAgent(rts::MageClient& client, common::ComponentName name,
               std::vector<common::NodeId> itinerary)
    : MobilityAttribute(client, std::move(name)),
      itinerary_(std::move(itinerary)) {
  if (itinerary_.empty()) {
    throw common::MageError("MAgent itinerary must not be empty");
  }
}

void MAgent::retarget(common::NodeId target) {
  itinerary_.push_back(target);
}

common::NodeId MAgent::target() const {
  const std::size_t i =
      next_stop_ < itinerary_.size() ? next_stop_ : itinerary_.size() - 1;
  return itinerary_[i];
}

RemoteHandle MAgent::do_bind() {
  const common::NodeId next = target();
  if (next_stop_ + 1 < itinerary_.size()) ++next_stop_;

  const common::NodeId at = resolve();
  const auto action = CoercionPolicy::decide(
      Model::MobileAgent,
      CoercionPolicy::classify(at == client_.self() &&
                                   next != client_.self(),
                               at == next));
  record_action(action);
  if (action == BindAction::CoerceToRpc) {
    cloc_ = at;
    return handle_at(at);
  }

  // Weak migration of the agent: make sure the next stop can host it
  // (class revalidation/push), then ship heap state.
  client_.ensure_class_at(next, class_of(client_, name_));
  if (at == client_.self()) {
    client_.transfer_out(name_, next);
  } else {
    client_.move(name_, next, at);
  }
  cloc_ = next;
  return handle_at(next);
}

}  // namespace mage::core
