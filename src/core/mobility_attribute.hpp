// MobilityAttribute: the paper's central abstraction (Sections 3.1, 3.5).
//
// "Mobility attributes are first class objects that bind to program
// components.  A mobility attribute intercepts invocation requests on the
// components to which it has been bound.  For a given network
// configuration, mobility attributes describe where their component should
// execute.  If necessary, the component moves before executing."
//
// Usage mirrors the paper exactly:
//
//     Rev rev(client, "GeoDataFilterImpl", "geoData", sensor1);
//     auto filter = rev.bind();
//     filter.invoke<double>("filterData");
//
// bind() is where the programming-model decision happens: the attribute
// finds its component, classifies the configuration against its model,
// applies mobility coercion (Table 2), moves the component when its model
// says so, and returns a stub.  Programmers define new models (like the
// paper's CombinedMA) by subclassing and overriding do_bind().
#pragma once

#include <string>

#include "core/coercion.hpp"
#include "core/handle.hpp"
#include "core/model_triple.hpp"
#include "rts/client.hpp"

namespace mage::core {

class MobilityAttribute {
 public:
  MobilityAttribute(rts::MageClient& client, common::ComponentName name);
  virtual ~MobilityAttribute() = default;

  MobilityAttribute(const MobilityAttribute&) = delete;
  MobilityAttribute& operator=(const MobilityAttribute&) = delete;

  // Finds the component, applies this attribute's mobility semantics
  // (moving the component when required), and returns a stub.
  RemoteHandle bind();

  // The paper's `bind(String n)`: rebinds this attribute to a different
  // component, then binds.
  RemoteHandle bind(const common::ComponentName& name);

  // The paper's `find()`: resolves the component's current location.
  // Shared (public) objects are re-found on every call because another
  // activity may have moved them; for private objects the cached cloc
  // "always accurately represents the bound object's current location".
  common::NodeId find();

  // The paper's `isShared()`.
  [[nodiscard]] bool is_shared() const;

  [[nodiscard]] virtual Model model() const = 0;

  // The attribute's point in the <Location, Target, Moves> design space.
  [[nodiscard]] virtual ModelTriple triple() const {
    return canonical_triple(model());
  }

  // The computation target, kNoNode when the model leaves it unspecified
  // (CLE) or the caller's namespace is implied (COD, LPC).
  [[nodiscard]] virtual common::NodeId target() const {
    return common::kNoNode;
  }

  [[nodiscard]] const common::ComponentName& name() const { return name_; }
  [[nodiscard]] common::NodeId cloc() const { return cloc_; }
  [[nodiscard]] rts::MageClient& client() { return client_; }

 protected:
  // Model-specific bind behaviour; called by bind() after accounting.
  virtual RemoteHandle do_bind() = 0;

  // Resolves the component per the paper's find() semantics (see find()).
  common::NodeId resolve();

  [[nodiscard]] RemoteHandle handle_at(common::NodeId at) {
    return RemoteHandle(&client_, name_, at);
  }

  // Records the coercion outcome in the stats registry (feeds the Table 2
  // bench and the attribute-metrics counters).
  void record_action(BindAction action);

  rts::MageClient& client_;
  common::ComponentName name_;
  common::NodeId cloc_ = common::kNoNode;
};

}  // namespace mage::core
