#include "core/model_triple.hpp"

namespace mage::core {

const char* locality_name(Locality l) {
  switch (l) {
    case Locality::Local:
      return "local";
    case Locality::Remote:
      return "remote";
    case Locality::Unspecified:
      return "not specified";
  }
  return "?";
}

const char* model_name(Model m) {
  switch (m) {
    case Model::Lpc:
      return "LPC";
    case Model::Rpc:
      return "RPC";
    case Model::Cod:
      return "COD";
    case Model::Rev:
      return "REV";
    case Model::Grev:
      return "GREV";
    case Model::Cle:
      return "CLE";
    case Model::MobileAgent:
      return "MA";
  }
  return "?";
}

ModelTriple canonical_triple(Model m) {
  switch (m) {
    case Model::Lpc:
      return {Locality::Local, Locality::Local, false};
    case Model::Rpc:
      return {Locality::Remote, Locality::Remote, false};
    case Model::Cod:
      return {Locality::Remote, Locality::Local, true};
    case Model::Rev:
      return {Locality::Local, Locality::Remote, true};
    case Model::Grev:
      return {Locality::Unspecified, Locality::Unspecified, true};
    case Model::Cle:
      return {Locality::Unspecified, Locality::Unspecified, false};
    case Model::MobileAgent:
      return {Locality::Remote, Locality::Remote, true};
  }
  return {};
}

std::string to_string(const ModelTriple& t) {
  return std::string("<") + locality_name(t.location) + ", " +
         locality_name(t.target) + ", " + (t.moves ? "yes" : "no") + ">";
}

}  // namespace mage::core
