// Replicated directory service ("directors") + its client.
//
// The static rts::Directory is deployment-time bootstrap: a table every
// node is born with.  It has no availability story — if a component's home
// crashes and its forwarding chain dies with it, a static entry pointing
// at the dead home is a dead end.  The director quorum is the
// high-availability layer on top:
//
//   * N director nodes each hold a full copy of the placement records
//     (name -> host @ epoch);
//   * one of them is leader (rts::Election, deterministic in sim time);
//   * writes (dir.announce) go to the leader, which applies and replicates
//     them to the followers (dir.replicate, fire-and-forget — epoch-fenced
//     records are idempotent, so replication needs no ordering or acks:
//     the highest epoch wins no matter the arrival order);
//   * reads (dir.resolve) are answered by ANY member from its local copy.
//     A follower's copy may trail the leader by an in-flight replication,
//     which the reader's own epoch fence detects (MageClient ignores
//     resolutions older than what it has already confirmed).
//
// A non-leader answers an announce with Moved + its leader hint, which
// DirectoryClient's failover sweep chases.  The whole subsystem is opt-in:
// nothing instantiates a Director unless the test/bench builds one, so
// existing deployments keep their pure static-directory behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "rmi/channel.hpp"
#include "rmi/transport.hpp"
#include "rts/election.hpp"
#include "rts/protocol.hpp"

namespace mage::rts {

// One member of the director quorum; lives on its own node's transport.
class Director {
 public:
  Director(rmi::Transport& transport, std::vector<common::NodeId> members,
           Election::Config config = {});

  Director(const Director&) = delete;
  Director& operator=(const Director&) = delete;

  // Registers the directory services and starts the election.  Call once,
  // before the simulation runs.
  void start();

  [[nodiscard]] Election& election() { return election_; }
  [[nodiscard]] common::NodeId self() const { return transport_.self(); }

  // Driver-side bootstrap: installs a record before the run starts (the
  // deployment-time equivalent of the static Directory's initial table).
  // Seed every member identically.
  void seed(const proto::PlacementRecord& record);

  [[nodiscard]] const std::map<common::ComponentName, proto::PlacementRecord>&
  records() const {
    return records_;
  }

 private:
  // Applies a record iff it is newer than what we hold; returns the epoch
  // now stored under that name.
  std::uint64_t apply(const proto::PlacementRecord& record);
  void replicate(const proto::PlacementRecord& record);
  void handle_announce(common::NodeId caller, const serial::BufferChain& body,
                       rmi::Replier replier);
  void handle_resolve(common::NodeId caller, const serial::BufferChain& body,
                      rmi::Replier replier);
  void handle_replicate(common::NodeId caller, const serial::BufferChain& body,
                        rmi::Replier replier);
  [[nodiscard]] sim::Simulation& sim();

  rmi::Transport& transport_;
  Election election_;
  std::map<common::ComponentName, proto::PlacementRecord> records_;
  std::int64_t* announces_;     // "rts.dir_announces"
  std::int64_t* resolves_;      // "rts.dir_resolves"
  std::int64_t* replications_;  // "rts.dir_replications"
};

// Client-side view of the quorum: resolve/announce with leader-chasing
// failover.  One per node that needs HA naming (wired into MageClient via
// set_directory_client, or used directly by benches/tests).
class DirectoryClient {
 public:
  struct Resolution {
    common::NodeId host = common::kNoNode;
    std::uint64_t epoch = 0;
  };

  // The sweep is driven by one rmi::CallPolicy (attempt timeout /
  // transmissions, rounds = max_retries + 1, inter-round backoff); the
  // default is the quorum preset that matches the legacy knobs exactly.
  DirectoryClient(rmi::Transport& transport,
                  std::vector<common::NodeId> directors,
                  rmi::CallPolicy policy = rmi::CallPolicy::quorum());

  // Asynchronous resolve: `done(resolution)` fires exactly once; nullopt
  // when no reachable member has a record (or the quorum is unreachable).
  void resolve(const common::ComponentName& name,
               std::function<void(std::optional<Resolution>)> done);

  // Asynchronous announce: `done(accepted)` fires exactly once.
  void announce(const proto::PlacementRecord& record,
                std::function<void(bool)> done);

  // Synchronous variants for driver-side code (run the event loop until
  // the group call completes; usable only where call_sync is).
  std::optional<Resolution> resolve_sync(const common::ComponentName& name);
  bool announce_sync(const proto::PlacementRecord& record);

  [[nodiscard]] common::NodeId known_leader() const {
    return channel_.preferred();
  }
  // Steers the next sweep (tests use this to start at a known-dead member;
  // normal operation learns the leader from replies).
  void set_preferred(common::NodeId node) { channel_.set_preferred(node); }
  [[nodiscard]] const rmi::CallPolicy& policy() const {
    return channel_.policy();
  }

 private:
  [[nodiscard]] sim::Simulation& sim();

  rmi::Transport& transport_;
  rmi::FailoverChannel channel_;
};

}  // namespace mage::rts
