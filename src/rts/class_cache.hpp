// Per-namespace class cache.
//
// "MAGE currently clones classes, leaving behind a copy of each object's
// class that visited a particular node.  Caching class definitions in this
// way is an optimization that can speed up object migration."
// (Section 4.2.)  The cache records which class images this namespace has
// received; instantiation and deserialization require the image.  The
// `caching_enabled` switch implements the paper's implied ablation: with
// caching off, every arrival re-ships the class image.
#pragma once

#include <set>
#include <string>

namespace mage::rts {

class ClassCache {
 public:
  // A node is born with the classes "on its classpath" — installed at
  // deployment time rather than shipped (see MageSystem::install_class).
  void install(const std::string& class_name) { cached_.insert(class_name); }

  // Records receipt of a shipped class image.  With caching disabled the
  // image is used once and forgotten, forcing a re-fetch next time.
  void on_image_received(const std::string& class_name) {
    if (caching_enabled_) cached_.insert(class_name);
  }

  [[nodiscard]] bool has(const std::string& class_name) const {
    return cached_.contains(class_name);
  }

  void set_caching_enabled(bool enabled) { caching_enabled_ = enabled; }
  [[nodiscard]] bool caching_enabled() const { return caching_enabled_; }

  [[nodiscard]] std::size_t size() const { return cached_.size(); }

 private:
  std::set<std::string> cached_;
  bool caching_enabled_ = true;
};

}  // namespace mage::rts
