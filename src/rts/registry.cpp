#include "rts/registry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mage::rts {

void Registry::bind(const common::ComponentName& name,
                    std::unique_ptr<MageObject> object, std::uint64_t epoch) {
  objects_[name] = std::move(object);
  forwards_.erase(name);
  auto& known = epochs_[name];
  known = std::max({known, epoch, std::uint64_t{1}});
}

std::unique_ptr<MageObject> Registry::unbind(
    const common::ComponentName& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw common::NotFoundError(name, "unbind: not bound in this namespace");
  }
  auto object = std::move(it->second);
  objects_.erase(it);
  return object;
}

MageObject& Registry::local(const common::ComponentName& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw common::NotFoundError(name, "not bound in this namespace");
  }
  return *it->second;
}

std::vector<common::ComponentName> Registry::local_names() const {
  std::vector<common::ComponentName> names;
  names.reserve(objects_.size());
  for (const auto& [name, object] : objects_) names.push_back(name);
  return names;
}

void Registry::update_forward(const common::ComponentName& name,
                              common::NodeId to) {
  if (to == self_) {
    forwards_.erase(name);
    return;
  }
  forwards_[name] = to;
}

bool Registry::update_forward(const common::ComponentName& name,
                              common::NodeId to, std::uint64_t epoch) {
  auto& known = epochs_[name];
  if (epoch < known) return false;  // stale placement knowledge — ignored
  known = epoch;
  update_forward(name, to);
  return true;
}

std::uint64_t Registry::epoch_of(const common::ComponentName& name) const {
  const auto it = epochs_.find(name);
  return it == epochs_.end() ? 0 : it->second;
}

std::optional<common::NodeId> Registry::forward(
    const common::ComponentName& name) const {
  auto it = forwards_.find(name);
  if (it == forwards_.end()) return std::nullopt;
  return it->second;
}

void Registry::park_result(const common::ComponentName& name,
                           serial::Buffer result) {
  results_[name] = std::move(result);
}

std::optional<serial::Buffer> Registry::take_result(
    const common::ComponentName& name) {
  auto it = results_.find(name);
  if (it == results_.end()) return std::nullopt;
  auto result = std::move(it->second);
  results_.erase(it);
  return result;
}

}  // namespace mage::rts
