#include "rts/system.hpp"

#include <cassert>
#include <sstream>

namespace mage::rts {

MageSystem::MageSystem(net::CostModel model, std::uint64_t seed)
    : sim_(seed), network_(sim_, model) {}

common::NodeId MageSystem::add_node(const std::string& label) {
  const common::NodeId id = network_.add_node(label);
  NodeRuntime runtime;
  runtime.transport = std::make_unique<rmi::Transport>(network_, id);
  runtime.server =
      std::make_unique<MageServer>(*runtime.transport, world_, directory_);
  runtime.client = std::make_unique<MageClient>(
      *runtime.transport, *runtime.server, directory_, world_,
      common::ActivityId{next_activity_++});
  runtimes_.push_back(std::move(runtime));
  return id;
}

MageSystem::NodeRuntime& MageSystem::runtime(common::NodeId node) {
  assert(node.value() >= 1 && node.value() <= runtimes_.size());
  return runtimes_[node.value() - 1];
}

const MageSystem::NodeRuntime& MageSystem::runtime(
    common::NodeId node) const {
  assert(node.value() >= 1 && node.value() <= runtimes_.size());
  return runtimes_[node.value() - 1];
}

MageServer& MageSystem::server(common::NodeId node) {
  return *runtime(node).server;
}

MageClient& MageSystem::client(common::NodeId node) {
  return *runtime(node).client;
}

rmi::Transport& MageSystem::transport(common::NodeId node) {
  return *runtime(node).transport;
}

void MageSystem::install_class(common::NodeId node,
                               const std::string& class_name) {
  server(node).class_cache().install(class_name);
}

void MageSystem::install_class_everywhere(const std::string& class_name) {
  for (auto node : nodes()) install_class(node, class_name);
}

void MageSystem::assign_domain(common::NodeId node,
                               const std::string& domain) {
  network_.set_domain(node, domain);
  refresh_domain_latencies();
}

void MageSystem::set_interdomain_latency(common::SimDuration extra_us) {
  interdomain_latency_us_ = extra_us;
  refresh_domain_latencies();
}

void MageSystem::refresh_domain_latencies() {
  for (auto a : nodes()) {
    for (auto b : nodes()) {
      if (a == b) continue;
      const bool cross = network_.domain(a) != network_.domain(b);
      network_.set_extra_latency(a, b,
                                 cross ? interdomain_latency_us_ : 0);
    }
  }
}

std::vector<common::NodeId> MageSystem::nodes_in_domain(
    const std::string& domain) const {
  std::vector<common::NodeId> members;
  for (auto node : network_.node_ids()) {
    if (network_.domain(node) == domain) members.push_back(node);
  }
  return members;
}

void MageSystem::warm_all() {
  for (auto node : nodes()) server(node).set_warmed(true);
}

std::string MageSystem::describe() const {
  std::ostringstream os;
  os << "MAGE federation: " << runtimes_.size() << " namespaces, "
     << directory_.size() << " components announced\n";
  for (std::uint32_t i = 1; i <= runtimes_.size(); ++i) {
    const common::NodeId id{i};
    const auto& rt = runtime(id);
    os << "  [" << network_.label(id) << "] node " << i << ":";
    os << " objects={";
    bool first = true;
    for (const auto& name : rt.server->registry().local_names()) {
      os << (first ? "" : ", ") << name;
      first = false;
    }
    os << "} classes_cached=" << rt.server->class_cache().size()
       << (rt.server->warmed() ? " warm" : " cold") << "\n";
  }
  return os.str();
}

}  // namespace mage::rts
