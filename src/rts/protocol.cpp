#include "rts/protocol.hpp"

namespace mage::rts::proto {

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok:
      return "Ok";
    case Status::Moved:
      return "Moved";
    case Status::NotFound:
      return "NotFound";
    case Status::Error:
      return "Error";
  }
  return "?";
}

void put_node(serial::Writer& w, common::NodeId n) { w.write_u32(n.value()); }

common::NodeId get_node(serial::Reader& r) {
  return common::NodeId{r.read_u32()};
}

namespace {

serial::Reader make_reader(const serial::Buffer& bytes) {
  return serial::Reader(bytes);
}

}  // namespace

// --- LookupRequest -----------------------------------------------------------

serial::Buffer LookupRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_u32(hops);
  return w.take();
}

LookupRequest LookupRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  LookupRequest v;
  v.name = r.read_string();
  v.hops = r.read_u32();
  return v;
}

// --- LookupReply ---------------------------------------------------------------

serial::Buffer LookupReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, host);
  w.write_string(error);
  return w.take();
}

LookupReply LookupReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  LookupReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.host = get_node(r);
  v.error = r.read_string();
  return v;
}

// --- ClassCheckRequest / Reply --------------------------------------------------

serial::Buffer ClassCheckRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  return w.take();
}

ClassCheckRequest ClassCheckRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  return ClassCheckRequest{r.read_string()};
}

serial::Buffer ClassCheckReply::encode() const {
  serial::Writer w;
  w.write_bool(cached);
  return w.take();
}

ClassCheckReply ClassCheckReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  return ClassCheckReply{r.read_bool()};
}

// --- FetchClassRequest / ClassImage / LoadClassRequest ---------------------------

serial::Buffer FetchClassRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  return w.take();
}

FetchClassRequest FetchClassRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  return FetchClassRequest{r.read_string()};
}

serial::Buffer ClassImage::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_u32(code_size);
  // Filler standing in for the class file's bytecode so the simulated wire
  // pays the real transfer cost.
  const std::vector<std::uint8_t> filler(code_size, 0xCA);
  w.write_raw(filler.data(), filler.size());
  return w.take();
}

ClassImage ClassImage::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  ClassImage v;
  v.class_name = r.read_string();
  v.code_size = r.read_u32();
  std::vector<std::uint8_t> filler(v.code_size);
  if (v.code_size > 0) r.read_raw(filler.data(), filler.size());
  return v;
}

serial::Buffer LoadClassRequest::encode() const {
  return image.encode();
}

LoadClassRequest LoadClassRequest::decode(const serial::Buffer& bytes) {
  return LoadClassRequest{ClassImage::decode(bytes)};
}

// --- InstantiateRequest ---------------------------------------------------------

serial::Buffer InstantiateRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(object_name);
  w.write_bool(is_public);
  put_node(w, class_source);
  return w.take();
}

InstantiateRequest InstantiateRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  InstantiateRequest v;
  v.class_name = r.read_string();
  v.object_name = r.read_string();
  v.is_public = r.read_bool();
  v.class_source = get_node(r);
  return v;
}

// --- SimpleReply ------------------------------------------------------------------

serial::Buffer SimpleReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_string(error);
  return w.take();
}

SimpleReply SimpleReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  SimpleReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.error = r.read_string();
  return v;
}

// --- MoveRequest -------------------------------------------------------------------

serial::Buffer MoveRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  put_node(w, to);
  return w.take();
}

MoveRequest MoveRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  MoveRequest v;
  v.name = r.read_string();
  v.to = get_node(r);
  return v;
}

// --- TransferRequest ----------------------------------------------------------------

serial::Buffer TransferRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_string(class_name);
  w.write_bool(is_public);
  w.write_bytes(state.span());
  return w.take();
}

TransferRequest TransferRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  TransferRequest v;
  v.name = r.read_string();
  v.class_name = r.read_string();
  v.is_public = r.read_bool();
  v.state = r.read_bytes();
  return v;
}

// --- InvokeRequest / InvokeReply ------------------------------------------------------

serial::Buffer InvokeRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_string(method);
  w.write_bytes(args.span());
  return w.take();
}

InvokeRequest InvokeRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  InvokeRequest v;
  v.name = r.read_string();
  v.method = r.read_string();
  v.args = r.read_bytes();
  return v;
}

serial::Buffer InvokeReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_string(error);
  w.write_bytes(result.span());
  return w.take();
}

InvokeReply InvokeReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  InvokeReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.error = r.read_string();
  v.result = r.read_bytes();
  return v;
}

// --- FetchResultRequest ------------------------------------------------------------

serial::Buffer FetchResultRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  return w.take();
}

FetchResultRequest FetchResultRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  return FetchResultRequest{r.read_string()};
}

// --- LockRequest / LockReply / UnlockRequest -------------------------------------------

serial::Buffer LockRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  put_node(w, target);
  w.write_u64(activity);
  return w.take();
}

LockRequest LockRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  LockRequest v;
  v.name = r.read_string();
  v.target = get_node(r);
  v.activity = r.read_u64();
  return v;
}

serial::Buffer LockReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_u64(lock_id);
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_string(error);
  return w.take();
}

LockReply LockReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  LockReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.lock_id = r.read_u64();
  v.kind = static_cast<LockKind>(r.read_u8());
  v.error = r.read_string();
  return v;
}

serial::Buffer UnlockRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_u64(lock_id);
  return w.take();
}

UnlockRequest UnlockRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  UnlockRequest v;
  v.name = r.read_string();
  v.lock_id = r.read_u64();
  return v;
}

// --- StaticGetRequest / StaticPutRequest -----------------------------------------------

serial::Buffer StaticGetRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(key);
  return w.take();
}

StaticGetRequest StaticGetRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  StaticGetRequest v;
  v.class_name = r.read_string();
  v.key = r.read_string();
  return v;
}

serial::Buffer StaticPutRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(key);
  w.write_bytes(value.span());
  return w.take();
}

StaticPutRequest StaticPutRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  StaticPutRequest v;
  v.class_name = r.read_string();
  v.key = r.read_string();
  v.value = r.read_bytes();
  return v;
}

// --- ExecRequest ----------------------------------------------------------------------

serial::Buffer ExecRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(object_name);
  w.write_string(method);
  w.write_bytes(args.span());
  put_node(w, class_source);
  return w.take();
}

ExecRequest ExecRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  ExecRequest v;
  v.class_name = r.read_string();
  v.object_name = r.read_string();
  v.method = r.read_string();
  v.args = r.read_bytes();
  v.class_source = get_node(r);
  return v;
}

// --- DiscoverRequest / DiscoverReply ---------------------------------------------------

serial::Buffer DiscoverRequest::encode() const {
  serial::Writer w;
  w.write_string(kind);
  return w.take();
}

DiscoverRequest DiscoverRequest::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  return DiscoverRequest{r.read_string()};
}

serial::Buffer DiscoverReply::encode() const {
  serial::Writer w;
  w.write_bool(offers);
  w.write_f64(capacity);
  return w.take();
}

DiscoverReply DiscoverReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  DiscoverReply v;
  v.offers = r.read_bool();
  v.capacity = r.read_f64();
  return v;
}

// --- LoadReply ------------------------------------------------------------------------

serial::Buffer LoadReply::encode() const {
  serial::Writer w;
  w.write_f64(load);
  return w.take();
}

LoadReply LoadReply::decode(const serial::Buffer& bytes) {
  auto r = make_reader(bytes);
  return LoadReply{r.read_f64()};
}

}  // namespace mage::rts::proto
