#include "rts/protocol.hpp"

namespace mage::rts::proto {

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok:
      return "Ok";
    case Status::Moved:
      return "Moved";
    case Status::NotFound:
      return "NotFound";
    case Status::Error:
      return "Error";
  }
  return "?";
}

void put_node(serial::Writer& w, common::NodeId n) { w.write_u32(n.value()); }

common::NodeId get_node(serial::Reader& r) {
  return common::NodeId{r.read_u32()};
}

namespace {

serial::Reader make_reader(const std::vector<std::uint8_t>& bytes) {
  return serial::Reader(bytes);
}

}  // namespace

// --- LookupRequest -----------------------------------------------------------

std::vector<std::uint8_t> LookupRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_u32(hops);
  return w.take();
}

LookupRequest LookupRequest::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  LookupRequest v;
  v.name = r.read_string();
  v.hops = r.read_u32();
  return v;
}

// --- LookupReply ---------------------------------------------------------------

std::vector<std::uint8_t> LookupReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, host);
  w.write_string(error);
  return w.take();
}

LookupReply LookupReply::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  LookupReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.host = get_node(r);
  v.error = r.read_string();
  return v;
}

// --- ClassCheckRequest / Reply --------------------------------------------------

std::vector<std::uint8_t> ClassCheckRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  return w.take();
}

ClassCheckRequest ClassCheckRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  return ClassCheckRequest{r.read_string()};
}

std::vector<std::uint8_t> ClassCheckReply::encode() const {
  serial::Writer w;
  w.write_bool(cached);
  return w.take();
}

ClassCheckReply ClassCheckReply::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  return ClassCheckReply{r.read_bool()};
}

// --- FetchClassRequest / ClassImage / LoadClassRequest ---------------------------

std::vector<std::uint8_t> FetchClassRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  return w.take();
}

FetchClassRequest FetchClassRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  return FetchClassRequest{r.read_string()};
}

std::vector<std::uint8_t> ClassImage::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_u32(code_size);
  // Filler standing in for the class file's bytecode so the simulated wire
  // pays the real transfer cost.
  const std::vector<std::uint8_t> filler(code_size, 0xCA);
  w.write_raw(filler.data(), filler.size());
  return w.take();
}

ClassImage ClassImage::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  ClassImage v;
  v.class_name = r.read_string();
  v.code_size = r.read_u32();
  std::vector<std::uint8_t> filler(v.code_size);
  if (v.code_size > 0) r.read_raw(filler.data(), filler.size());
  return v;
}

std::vector<std::uint8_t> LoadClassRequest::encode() const {
  return image.encode();
}

LoadClassRequest LoadClassRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  return LoadClassRequest{ClassImage::decode(bytes)};
}

// --- InstantiateRequest ---------------------------------------------------------

std::vector<std::uint8_t> InstantiateRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(object_name);
  w.write_bool(is_public);
  put_node(w, class_source);
  return w.take();
}

InstantiateRequest InstantiateRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  InstantiateRequest v;
  v.class_name = r.read_string();
  v.object_name = r.read_string();
  v.is_public = r.read_bool();
  v.class_source = get_node(r);
  return v;
}

// --- SimpleReply ------------------------------------------------------------------

std::vector<std::uint8_t> SimpleReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_string(error);
  return w.take();
}

SimpleReply SimpleReply::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  SimpleReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.error = r.read_string();
  return v;
}

// --- MoveRequest -------------------------------------------------------------------

std::vector<std::uint8_t> MoveRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  put_node(w, to);
  return w.take();
}

MoveRequest MoveRequest::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  MoveRequest v;
  v.name = r.read_string();
  v.to = get_node(r);
  return v;
}

// --- TransferRequest ----------------------------------------------------------------

std::vector<std::uint8_t> TransferRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_string(class_name);
  w.write_bool(is_public);
  w.write_u32(static_cast<std::uint32_t>(state.size()));
  if (!state.empty()) w.write_raw(state.data(), state.size());
  return w.take();
}

TransferRequest TransferRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  TransferRequest v;
  v.name = r.read_string();
  v.class_name = r.read_string();
  v.is_public = r.read_bool();
  const std::uint32_t n = r.read_u32();
  v.state.resize(n);
  if (n > 0) r.read_raw(v.state.data(), n);
  return v;
}

// --- InvokeRequest / InvokeReply ------------------------------------------------------

std::vector<std::uint8_t> InvokeRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_string(method);
  w.write_u32(static_cast<std::uint32_t>(args.size()));
  if (!args.empty()) w.write_raw(args.data(), args.size());
  return w.take();
}

InvokeRequest InvokeRequest::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  InvokeRequest v;
  v.name = r.read_string();
  v.method = r.read_string();
  const std::uint32_t n = r.read_u32();
  v.args.resize(n);
  if (n > 0) r.read_raw(v.args.data(), n);
  return v;
}

std::vector<std::uint8_t> InvokeReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_string(error);
  w.write_u32(static_cast<std::uint32_t>(result.size()));
  if (!result.empty()) w.write_raw(result.data(), result.size());
  return w.take();
}

InvokeReply InvokeReply::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  InvokeReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.error = r.read_string();
  const std::uint32_t n = r.read_u32();
  v.result.resize(n);
  if (n > 0) r.read_raw(v.result.data(), n);
  return v;
}

// --- FetchResultRequest ------------------------------------------------------------

std::vector<std::uint8_t> FetchResultRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  return w.take();
}

FetchResultRequest FetchResultRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  return FetchResultRequest{r.read_string()};
}

// --- LockRequest / LockReply / UnlockRequest -------------------------------------------

std::vector<std::uint8_t> LockRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  put_node(w, target);
  w.write_u64(activity);
  return w.take();
}

LockRequest LockRequest::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  LockRequest v;
  v.name = r.read_string();
  v.target = get_node(r);
  v.activity = r.read_u64();
  return v;
}

std::vector<std::uint8_t> LockReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_u64(lock_id);
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_string(error);
  return w.take();
}

LockReply LockReply::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  LockReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.lock_id = r.read_u64();
  v.kind = static_cast<LockKind>(r.read_u8());
  v.error = r.read_string();
  return v;
}

std::vector<std::uint8_t> UnlockRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_u64(lock_id);
  return w.take();
}

UnlockRequest UnlockRequest::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  UnlockRequest v;
  v.name = r.read_string();
  v.lock_id = r.read_u64();
  return v;
}

// --- StaticGetRequest / StaticPutRequest -----------------------------------------------

std::vector<std::uint8_t> StaticGetRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(key);
  return w.take();
}

StaticGetRequest StaticGetRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  StaticGetRequest v;
  v.class_name = r.read_string();
  v.key = r.read_string();
  return v;
}

std::vector<std::uint8_t> StaticPutRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(key);
  w.write_u32(static_cast<std::uint32_t>(value.size()));
  if (!value.empty()) w.write_raw(value.data(), value.size());
  return w.take();
}

StaticPutRequest StaticPutRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  StaticPutRequest v;
  v.class_name = r.read_string();
  v.key = r.read_string();
  const std::uint32_t n = r.read_u32();
  v.value.resize(n);
  if (n > 0) r.read_raw(v.value.data(), n);
  return v;
}

// --- ExecRequest ----------------------------------------------------------------------

std::vector<std::uint8_t> ExecRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(object_name);
  w.write_string(method);
  w.write_u32(static_cast<std::uint32_t>(args.size()));
  if (!args.empty()) w.write_raw(args.data(), args.size());
  put_node(w, class_source);
  return w.take();
}

ExecRequest ExecRequest::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  ExecRequest v;
  v.class_name = r.read_string();
  v.object_name = r.read_string();
  v.method = r.read_string();
  const std::uint32_t n = r.read_u32();
  v.args.resize(n);
  if (n > 0) r.read_raw(v.args.data(), n);
  v.class_source = get_node(r);
  return v;
}

// --- DiscoverRequest / DiscoverReply ---------------------------------------------------

std::vector<std::uint8_t> DiscoverRequest::encode() const {
  serial::Writer w;
  w.write_string(kind);
  return w.take();
}

DiscoverRequest DiscoverRequest::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  return DiscoverRequest{r.read_string()};
}

std::vector<std::uint8_t> DiscoverReply::encode() const {
  serial::Writer w;
  w.write_bool(offers);
  w.write_f64(capacity);
  return w.take();
}

DiscoverReply DiscoverReply::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  DiscoverReply v;
  v.offers = r.read_bool();
  v.capacity = r.read_f64();
  return v;
}

// --- LoadReply ------------------------------------------------------------------------

std::vector<std::uint8_t> LoadReply::encode() const {
  serial::Writer w;
  w.write_f64(load);
  return w.take();
}

LoadReply LoadReply::decode(const std::vector<std::uint8_t>& bytes) {
  auto r = make_reader(bytes);
  return LoadReply{r.read_f64()};
}

}  // namespace mage::rts::proto
