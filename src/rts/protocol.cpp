#include "rts/protocol.hpp"

namespace mage::rts::proto {

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok:
      return "Ok";
    case Status::Moved:
      return "Moved";
    case Status::NotFound:
      return "NotFound";
    case Status::Error:
      return "Error";
  }
  return "?";
}

void put_node(serial::Writer& w, common::NodeId n) { w.write_u32(n.value()); }
void put_node(serial::ChainWriter& w, common::NodeId n) {
  w.write_u32(n.value());
}

common::NodeId get_node(serial::ChainReader& r) {
  return common::NodeId{r.read_u32()};
}

// --- LookupRequest -----------------------------------------------------------

serial::Buffer LookupRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_u32(hops);
  w.write_u64(min_epoch);
  return w.take();
}

LookupRequest LookupRequest::decode(serial::ChainReader& r) {
  LookupRequest v;
  v.name = r.read_string();
  v.hops = r.read_u32();
  v.min_epoch = r.read_u64();
  return v;
}

// --- LookupReply ---------------------------------------------------------------

serial::Buffer LookupReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, host);
  w.write_string(error);
  w.write_u64(epoch);
  return w.take();
}

LookupReply LookupReply::decode(serial::ChainReader& r) {
  LookupReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.host = get_node(r);
  v.error = r.read_string();
  v.epoch = r.read_u64();
  return v;
}

// --- ClassCheckRequest / Reply --------------------------------------------------

serial::Buffer ClassCheckRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  return w.take();
}

ClassCheckRequest ClassCheckRequest::decode(serial::ChainReader& r) {
  return ClassCheckRequest{r.read_string()};
}

serial::Buffer ClassCheckReply::encode() const {
  serial::Writer w;
  w.write_bool(cached);
  return w.take();
}

ClassCheckReply ClassCheckReply::decode(serial::ChainReader& r) {
  return ClassCheckReply{r.read_bool()};
}

// --- FetchClassRequest / ClassImage / LoadClassRequest ---------------------------

serial::Buffer FetchClassRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  return w.take();
}

FetchClassRequest FetchClassRequest::decode(serial::ChainReader& r) {
  return FetchClassRequest{r.read_string()};
}

serial::Buffer ClassImage::encode() const {
  serial::Writer w(4 + class_name.size() + 4 + code_size);
  w.write_string(class_name);
  w.write_u32(code_size);
  // Filler standing in for the class file's bytecode so the simulated wire
  // pays the real transfer cost.
  w.write_fill(0xCA, code_size);
  return w.take();
}

ClassImage ClassImage::decode(serial::ChainReader& r) {
  ClassImage v;
  v.class_name = r.read_string();
  v.code_size = r.read_u32();
  // The filler is only there so the wire pays the transfer cost; skip it
  // (bounds-checked before anything is allocated, so a corrupt code_size
  // raises SerializationError, never a giant allocation).
  r.skip(v.code_size);
  return v;
}

serial::Buffer LoadClassRequest::encode() const {
  return image.encode();
}

LoadClassRequest LoadClassRequest::decode(serial::ChainReader& r) {
  return LoadClassRequest{ClassImage::decode(r)};
}

// --- InstantiateRequest ---------------------------------------------------------

serial::Buffer InstantiateRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(object_name);
  w.write_bool(is_public);
  put_node(w, class_source);
  return w.take();
}

InstantiateRequest InstantiateRequest::decode(serial::ChainReader& r) {
  InstantiateRequest v;
  v.class_name = r.read_string();
  v.object_name = r.read_string();
  v.is_public = r.read_bool();
  v.class_source = get_node(r);
  return v;
}

// --- SimpleReply ------------------------------------------------------------------

serial::Buffer SimpleReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_string(error);
  w.write_u64(hint_epoch);
  return w.take();
}

SimpleReply SimpleReply::decode(serial::ChainReader& r) {
  SimpleReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.error = r.read_string();
  v.hint_epoch = r.read_u64();
  return v;
}

// --- MoveRequest -------------------------------------------------------------------

serial::Buffer MoveRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  put_node(w, to);
  return w.take();
}

MoveRequest MoveRequest::decode(serial::ChainReader& r) {
  MoveRequest v;
  v.name = r.read_string();
  v.to = get_node(r);
  return v;
}

// --- TransferRequest ----------------------------------------------------------------

serial::BufferChain TransferRequest::encode() const {
  serial::ChainWriter w;
  w.write_string(name);
  w.write_string(class_name);
  w.write_bool(is_public);
  w.write_u64(epoch);
  w.append_payload(state);
  return w.take();
}

TransferRequest TransferRequest::decode(serial::ChainReader& r) {
  TransferRequest v;
  v.name = r.read_string();
  v.class_name = r.read_string();
  v.is_public = r.read_bool();
  v.epoch = r.read_u64();
  v.state = r.read_bytes();
  return v;
}

// --- InvokeRequest / InvokeReply ------------------------------------------------------

serial::BufferChain InvokeRequest::encode() const {
  serial::ChainWriter w;
  w.write_string(name);
  w.write_string(method);
  w.append_payload(args);
  return w.take();
}

InvokeRequest InvokeRequest::decode(serial::ChainReader& r) {
  InvokeRequest v;
  v.name = r.read_string();
  v.method = r.read_string();
  v.args = r.read_bytes();
  return v;
}

serial::BufferChain InvokeReply::encode() const {
  serial::ChainWriter w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_string(error);
  w.write_u64(hint_epoch);
  w.append_payload(result);
  return w.take();
}

InvokeReply InvokeReply::decode(serial::ChainReader& r) {
  InvokeReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.error = r.read_string();
  v.hint_epoch = r.read_u64();
  v.result = r.read_bytes();
  return v;
}

// --- FetchResultRequest ------------------------------------------------------------

serial::Buffer FetchResultRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  return w.take();
}

FetchResultRequest FetchResultRequest::decode(serial::ChainReader& r) {
  return FetchResultRequest{r.read_string()};
}

// --- LockRequest / LockReply / UnlockRequest -------------------------------------------

serial::Buffer LockRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  put_node(w, target);
  w.write_u64(activity);
  return w.take();
}

LockRequest LockRequest::decode(serial::ChainReader& r) {
  LockRequest v;
  v.name = r.read_string();
  v.target = get_node(r);
  v.activity = r.read_u64();
  return v;
}

serial::Buffer LockReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, hint);
  w.write_u64(lock_id);
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_string(error);
  w.write_u64(hint_epoch);
  return w.take();
}

LockReply LockReply::decode(serial::ChainReader& r) {
  LockReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.hint = get_node(r);
  v.lock_id = r.read_u64();
  v.kind = static_cast<LockKind>(r.read_u8());
  v.error = r.read_string();
  v.hint_epoch = r.read_u64();
  return v;
}

serial::Buffer UnlockRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  w.write_u64(lock_id);
  return w.take();
}

UnlockRequest UnlockRequest::decode(serial::ChainReader& r) {
  UnlockRequest v;
  v.name = r.read_string();
  v.lock_id = r.read_u64();
  return v;
}

// --- StaticGetRequest / StaticPutRequest -----------------------------------------------

serial::Buffer StaticGetRequest::encode() const {
  serial::Writer w;
  w.write_string(class_name);
  w.write_string(key);
  return w.take();
}

StaticGetRequest StaticGetRequest::decode(serial::ChainReader& r) {
  StaticGetRequest v;
  v.class_name = r.read_string();
  v.key = r.read_string();
  return v;
}

serial::BufferChain StaticPutRequest::encode() const {
  serial::ChainWriter w;
  w.write_string(class_name);
  w.write_string(key);
  w.append_payload(value);
  return w.take();
}

StaticPutRequest StaticPutRequest::decode(serial::ChainReader& r) {
  StaticPutRequest v;
  v.class_name = r.read_string();
  v.key = r.read_string();
  v.value = r.read_bytes();
  return v;
}

// --- ExecRequest ----------------------------------------------------------------------

serial::BufferChain ExecRequest::encode() const {
  serial::ChainWriter w;
  w.write_string(class_name);
  w.write_string(object_name);
  w.write_string(method);
  w.append_payload(args);
  put_node(w, class_source);
  return w.take();
}

ExecRequest ExecRequest::decode(serial::ChainReader& r) {
  ExecRequest v;
  v.class_name = r.read_string();
  v.object_name = r.read_string();
  v.method = r.read_string();
  v.args = r.read_bytes();
  v.class_source = get_node(r);
  return v;
}

// --- DiscoverRequest / DiscoverReply ---------------------------------------------------

serial::Buffer DiscoverRequest::encode() const {
  serial::Writer w;
  w.write_string(kind);
  return w.take();
}

DiscoverRequest DiscoverRequest::decode(serial::ChainReader& r) {
  return DiscoverRequest{r.read_string()};
}

serial::Buffer DiscoverReply::encode() const {
  serial::Writer w;
  w.write_bool(offers);
  w.write_f64(capacity);
  return w.take();
}

DiscoverReply DiscoverReply::decode(serial::ChainReader& r) {
  DiscoverReply v;
  v.offers = r.read_bool();
  v.capacity = r.read_f64();
  return v;
}

// --- replicated directory & election ----------------------------------------------------

serial::Buffer VoteRequest::encode() const {
  serial::Writer w;
  w.write_u64(term);
  put_node(w, candidate);
  return w.take();
}

VoteRequest VoteRequest::decode(serial::ChainReader& r) {
  VoteRequest v;
  v.term = r.read_u64();
  v.candidate = get_node(r);
  return v;
}

serial::Buffer VoteReply::encode() const {
  serial::Writer w;
  w.write_u64(term);
  w.write_bool(granted);
  return w.take();
}

VoteReply VoteReply::decode(serial::ChainReader& r) {
  VoteReply v;
  v.term = r.read_u64();
  v.granted = r.read_bool();
  return v;
}

serial::Buffer HeartbeatRequest::encode() const {
  serial::Writer w;
  w.write_u64(term);
  put_node(w, leader);
  return w.take();
}

HeartbeatRequest HeartbeatRequest::decode(serial::ChainReader& r) {
  HeartbeatRequest v;
  v.term = r.read_u64();
  v.leader = get_node(r);
  return v;
}

serial::Buffer HeartbeatReply::encode() const {
  serial::Writer w;
  w.write_u64(term);
  w.write_bool(ok);
  return w.take();
}

HeartbeatReply HeartbeatReply::decode(serial::ChainReader& r) {
  HeartbeatReply v;
  v.term = r.read_u64();
  v.ok = r.read_bool();
  return v;
}

void put_record(serial::Writer& w, const PlacementRecord& rec) {
  w.write_string(rec.name);
  w.write_string(rec.class_name);
  put_node(w, rec.host);
  w.write_bool(rec.is_public);
  w.write_u64(rec.epoch);
}

PlacementRecord get_record(serial::ChainReader& r) {
  PlacementRecord rec;
  rec.name = r.read_string();
  rec.class_name = r.read_string();
  rec.host = get_node(r);
  rec.is_public = r.read_bool();
  rec.epoch = r.read_u64();
  return rec;
}

serial::Buffer DirAnnounceRequest::encode() const {
  serial::Writer w;
  put_record(w, record);
  return w.take();
}

DirAnnounceRequest DirAnnounceRequest::decode(serial::ChainReader& r) {
  return DirAnnounceRequest{get_record(r)};
}

serial::Buffer DirAnnounceReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, leader);
  w.write_u64(epoch);
  w.write_string(error);
  return w.take();
}

DirAnnounceReply DirAnnounceReply::decode(serial::ChainReader& r) {
  DirAnnounceReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.leader = get_node(r);
  v.epoch = r.read_u64();
  v.error = r.read_string();
  return v;
}

serial::Buffer DirResolveRequest::encode() const {
  serial::Writer w;
  w.write_string(name);
  return w.take();
}

DirResolveRequest DirResolveRequest::decode(serial::ChainReader& r) {
  return DirResolveRequest{r.read_string()};
}

serial::Buffer DirResolveReply::encode() const {
  serial::Writer w;
  w.write_u8(static_cast<std::uint8_t>(status));
  put_node(w, host);
  w.write_u64(epoch);
  put_node(w, leader);
  w.write_string(error);
  return w.take();
}

DirResolveReply DirResolveReply::decode(serial::ChainReader& r) {
  DirResolveReply v;
  v.status = static_cast<Status>(r.read_u8());
  v.host = get_node(r);
  v.epoch = r.read_u64();
  v.leader = get_node(r);
  v.error = r.read_string();
  return v;
}

// --- ManifestRequest / ManifestReply ------------------------------------------------

serial::Buffer ManifestRequest::encode() const {
  serial::Writer w;
  w.write_string(prefix);
  return w.take();
}

ManifestRequest ManifestRequest::decode(serial::ChainReader& r) {
  return ManifestRequest{r.read_string()};
}

serial::Buffer ManifestReply::encode() const {
  serial::Writer w;
  w.write_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [name, epoch] : entries) {
    w.write_string(name);
    w.write_u64(epoch);
  }
  return w.take();
}

ManifestReply ManifestReply::decode(serial::ChainReader& r) {
  ManifestReply v;
  const std::uint32_t n = r.read_u32();
  v.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.read_string();
    const std::uint64_t epoch = r.read_u64();
    v.entries.emplace_back(std::move(name), epoch);
  }
  return v;
}

// --- LoadReply ------------------------------------------------------------------------

serial::Buffer LoadReply::encode() const {
  serial::Writer w;
  w.write_f64(load);
  return w.take();
}

LoadReply LoadReply::decode(serial::ChainReader& r) {
  return LoadReply{r.read_f64()};
}

}  // namespace mage::rts::proto
