#include "rts/server.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mage::rts {

namespace proto_verbs = proto::verbs;

// Longest forwarding chain a lookup will walk before declaring a cycle.
constexpr std::uint32_t kMaxLookupHops = 32;

MageServer::MageServer(rmi::Transport& transport, const ClassWorld& world,
                       const Directory& directory)
    : transport_(transport),
      world_(world),
      directory_(directory),
      registry_(transport.self()),
      locks_(transport.self()) {
  register_services();
}

sim::Simulation& MageServer::sim() {
  // The node's own context: the shared driver sim in single-core mode,
  // this node's shard in sharded mode (handlers run on that shard).
  return transport_.network().node_sim(transport_.self());
}

void MageServer::register_services() {
  using namespace std::placeholders;
  auto bind_to = [this](void (MageServer::*fn)(common::NodeId, const Body&,
                                               rmi::Replier)) {
    return [this, fn](common::NodeId caller, const Body& body,
                      rmi::Replier replier) {
      (this->*fn)(caller, body, std::move(replier));
    };
  };

  transport_.register_service(proto_verbs::kLookup,
                              bind_to(&MageServer::handle_lookup));
  transport_.register_service(proto_verbs::kInvoke,
                              bind_to(&MageServer::handle_invoke));
  transport_.register_service(proto_verbs::kInvokeOneway,
                              bind_to(&MageServer::handle_invoke_oneway));
  transport_.register_service(proto_verbs::kFetchResult,
                              bind_to(&MageServer::handle_fetch_result));
  transport_.register_service(proto_verbs::kLock,
                              bind_to(&MageServer::handle_lock));
  transport_.register_service(proto_verbs::kUnlock,
                              bind_to(&MageServer::handle_unlock));
  transport_.register_service(proto_verbs::kGetLoad,
                              bind_to(&MageServer::handle_get_load));
  transport_.register_service(proto_verbs::kManifest,
                              bind_to(&MageServer::handle_manifest));
  transport_.register_service(
      proto_verbs::kPing,
      [](common::NodeId, const Body& body, rmi::Replier replier) {
        replier.ok(body);
      });
  transport_.register_service(
      proto_verbs::kResolveServer,
      [](common::NodeId, const Body&, rmi::Replier replier) {
        replier.ok({});  // "here is my MageExternalServer stub"
      });
  transport_.register_service(proto_verbs::kStaticGet,
                              bind_to(&MageServer::handle_static_get));
  transport_.register_service(proto_verbs::kStaticPut,
                              bind_to(&MageServer::handle_static_put));
  transport_.register_service(proto_verbs::kDiscover,
                              bind_to(&MageServer::handle_discover));

  // MageExternalServer role: migration-family operations pay the one-time
  // engine warm-up ("priming the MAGE engine", Section 5).
  register_warmable(proto_verbs::kClassCheck,
                    bind_to(&MageServer::handle_class_check));
  register_warmable(proto_verbs::kFetchClass,
                    bind_to(&MageServer::handle_fetch_class));
  register_warmable(proto_verbs::kLoadClass,
                    bind_to(&MageServer::handle_load_class));
  register_warmable(proto_verbs::kInstantiate,
                    bind_to(&MageServer::handle_instantiate));
  register_warmable(proto_verbs::kMove, bind_to(&MageServer::handle_move));
  register_warmable(proto_verbs::kTransfer,
                    bind_to(&MageServer::handle_transfer));
  register_warmable(proto_verbs::kExec, bind_to(&MageServer::handle_exec));
}

void MageServer::register_warmable(common::VerbId verb,
                                   rmi::Transport::Service fn) {
  transport_.register_service(
      verb, [this, fn = std::move(fn)](common::NodeId caller, const Body& body,
                                       rmi::Replier replier) {
        if (warmed_) {
          fn(caller, body, std::move(replier));
          return;
        }
        warmed_ = true;
        sim().stats().add("rts.engine_warmups");
        sim().schedule_after(
            model().engine_warmup_us,
            [fn, caller, body, replier = std::move(replier)]() mutable {
              fn(caller, body, std::move(replier));
            });
      });
}

bool MageServer::check_access(Operation op, common::NodeId caller,
                              rmi::Replier& replier) {
  if (caller == self()) return true;  // a namespace always trusts itself
  const std::string& caller_domain =
      transport_.network().domain(caller);
  if (access_.permitted(op, caller, caller_domain)) return true;
  access_.count_denial();
  sim().stats().add("rts.access_denials");
  replier.error(std::string("access denied: ") + operation_name(op) +
                " by node " + std::to_string(caller.value()) +
                (caller_domain.empty() ? "" : " (domain " + caller_domain +
                                                  ")") +
                " rejected by node " + std::to_string(self().value()) +
                "'s policy");
  return false;
}

MageServer::Hint MageServer::locate_hint(
    const common::ComponentName& name) const {
  if (auto it = in_transit_.find(name); it != in_transit_.end()) {
    // The in-flight transfer will bind at our epoch + 1 on arrival.
    return {proto::Status::Moved, it->second, registry_.epoch_of(name) + 1};
  }
  if (auto fwd = registry_.forward(name)) {
    return {proto::Status::Moved, *fwd, registry_.epoch_of(name)};
  }
  return {proto::Status::NotFound, common::kNoNode, 0};
}

// --- registry lookup (forwarding chain + path collapsing) --------------------

void MageServer::handle_lookup(common::NodeId caller, const Body& body,
                               rmi::Replier replier) {
  if (!check_access(Operation::Lookup, caller, replier)) return;
  auto request = proto::LookupRequest::decode(body);
  sim().stats().add("rts.lookups");

  // An in-transit object still has a local binding, but answering "here"
  // would hand out a namespace it is about to leave; chase the transfer.
  if (registry_.has_local(request.name) && !in_transit(request.name)) {
    proto::LookupReply reply;
    reply.status = proto::Status::Ok;
    reply.host = self();
    reply.epoch = registry_.epoch_of(request.name);
    replier.ok(reply.encode());
    return;
  }

  if (request.hops >= kMaxLookupHops) {
    proto::LookupReply reply;
    reply.status = proto::Status::Error;
    reply.error = "forwarding chain exceeded " +
                  std::to_string(kMaxLookupHops) + " hops (cycle?)";
    replier.ok(reply.encode());
    return;
  }

  auto hint = locate_hint(request.name);
  if (hint.status != proto::Status::Moved ||
      (request.min_epoch != 0 && hint.epoch != 0 &&
       hint.epoch < request.min_epoch)) {
    // Either we know nothing, or what we know predates what the caller has
    // already confirmed — walking our chain could only lead somewhere the
    // object left (epoch fence: never hand out placement history that runs
    // backwards, e.g. toward a crashed ex-home).
    proto::LookupReply reply;
    reply.status = proto::Status::NotFound;
    reply.error = hint.status == proto::Status::Moved
                      ? "forwarding knowledge is staler than the caller's"
                      : "no binding and no forwarding address";
    replier.ok(reply.encode());
    return;
  }

  // Walk the chain: ask the next hop, collapse our forwarding entry when
  // the answer comes back ("as the result returns, each server updates its
  // forwarding address", Section 4.1).
  proto::LookupRequest forwarded;
  forwarded.name = request.name;
  forwarded.hops = request.hops + 1;
  forwarded.min_epoch = request.min_epoch;
  sim().stats().add("rts.lookup_hops");
  transport_.call(
      hint.node, proto_verbs::kLookup, forwarded.encode(),
      [this, name = request.name,
       replier = std::move(replier)](rmi::CallResult result) mutable {
        if (!result.ok) {
          proto::LookupReply reply;
          reply.status = proto::Status::Error;
          reply.error = result.error;
          replier.ok(reply.encode());
          return;
        }
        auto reply = proto::LookupReply::decode(result.body);
        if (reply.status == proto::Status::Ok) {
          // Collapse the path, fenced: a reply that raced a newer migration
          // must not roll our knowledge back.
          registry_.update_forward(name, reply.host, reply.epoch);
        }
        replier.ok(reply.encode());
      });
}

// --- class shipping -----------------------------------------------------------

void MageServer::handle_class_check(common::NodeId caller, const Body& body,
                                    rmi::Replier replier) {
  (void)caller;
  auto request = proto::ClassCheckRequest::decode(body);
  proto::ClassCheckReply reply;
  reply.cached = class_cache_.has(request.class_name);
  replier.ok(reply.encode());
}

void MageServer::handle_fetch_class(common::NodeId caller, const Body& body,
                                    rmi::Replier replier) {
  if (!check_access(Operation::FetchClass, caller, replier)) return;
  auto request = proto::FetchClassRequest::decode(body);
  if (!class_cache_.has(request.class_name) ||
      !world_.contains(request.class_name)) {
    replier.error("class '" + request.class_name +
                  "' is not available on node " +
                  std::to_string(self().value()));
    return;
  }
  sim().stats().add("rts.class_fetches");
  proto::ClassImage image;
  image.class_name = request.class_name;
  image.code_size = world_.descriptor(request.class_name).code_size;
  replier.ok(image.encode());
}

void MageServer::handle_load_class(common::NodeId caller, const Body& body,
                                   rmi::Replier replier) {
  if (!check_access(Operation::LoadClass, caller, replier)) return;
  auto request = proto::LoadClassRequest::decode(body);
  if (!world_.contains(request.image.class_name)) {
    replier.error("class '" + request.image.class_name +
                  "' has no registered implementation");
    return;
  }
  if (class_cache_.has(request.image.class_name)) {
    proto::SimpleReply reply;
    replier.ok(reply.encode());
    return;
  }
  sim().stats().add("rts.class_loads");
  sim().schedule_after(model().class_load_us,
                       [this, request, replier = std::move(replier)]() mutable {
    class_cache_.on_image_received(request.image.class_name);
    proto::SimpleReply reply;
    replier.ok(reply.encode());
  });
}

void MageServer::ensure_class_then(const std::string& class_name,
                                   common::NodeId source, EnsureClassFn then) {
  if (class_cache_.has(class_name)) {
    then(true, {});
    return;
  }
  if (common::is_no_node(source) || source == self()) {
    then(false, "class '" + class_name + "' missing and no source to fetch");
    return;
  }
  proto::FetchClassRequest request{class_name};
  transport_.call(
      source, proto_verbs::kFetchClass, request.encode(),
      [this, class_name,
       then = std::move(then)](rmi::CallResult result) mutable {
        if (!result.ok) {
          then(false, result.error);
          return;
        }
        sim().stats().add("rts.class_loads");
        sim().schedule_after(model().class_load_us,
                             [this, class_name,
                              then = std::move(then)]() mutable {
          class_cache_.on_image_received(class_name);
          then(true, {});
        });
      });
}

// --- instantiation ---------------------------------------------------------------

void MageServer::handle_instantiate(common::NodeId caller, const Body& body,
                                    rmi::Replier replier) {
  if (!check_access(Operation::Instantiate, caller, replier)) return;
  if (!resources_.admits_object(registry_.local_names().size())) {
    replier.error("capacity exceeded: node " +
                  std::to_string(self().value()) +
                  " will not host another object");
    sim().stats().add("rts.capacity_rejections");
    return;
  }
  auto request = proto::InstantiateRequest::decode(body);
  const common::NodeId source = common::is_no_node(request.class_source)
                                    ? caller
                                    : request.class_source;
  ensure_class_then(
      request.class_name, source,
      [this, request,
       replier = std::move(replier)](bool ok, std::string error) mutable {
        if (!ok) {
          proto::SimpleReply reply;
          reply.status = proto::Status::Error;
          reply.error = std::move(error);
          replier.ok(reply.encode());
          return;
        }
        sim().schedule_after(
            model().instantiate_us,
            [this, request, replier = std::move(replier)]() mutable {
          registry_.bind(request.object_name,
                         world_.instantiate(request.class_name));
          sim().stats().add("rts.instantiations");
          proto::SimpleReply reply;
          replier.ok(reply.encode());
        });
      });
}

// Condensed remote evaluation (the Section 5 optimization): class check,
// instantiation, invocation and result return ride one RMI exchange.
void MageServer::handle_exec(common::NodeId caller, const Body& body,
                             rmi::Replier replier) {
  if (!check_access(Operation::Instantiate, caller, replier)) return;
  if (!resources_.admits_object(registry_.local_names().size())) {
    replier.error("capacity exceeded: node " +
                  std::to_string(self().value()) +
                  " will not host another object");
    sim().stats().add("rts.capacity_rejections");
    return;
  }
  auto request = proto::ExecRequest::decode(body);
  const common::NodeId source = common::is_no_node(request.class_source)
                                    ? caller
                                    : request.class_source;
  ensure_class_then(
      request.class_name, source,
      [this, request,
       replier = std::move(replier)](bool ok, std::string error) mutable {
        if (!ok) {
          proto::InvokeReply reply;
          reply.status = proto::Status::Error;
          reply.error = std::move(error);
          replier.ok(reply.encode());
          return;
        }
        sim().schedule_after(
            model().instantiate_us,
            [this, request, replier = std::move(replier)]() mutable {
          registry_.bind(request.object_name,
                         world_.instantiate(request.class_name));
          sim().stats().add("rts.instantiations");
          proto::InvokeRequest invoke;
          invoke.name = request.object_name;
          invoke.method = request.method;
          invoke.args = request.args;
          common::SimDuration cost = 0;
          try {
            cost = world_.method(request.class_name, request.method).cost_us;
          } catch (const common::MageError&) {
          }
          sim().stats().add("rts.condensed_execs");
          sim().schedule_after(
              cost, [this, invoke = std::move(invoke),
                     replier = std::move(replier)]() mutable {
            replier.ok(run_method(invoke).encode());
          });
        });
      });
}

// --- migration (the Figure 7 protocol, server side) ----------------------------

void MageServer::handle_move(common::NodeId caller, const Body& body,
                             rmi::Replier replier) {
  if (!check_access(Operation::MoveOut, caller, replier)) return;
  auto request = proto::MoveRequest::decode(body);

  if (!registry_.has_local(request.name) || in_transit(request.name)) {
    auto hint = locate_hint(request.name);
    proto::SimpleReply reply;
    reply.status = hint.status;
    reply.hint = hint.node;
    reply.hint_epoch = hint.epoch;
    reply.error = "object is not at this node";
    replier.ok(reply.encode());
    return;
  }

  if (request.to == self()) {
    proto::SimpleReply reply;  // already at the target: nothing to move
    reply.hint = self();
    reply.hint_epoch = registry_.epoch_of(request.name);
    replier.ok(reply.encode());
    return;
  }

  // Weak migration: serialize heap state, ship it, and only unbind the
  // local copy once the destination acknowledges.  While the transfer is in
  // flight the object is marked in-transit so concurrent invocations and
  // moves are redirected rather than seeing a half-moved object — this is
  // the "object movement is not atomic" hazard of Section 4.4 handled
  // structurally.
  MageObject& object = registry_.local(request.name);
  serial::Writer state_writer;
  object.serialize(state_writer);

  // This migration advances the object's placement history by one epoch;
  // the destination binds at new_epoch, every hint we leave behind carries
  // it, and anything older is fenced out downstream.
  const std::uint64_t new_epoch = registry_.epoch_of(request.name) + 1;

  proto::TransferRequest transfer;
  transfer.name = request.name;
  transfer.class_name = object.class_name();
  transfer.is_public = directory_.contains(request.name)
                           ? directory_.info(request.name).is_public
                           : false;
  transfer.epoch = new_epoch;
  transfer.state = state_writer.take();

  in_transit_[request.name] = request.to;
  transport_.call(
      request.to, proto_verbs::kTransfer, transfer.encode(),
      [this, name = request.name, to = request.to, new_epoch,
       replier = std::move(replier)](rmi::CallResult result) mutable {
        in_transit_.erase(name);
        proto::SimpleReply reply;
        if (!result.ok) {
          reply.status = proto::Status::Error;
          reply.error = "transfer failed: " + result.error;
          replier.ok(reply.encode());
          return;
        }
        auto transfer_reply = proto::SimpleReply::decode(result.body);
        if (transfer_reply.status != proto::Status::Ok) {
          reply.status = proto::Status::Error;
          reply.error = "transfer rejected: " + transfer_reply.error;
          replier.ok(reply.encode());
          return;
        }
        // Destination has the object: retire the local copy and leave a
        // forwarding address behind, fenced at the migration's epoch.
        auto departed = registry_.unbind(name);
        departed.reset();
        registry_.update_forward(name, to, new_epoch);
        locks_.on_object_departed(name, to);
        sim().stats().add("rts.migrations");
        // The Ok reply tells the mover where the object now is and at
        // which epoch (so it can announce the move to the directory).
        reply.hint = to;
        reply.hint_epoch = new_epoch;
        replier.ok(reply.encode());
      });
}

void MageServer::handle_transfer(common::NodeId caller, const Body& body,
                                 rmi::Replier replier) {
  if (!check_access(Operation::TransferIn, caller, replier)) return;
  auto request = proto::TransferRequest::decode(body);
  if (!resources_.admits_object(registry_.local_names().size()) ||
      !resources_.admits_transfer(request.state.size())) {
    replier.error("capacity exceeded: node " +
                  std::to_string(self().value()) +
                  " rejects transfer of '" + request.name + "' (" +
                  std::to_string(request.state.size()) + " state bytes)");
    sim().stats().add("rts.capacity_rejections");
    return;
  }
  ensure_class_then(
      request.class_name, caller,
      [this, request,
       replier = std::move(replier)](bool ok, std::string error) mutable {
        if (!ok) {
          proto::SimpleReply reply;
          reply.status = proto::Status::Error;
          reply.error = std::move(error);
          replier.ok(reply.encode());
          return;
        }
        sim().schedule_after(
            model().instantiate_us,
            [this, request, replier = std::move(replier)]() mutable {
          serial::Reader state(request.state);
          registry_.bind(request.name,
                         world_.deserialize(request.class_name, state),
                         request.epoch);
          sim().stats().add("rts.transfers_in");
          proto::SimpleReply reply;
          replier.ok(reply.encode());
        });
      });
}

// --- invocation -------------------------------------------------------------------

proto::InvokeReply MageServer::run_method(const proto::InvokeRequest& request) {
  proto::InvokeReply reply;
  try {
    MageObject& object = registry_.local(request.name);
    const MethodEntry& entry =
        world_.method(object.class_name(), request.method);
    reply.result = entry.fn(object, request.args);
    reply.status = proto::Status::Ok;
  } catch (const common::MageError& e) {
    reply.status = proto::Status::Error;
    reply.error = e.what();
  }
  return reply;
}

void MageServer::handle_invoke(common::NodeId caller, const Body& body,
                               rmi::Replier replier) {
  if (!check_access(Operation::Invoke, caller, replier)) return;
  auto request = proto::InvokeRequest::decode(body);
  if (!registry_.has_local(request.name) || in_transit(request.name)) {
    auto hint = locate_hint(request.name);
    proto::InvokeReply reply;
    reply.status = hint.status;
    reply.hint = hint.node;
    reply.hint_epoch = hint.epoch;
    reply.error = "object is not at this node";
    replier.ok(reply.encode());
    return;
  }

  sim().stats().add("rts.invocations");
  common::SimDuration cost = 0;
  try {
    MageObject& object = registry_.local(request.name);
    cost = world_.method(object.class_name(), request.method).cost_us;
  } catch (const common::MageError&) {
    // run_method will produce the error reply below.
  }
  sim().schedule_after(cost, [this, request = std::move(request),
                              replier = std::move(replier)]() mutable {
    // Re-validate at execution time: a migration that started while this
    // invocation waited its CPU turn has already serialized the object's
    // state, so executing now would mutate a doomed local copy and the
    // update would silently vanish at the new host.  Redirect instead —
    // the method has not run, so the caller's retry at the destination is
    // still exactly-once.
    if (!registry_.has_local(request.name) || in_transit(request.name)) {
      auto hint = locate_hint(request.name);
      proto::InvokeReply reply;
      reply.status = hint.status;
      reply.hint = hint.node;
      reply.hint_epoch = hint.epoch;
      reply.error = "object left while the invocation awaited CPU";
      replier.ok(reply.encode());
      return;
    }
    replier.ok(run_method(request).encode());
  });
}

void MageServer::handle_invoke_oneway(common::NodeId caller, const Body& body,
                                      rmi::Replier replier) {
  if (!check_access(Operation::Invoke, caller, replier)) return;
  auto request = proto::InvokeRequest::decode(body);
  if (!registry_.has_local(request.name) || in_transit(request.name)) {
    auto hint = locate_hint(request.name);
    proto::InvokeReply reply;
    reply.status = hint.status;
    reply.hint = hint.node;
    reply.hint_epoch = hint.epoch;
    reply.error = "object is not at this node";
    replier.ok(reply.encode());
    return;
  }

  // Mobile-agent semantics (Section 3.5): the invocation is asynchronous
  // and "the result stays at the remote host".  Acknowledge first, execute
  // after, park the result for a later fetch_result.
  proto::InvokeReply ack;
  ack.status = proto::Status::Ok;
  replier.ok(ack.encode());

  sim().stats().add("rts.oneway_invocations");
  common::SimDuration cost = 0;
  try {
    MageObject& object = registry_.local(request.name);
    cost = world_.method(object.class_name(), request.method).cost_us;
  } catch (const common::MageError&) {
  }
  sim().schedule_after(cost, [this, request = std::move(request)]() mutable {
    auto reply = run_method(request);
    registry_.park_result(request.name, reply.status == proto::Status::Ok
                                            ? std::move(reply.result)
                                            : serial::Buffer{});
  });
}

void MageServer::handle_fetch_result(common::NodeId caller, const Body& body,
                                     rmi::Replier replier) {
  (void)caller;
  auto request = proto::FetchResultRequest::decode(body);
  proto::InvokeReply reply;
  if (auto result = registry_.take_result(request.name)) {
    reply.status = proto::Status::Ok;
    reply.result = std::move(*result);
  } else {
    reply.status = proto::Status::Error;
    reply.error = "no parked result for '" + request.name + "'";
  }
  replier.ok(reply.encode());
}

// --- locking ---------------------------------------------------------------------

void MageServer::handle_lock(common::NodeId caller, const Body& body,
                             rmi::Replier replier) {
  if (!check_access(Operation::Lock, caller, replier)) return;
  auto request = proto::LockRequest::decode(body);
  if (!registry_.has_local(request.name) || in_transit(request.name)) {
    auto hint = locate_hint(request.name);
    proto::LockReply reply;
    reply.status = hint.status;
    reply.hint = hint.node;
    reply.hint_epoch = hint.epoch;
    reply.error = "object is not at this node";
    replier.ok(reply.encode());
    return;
  }

  // Exactly one of the two callbacks fires; the one-shot Replier is shared
  // between them (LockManager callbacks must be copyable std::functions).
  auto shared_replier = std::make_shared<rmi::Replier>(std::move(replier));
  locks_.request(
      request.name, common::ActivityId{request.activity},
      request.target,
      [this, shared_replier](LockGrant grant) {
        sim().stats().add(grant.kind == LockKind::Stay ? "rts.locks_stay"
                                                       : "rts.locks_move");
        proto::LockReply reply;
        reply.status = proto::Status::Ok;
        reply.lock_id = grant.id.value();
        reply.kind = grant.kind;
        shared_replier->ok(reply.encode());
      },
      [shared_replier](common::NodeId new_host) {
        proto::LockReply reply;
        reply.status = proto::Status::Moved;
        reply.hint = new_host;
        reply.error = "object departed while the lock request was queued";
        shared_replier->ok(reply.encode());
      });
}

void MageServer::handle_unlock(common::NodeId caller, const Body& body,
                               rmi::Replier replier) {
  (void)caller;
  auto request = proto::UnlockRequest::decode(body);
  proto::SimpleReply reply;
  if (!locks_.release(request.name, common::LockId{request.lock_id})) {
    reply.status = proto::Status::Error;
    reply.error = "lock " + std::to_string(request.lock_id) +
                  " does not hold '" + request.name + "'";
  }
  replier.ok(reply.encode());
}

// --- misc ----------------------------------------------------------------------

void MageServer::handle_get_load(common::NodeId caller, const Body& body,
                                 rmi::Replier replier) {
  (void)caller;
  (void)body;
  proto::LoadReply reply;
  reply.load = transport_.network().load(self());
  replier.ok(reply.encode());
}

void MageServer::handle_manifest(common::NodeId caller, const Body& body,
                                 rmi::Replier replier) {
  (void)caller;
  auto request = proto::ManifestRequest::decode(body);
  proto::ManifestReply reply;
  for (const auto& name : registry_.local_names()) {
    if (name.rfind(request.prefix, 0) != 0) continue;
    // A component mid-transfer away from here is already leaving; offering
    // it as a migration victim would race its own move.
    if (in_transit_.contains(name)) continue;
    reply.entries.emplace_back(name, registry_.epoch_of(name));
  }
  replier.ok(reply.encode());
}

void MageServer::handle_discover(common::NodeId caller, const Body& body,
                                 rmi::Replier replier) {
  (void)caller;
  auto request = proto::DiscoverRequest::decode(body);
  proto::DiscoverReply reply;
  reply.offers = resource_board_.offers(request.kind);
  reply.capacity = resource_board_.capacity(request.kind);
  replier.ok(reply.encode());
}

// --- class statics (home-station coherency) ----------------------------------
//
// Every read and write of a class's static fields is served by the class's
// statics home, so class data is trivially sequentially consistent — the
// coherency extension Section 4.2 says cloning classes requires.

void MageServer::handle_static_get(common::NodeId caller, const Body& body,
                                   rmi::Replier replier) {
  (void)caller;
  auto request = proto::StaticGetRequest::decode(body);
  if (!world_.contains(request.class_name) ||
      world_.descriptor(request.class_name).statics_home != self()) {
    replier.error("node " + std::to_string(self().value()) +
                  " is not the statics home of class '" +
                  request.class_name + "'");
    return;
  }
  proto::InvokeReply reply;
  const auto class_it = statics_.find(request.class_name);
  if (class_it != statics_.end()) {
    if (auto it = class_it->second.find(request.key);
        it != class_it->second.end()) {
      reply.status = proto::Status::Ok;
      reply.result = it->second;
      replier.ok(reply.encode());
      return;
    }
  }
  reply.status = proto::Status::NotFound;
  reply.error = "no static '" + request.key + "' on class '" +
                request.class_name + "'";
  replier.ok(reply.encode());
}

void MageServer::handle_static_put(common::NodeId caller, const Body& body,
                                   rmi::Replier replier) {
  (void)caller;
  auto request = proto::StaticPutRequest::decode(body);
  if (!world_.contains(request.class_name) ||
      world_.descriptor(request.class_name).statics_home != self()) {
    replier.error("node " + std::to_string(self().value()) +
                  " is not the statics home of class '" +
                  request.class_name + "'");
    return;
  }
  statics_[request.class_name][request.key] = std::move(request.value);
  sim().stats().add("rts.static_writes");
  proto::SimpleReply reply;
  replier.ok(reply.encode());
}

}  // namespace mage::rts
