// rts::Rebalancer: load-driven partition migration.
//
// Runs *inside* the simulated federation on one node's shard.  Each tick
// it polls loads through a (typically hedged — probes are idempotent)
// AsyncClient, asks the chosen victim node for its partition manifest
// (mage.manifest: the host's authoritative registry view, not a guess from
// a client table), and issues `mage.move`s through a default-policy mover.
// Two policies:
//
//   * central  — the storm_balancer shape: one instance probes every node,
//     migrates a partition from the hottest to the coolest when the skew
//     exceeds the configured margin.
//   * lifeline — the GLB shape (Finnerty et al.'s relocatable-collection
//     work stealing): one instance per node; when its OWN node is idle it
//     probes its lifeline buddies and steals a partition TOWARD itself
//     from the hottest one.  Work follows data: migrating the partition
//     moves the apply/expand service cost to the idle node.
//
// Every tick is scheduled sim::Wake::No on the owning node's shard, and
// every decision consumes only same-shard state and facade futures, so the
// whole policy replays bit-identically at any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "net/network.hpp"
#include "rts/async_client.hpp"
#include "rts/future.hpp"

namespace mage::rts::dist {

class Rebalancer {
 public:
  struct Config {
    // Victim filter: only components whose name starts with this prefix
    // are eligible (use partition_prefix(base) for one collection).
    std::string prefix;
    common::SimDuration tick_us = 10'000;
    common::SimTime start_at_us = 0;
    // A migration needs: victim load > min_load, and (victim - target)
    // load skew > skew_margin.
    double min_load = 1.0;
    double skew_margin = 1.0;
    int max_moves_per_tick = 1;
    std::int64_t max_ticks = -1;  // <0: tick until the run stops
    // Lifeline mode (see header).  `buddies` is this node's lifeline
    // graph; central mode ignores it and probes `nodes` instead.
    bool lifeline = false;
    double idle_ceiling = 0.5;
    std::vector<common::NodeId> buddies;
  };

  // `prober` issues load/manifest probes (its policy may hedge/retry —
  // both are idempotent); `mover` issues the moves (default policy: moves
  // converge on their own, channel retries stay off).  Both clients must
  // live on the same node, which is the node this rebalancer runs on.
  Rebalancer(net::Network& net, AsyncClient& prober, AsyncClient& mover,
             std::vector<common::NodeId> nodes, Config config);

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  // Schedules the first tick.  Driver context, before the run starts.
  void start();

  [[nodiscard]] std::int64_t moves_issued() const { return moves_issued_; }
  [[nodiscard]] std::int64_t ticks() const { return ticks_done_; }

 private:
  void tick();
  void reschedule();
  void central_round();
  void lifeline_round();
  // Asks `victim` for its manifest and moves up to `budget` of its
  // prefix-matching partitions to `target`.
  void steal(common::NodeId victim, common::NodeId target, int budget);
  void round_done() { in_flight_ = false; }

  [[nodiscard]] sim::Simulation& sim();

  net::Network& net_;
  AsyncClient& prober_;
  AsyncClient& mover_;
  std::vector<common::NodeId> nodes_;
  Config config_;
  common::NodeId self_;

  bool in_flight_ = false;  // one probe->steal round outstanding at a time
  std::int64_t ticks_done_ = 0;
  std::int64_t moves_issued_ = 0;
  std::int64_t* tick_counter_;   // "rts.rebalance_ticks"
  std::int64_t* move_counter_;   // "rts.rebalance_moves"
  std::int64_t* steal_counter_;  // "rts.lifeline_steals"
};

}  // namespace mage::rts::dist
