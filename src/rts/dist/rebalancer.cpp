#include "rts/dist/rebalancer.hpp"

#include <utility>

namespace mage::rts::dist {

Rebalancer::Rebalancer(net::Network& net, AsyncClient& prober,
                       AsyncClient& mover, std::vector<common::NodeId> nodes,
                       Config config)
    : net_(net),
      prober_(prober),
      mover_(mover),
      nodes_(std::move(nodes)),
      config_(std::move(config)),
      self_(mover.self()),
      tick_counter_(
          mover.simulation().stats().counter_handle("rts.rebalance_ticks")),
      move_counter_(
          mover.simulation().stats().counter_handle("rts.rebalance_moves")),
      steal_counter_(
          mover.simulation().stats().counter_handle("rts.lifeline_steals")) {}

sim::Simulation& Rebalancer::sim() { return mover_.simulation(); }

void Rebalancer::start() {
  sim().schedule_at(config_.start_at_us, [this] { tick(); }, sim::Wake::No);
}

void Rebalancer::reschedule() {
  if (config_.max_ticks >= 0 && ticks_done_ >= config_.max_ticks) return;
  sim().schedule_after(config_.tick_us, [this] { tick(); }, sim::Wake::No);
}

void Rebalancer::tick() {
  ++ticks_done_;
  ++*tick_counter_;
  // Never stack rounds: a round still chasing probes through a fault
  // window keeps its claim; this tick just reschedules.
  if (!in_flight_) {
    in_flight_ = true;
    if (config_.lifeline) {
      lifeline_round();
    } else {
      central_round();
    }
  }
  reschedule();
}

void Rebalancer::central_round() {
  std::vector<MageFuture<double>> probes;
  probes.reserve(nodes_.size());
  for (const auto node : nodes_) probes.push_back(prober_.load_of(node));
  when_all(probes)
      .then([this](std::vector<double>& loads) {
        std::size_t hot = 0;
        std::size_t cool = 0;
        for (std::size_t i = 1; i < loads.size(); ++i) {
          if (loads[i] > loads[hot]) hot = i;
          if (loads[i] < loads[cool]) cool = i;
        }
        if (hot == cool || loads[hot] <= config_.min_load ||
            loads[hot] - loads[cool] <= config_.skew_margin) {
          round_done();
          return;
        }
        steal(nodes_[hot], nodes_[cool], config_.max_moves_per_tick);
      })
      .on_error([this](const std::string&) {
        // A probe round that lost a node is skipped; next tick re-polls.
        round_done();
      });
}

void Rebalancer::lifeline_round() {
  // My own load is shard-local state — no probe needed.
  if (net_.load(self_) > config_.idle_ceiling || config_.buddies.empty()) {
    round_done();
    return;
  }
  std::vector<MageFuture<double>> probes;
  probes.reserve(config_.buddies.size());
  for (const auto buddy : config_.buddies) {
    probes.push_back(prober_.load_of(buddy));
  }
  when_all(probes)
      .then([this](std::vector<double>& loads) {
        std::size_t hot = 0;
        for (std::size_t i = 1; i < loads.size(); ++i) {
          if (loads[i] > loads[hot]) hot = i;
        }
        const double mine = net_.load(self_);
        if (loads[hot] <= config_.min_load ||
            loads[hot] - mine <= config_.skew_margin) {
          round_done();
          return;
        }
        steal(config_.buddies[hot], self_, config_.max_moves_per_tick);
      })
      .on_error([this](const std::string&) { round_done(); });
}

void Rebalancer::steal(common::NodeId victim, common::NodeId target,
                       int budget) {
  if (victim == target) {
    round_done();
    return;
  }
  prober_.manifest(victim, config_.prefix)
      .then([this, target,
             budget](std::vector<std::pair<std::string, std::uint64_t>>&
                         entries) {
        int moved = 0;
        // Manifest entries arrive in registry (lexicographic) order — the
        // pick is deterministic given the victim's state.
        for (const auto& [name, epoch] : entries) {
          (void)epoch;
          if (moved >= budget) break;
          ++moved;
          ++moves_issued_;
          ++*move_counter_;
          if (config_.lifeline) ++*steal_counter_;
          // Best-effort: a move that raced another mover or a fault window
          // is just skipped; the load signal will re-trigger if it still
          // matters.
          mover_.move(name, target).on_error([](const std::string&) {});
        }
        round_done();
      })
      .on_error([this](const std::string&) { round_done(); });
}

}  // namespace mage::rts::dist
