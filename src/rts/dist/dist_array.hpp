// rts::DistArray<T>: a relocatable distributed array.
//
// A fixed-length array split into P contiguous blocks; each block is an
// ordinary mage component (ArrayPartition<T>) and migrates like any other
// object.  Block partitioning is static arithmetic — element i lives in
// partition i / ceil(n / P) forever — so routing is pure client-side math
// and a relocation never remaps indices, only hosts.  All remote traffic
// rides the AsyncClient facade; fan-outs fold in partition-index order so
// reductions and digests are placement-independent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "rts/async_client.hpp"
#include "rts/class_world.hpp"
#include "rts/component.hpp"
#include "rts/directory.hpp"
#include "rts/dist/layout.hpp"
#include "rts/dist/partition_table.hpp"
#include "rts/future.hpp"
#include "rts/server.hpp"
#include "serial/traits.hpp"

namespace mage::rts::dist {

template <serial::WireType T>
class ArrayPartition : public MageObject {
 public:
  static inline std::string registered_name = "ArrayPartition";

  [[nodiscard]] std::string class_name() const override {
    return registered_name;
  }

  void serialize(serial::Writer& w) const override {
    w.write_u64(offset_);
    serial::put(w, items_);
  }

  void deserialize(serial::Reader& r) override {
    offset_ = r.read_u64();
    items_ = serial::get<std::vector<T>>(r);
  }

  // Deployment-time shaping (driver-side, before the first bind).
  void reset(std::uint64_t offset, std::uint64_t count) {
    offset_ = offset;
    items_.assign(count, T{});
  }

  // --- remotely invocable methods ----------------------------------------

  [[nodiscard]] T at(std::uint64_t local) const {
    check(local);
    return items_[local];
  }

  // Returns the previous value.
  T set(std::uint64_t local, T value) {
    check(local);
    T old = std::move(items_[local]);
    items_[local] = std::move(value);
    return old;
  }

  bool fill(T value) {
    for (auto& item : items_) item = value;
    return true;
  }

  [[nodiscard]] std::uint64_t size() const { return items_.size(); }

  [[nodiscard]] T reduce_plus() const {
    T acc{};
    for (const auto& item : items_) acc += item;
    return acc;
  }

  [[nodiscard]] std::uint64_t digest() const {
    serial::Writer w;
    w.write_u64(offset_);
    serial::put(w, items_);
    const serial::Buffer bytes = w.take();
    return hash_bytes(bytes.data(), bytes.size());
  }

 private:
  void check(std::uint64_t local) const {
    if (local >= items_.size()) {
      throw common::RemoteInvocationError(
          "DistArray index out of partition bounds");
    }
  }

  std::uint64_t offset_ = 0;
  std::vector<T> items_;
};

template <serial::WireType T>
class DistArray {
 public:
  using Partition = ArrayPartition<T>;

  DistArray(AsyncClient& client, std::string base, std::size_t partitions,
            std::uint64_t length)
      : client_(client),
        table_(client, std::move(base), partitions),
        length_(length),
        block_((length + partitions - 1) / partitions) {}

  DistArray(const DistArray&) = delete;
  DistArray& operator=(const DistArray&) = delete;

  static void register_class(ClassWorld& world, const std::string& class_name,
                             std::int64_t op_cost_us = 0) {
    Partition::registered_name = class_name;
    ClassBuilder<Partition>(world, class_name)
        .method("at", &Partition::at)
        .method("set", &Partition::set, op_cost_us)
        .method("fill", &Partition::fill, op_cost_us)
        .method("size", &Partition::size)
        .method("reduce_plus", &Partition::reduce_plus)
        .method("digest", &Partition::digest);
  }

  // Deployment-time: binds block `index` (pre-sized to its slice of
  // `length`) on `server` and announces it in the static directory.
  static void bind_partition(MageServer& server, Directory& directory,
                             const std::string& class_name,
                             const std::string& base, std::size_t index,
                             std::size_t partitions, std::uint64_t length) {
    const std::uint64_t block = (length + partitions - 1) / partitions;
    const std::uint64_t start = index * block;
    const std::uint64_t count = start >= length ? 0 : std::min(block, length - start);
    auto object = std::make_unique<Partition>();
    object->reset(start, count);
    ComponentInfo info;
    info.name = partition_name(base, index);
    info.class_name = class_name;
    info.home = server.self();
    info.is_public = true;
    directory.announce(info);
    server.registry().bind(info.name, std::move(object));
  }

  [[nodiscard]] std::uint64_t length() const { return length_; }

  MageFuture<T> get(std::uint64_t index) {
    return client_.invoke<T>(owner(index), "at", local(index));
  }

  // Completes with the previous value.
  MageFuture<T> set(std::uint64_t index, const T& value) {
    return client_.invoke<T>(owner(index), "set", local(index), value);
  }

  MageFuture<bool> fill(const T& value) {
    std::vector<MageFuture<bool>> calls;
    calls.reserve(table_.partitions());
    for (std::size_t i = 0; i < table_.partitions(); ++i) {
      table_.route(i);
      calls.push_back(client_.invoke<bool>(table_.name_of(i), "fill", value));
    }
    return when_all(calls).then([](std::vector<bool>&) { return true; });
  }

  MageFuture<T> reduce_plus() {
    return fan_in<T>("reduce_plus", T{}, [](T acc, const T& part) {
      acc += part;
      return acc;
    });
  }

  MageFuture<std::uint64_t> size() {
    return fan_in<std::uint64_t>(
        "size", 0,
        [](std::uint64_t acc, const std::uint64_t& part) { return acc + part; });
  }

  MageFuture<std::uint64_t> digest() {
    return fan_in<std::uint64_t>(
        "digest", kFnvOffset,
        [](std::uint64_t acc, const std::uint64_t& part) {
          return fold_hash(acc, part);
        });
  }

  [[nodiscard]] PartitionTable& table() { return table_; }

 private:
  [[nodiscard]] std::size_t partition_index(std::uint64_t index) const {
    if (index >= length_) {
      throw common::MageError("DistArray index out of bounds");
    }
    return static_cast<std::size_t>(index / block_);
  }

  const std::string& owner(std::uint64_t index) {
    const std::size_t p = partition_index(index);
    table_.route(p);
    return table_.name_of(p);
  }

  [[nodiscard]] std::uint64_t local(std::uint64_t index) const {
    return index % block_;
  }

  template <typename R, typename Fold>
  MageFuture<R> fan_in(const std::string& method, R init, Fold fold) {
    std::vector<MageFuture<R>> calls;
    calls.reserve(table_.partitions());
    for (std::size_t i = 0; i < table_.partitions(); ++i) {
      table_.route(i);
      calls.push_back(client_.invoke<R>(table_.name_of(i), method));
    }
    return when_all(calls).then([init, fold](std::vector<R>& parts) {
      R acc = init;
      for (const auto& part : parts) acc = fold(acc, part);
      return acc;
    });
  }

  AsyncClient& client_;
  PartitionTable table_;
  std::uint64_t length_;
  std::uint64_t block_;
};

}  // namespace mage::rts::dist
