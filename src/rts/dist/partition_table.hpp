// Client-side partition table: one node's routing view of a distributed
// collection.
//
// The table does not speak the protocol itself — routing rides entirely on
// the rts::AsyncClient facade.  `route()` consults the facade's best local
// knowledge (local binding, forwarding address, static-directory home);
// the facade's chase machinery (Moved hints, epoch fences, async lookup
// walk, replicated-directory fallback) is what actually repairs a route
// when a partition relocates mid-operation.  The table's job is the
// name/index bookkeeping plus observability: it counts how often a
// partition's believed host changed under it ("rts.dist_table_repairs"),
// which is the client-visible footprint of rebalancing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "rts/async_client.hpp"
#include "rts/future.hpp"

namespace mage::rts::dist {

class PartitionTable {
 public:
  PartitionTable(AsyncClient& client, std::string base,
                 std::size_t partitions);

  PartitionTable(const PartitionTable&) = delete;
  PartitionTable& operator=(const PartitionTable&) = delete;

  [[nodiscard]] const std::string& base() const { return base_; }
  [[nodiscard]] std::size_t partitions() const { return names_.size(); }
  [[nodiscard]] const std::string& name_of(std::size_t index) const {
    return names_[index];
  }

  // Best-known host for a partition — no network traffic.  Records a
  // repair when the answer differs from what this table last handed out
  // (the partition moved and a hint/lookup taught the facade).
  common::NodeId route(std::size_t index);

  // Authoritative async refresh: lookup walk + directory fallback.
  MageFuture<common::NodeId> refresh(std::size_t index);

  [[nodiscard]] std::int64_t repairs() const { return repairs_observed_; }

 private:
  AsyncClient& client_;
  std::string base_;
  std::vector<std::string> names_;
  std::vector<common::NodeId> cached_;
  std::int64_t repairs_observed_ = 0;
  std::int64_t* repairs_;  // "rts.dist_table_repairs"
};

}  // namespace mage::rts::dist
