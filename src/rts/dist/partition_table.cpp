#include "rts/dist/partition_table.hpp"

#include <utility>

#include "rts/dist/layout.hpp"

namespace mage::rts::dist {

PartitionTable::PartitionTable(AsyncClient& client, std::string base,
                               std::size_t partitions)
    : client_(client),
      base_(std::move(base)),
      repairs_(client.simulation().stats().counter_handle(
          "rts.dist_table_repairs")) {
  names_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    names_.push_back(partition_name(base_, i));
  }
  cached_.assign(partitions, common::kNoNode);
}

common::NodeId PartitionTable::route(std::size_t index) {
  const common::NodeId now = client_.believed_host(names_[index]);
  if (now == common::kNoNode) return cached_[index];
  if (cached_[index] != common::kNoNode && cached_[index] != now) {
    ++repairs_observed_;
    ++*repairs_;
  }
  cached_[index] = now;
  return now;
}

MageFuture<common::NodeId> PartitionTable::refresh(std::size_t index) {
  return client_.locate(names_[index]).then([this, index](common::NodeId h) {
    if (h != common::kNoNode) {
      if (cached_[index] != common::kNoNode && cached_[index] != h) {
        ++repairs_observed_;
        ++*repairs_;
      }
      cached_[index] = h;
    }
    return h;
  });
}

}  // namespace mage::rts::dist
