// Partition layout for the distributed collections (docs/API.md,
// "Distributed collections").
//
// A collection named `base` with P partitions binds P ordinary mage
// components "<base>.p0" .. "<base>.p<P-1>" — each one a normal
// Registry::bind'd, epoch-fenced, mage.move-able object.  Keys map to
// partitions by hashing the key's *wire encoding* (the serial::Codec
// bytes), so any WireType can be a key and every node — at any worker
// count — computes the same placement without coordination.  The layout is
// static: rebalancing moves partitions between nodes, never keys between
// partitions, so a relocation changes WHERE a key is served but never
// WHICH component serves it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serial/buffer.hpp"
#include "serial/traits.hpp"
#include "serial/writer.hpp"

namespace mage::rts::dist {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

[[nodiscard]] inline std::uint64_t fold_hash(std::uint64_t h,
                                             std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

[[nodiscard]] inline std::uint64_t hash_bytes(const std::uint8_t* data,
                                              std::size_t size) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < size; ++i) h = fold_hash(h, data[i]);
  return h;
}

// FNV-1a over the key's codec encoding: deterministic across nodes,
// engines, and worker counts (the wire bytes are the canonical form).
template <serial::WireType K>
[[nodiscard]] std::uint64_t key_hash(const K& key) {
  serial::Writer w;
  serial::put(w, key);
  const serial::Buffer bytes = w.take();
  return hash_bytes(bytes.data(), bytes.size());
}

[[nodiscard]] inline std::string partition_name(const std::string& base,
                                                std::size_t index) {
  return base + ".p" + std::to_string(index);
}

// The prefix every partition of `base` shares — what a Rebalancer hands to
// the manifest probe so it only sees this collection's partitions.
[[nodiscard]] inline std::string partition_prefix(const std::string& base) {
  return base + ".p";
}

template <serial::WireType K>
[[nodiscard]] std::size_t partition_of(const K& key, std::size_t partitions) {
  return static_cast<std::size_t>(key_hash(key) % partitions);
}

}  // namespace mage::rts::dist
