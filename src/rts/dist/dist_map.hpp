// rts::DistMap<K, V>: a relocatable distributed hash map.
//
// The map is P ordinary mage components (MapPartition<K, V>), each a
// Registry-bound, epoch-fenced, mage.move-able object holding the keys
// that hash into its slot (dist/layout.hpp).  The client half is a thin
// router: every operation is an AsyncClient invoke against the owning
// partition, so Moved-hint chasing, epoch fencing, and relocation repair
// all come from the facade — a partition migrating mid-operation costs the
// caller a redirect, never a wrong answer.  Fan-out operations
// (size/reduce/digest) are `when_all` over every partition, folded in
// partition-index order so the result is placement-independent.
//
// At-most-once caveat (docs/API.md): `apply` is a read-modify-write.  A
// channel-level retry or application-level re-send after a lost reply may
// re-execute it — only transport retransmission (same request id) is
// at-most-once safe.  Workloads that need driver-side retries should use
// `expand`, the first-write-wins variant: duplicates hit the existing
// entry, count into dup_hits(), and leave value and per-key exec counters
// untouched, so retrying it from the application is safe by construction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rts/async_client.hpp"
#include "rts/class_world.hpp"
#include "rts/component.hpp"
#include "rts/directory.hpp"
#include "rts/dist/layout.hpp"
#include "rts/dist/partition_table.hpp"
#include "rts/future.hpp"
#include "rts/server.hpp"
#include "serial/traits.hpp"

namespace mage::rts::dist {

// One partition's state and methods.  Registered once per (K, V)
// instantiation under the name passed to DistMap::register_class; the
// whole std::map migrates by weak migration like any other MageObject.
template <serial::WireType K, serial::WireType V>
class MapPartition : public MageObject {
 public:
  // Set by DistMap::register_class; one registered class per (K, V)
  // instantiation (partition objects must report the name the ClassWorld
  // knows them by, or migration would re-instantiate the wrong class).
  static inline std::string registered_name = "MapPartition";

  [[nodiscard]] std::string class_name() const override {
    return registered_name;
  }

  void serialize(serial::Writer& w) const override {
    serial::put(w, data_);
    serial::put(w, execs_);
    w.write_i64(dup_hits_);
  }

  void deserialize(serial::Reader& r) override {
    data_ = serial::get<std::map<K, V>>(r);
    execs_ = serial::get<std::map<K, std::int64_t>>(r);
    dup_hits_ = r.read_i64();
  }

  // --- remotely invocable methods ----------------------------------------

  [[nodiscard]] std::optional<V> get(K key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  // Returns true when the key was new.
  bool put(K key, V value) {
    return data_.insert_or_assign(std::move(key), std::move(value)).second;
  }

  // Read-modify-write accumulate; bumps the key's exec counter.  NOT safe
  // to retry from outside the transport (see the header caveat).
  V apply(K key, V delta) {
    V& slot = data_[key];
    slot += delta;
    ++execs_[key];
    return slot;
  }

  // First-write-wins: idempotent from the caller's point of view.  The
  // first execution stores `value` and sets the key's exec counter to 1;
  // every later arrival (a retried or duplicated call) leaves both alone
  // and counts into dup_hits_.
  V expand(K key, V value) {
    auto [it, inserted] = data_.try_emplace(key, std::move(value));
    if (inserted) {
      execs_[it->first] = 1;
    } else {
      ++dup_hits_;
    }
    return it->second;
  }

  bool erase(K key) {
    execs_.erase(key);
    return data_.erase(key) > 0;
  }

  [[nodiscard]] std::uint64_t size() const { return data_.size(); }

  [[nodiscard]] std::int64_t exec_count(K key) const {
    auto it = execs_.find(key);
    return it == execs_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::int64_t dup_hits() const { return dup_hits_; }

  // Keys whose exec counter is not exactly 1 — the per-key exactly-once
  // check the chaos tests assert on.
  [[nodiscard]] std::uint64_t exec_violations() const {
    std::uint64_t bad = 0;
    for (const auto& [key, value] : data_) {
      (void)value;
      if (exec_count(key) != 1) ++bad;
    }
    return bad;
  }

  [[nodiscard]] V reduce_plus() const {
    V acc{};
    for (const auto& [key, value] : data_) {
      (void)key;
      acc += value;
    }
    return acc;
  }

  // FNV over the codec encoding of every (key, value, exec) in key order:
  // pure content, no clocks, no placement — bit-identical wherever the
  // partition happens to live and at any worker count.
  [[nodiscard]] std::uint64_t digest() const {
    serial::Writer w;
    for (const auto& [key, value] : data_) {
      serial::put(w, key);
      serial::put(w, value);
      w.write_i64(exec_count(key));
    }
    const serial::Buffer bytes = w.take();
    return hash_bytes(bytes.data(), bytes.size());
  }

 private:
  std::map<K, V> data_;
  std::map<K, std::int64_t> execs_;
  std::int64_t dup_hits_ = 0;
};

template <serial::WireType K, serial::WireType V>
class DistMap {
 public:
  using Partition = MapPartition<K, V>;

  DistMap(AsyncClient& client, std::string base, std::size_t partitions)
      : client_(client), table_(client, std::move(base), partitions) {}

  DistMap(const DistMap&) = delete;
  DistMap& operator=(const DistMap&) = delete;

  // Registers the partition class in the world.  Call once per process
  // (and per (K, V) instantiation) before any server instantiates or
  // receives a partition.  `apply_cost_us` is the simulated CPU cost of
  // one apply/expand at the hosting node — the cost that makes partition
  // placement show up in load probes.
  static void register_class(ClassWorld& world, const std::string& class_name,
                             std::int64_t apply_cost_us = 0) {
    Partition::registered_name = class_name;
    ClassBuilder<Partition>(world, class_name)
        .method("get", &Partition::get)
        .method("put", &Partition::put)
        .method("apply", &Partition::apply, apply_cost_us)
        .method("expand", &Partition::expand, apply_cost_us)
        .method("erase", &Partition::erase)
        .method("size", &Partition::size)
        .method("exec_count", &Partition::exec_count)
        .method("dup_hits", &Partition::dup_hits)
        .method("exec_violations", &Partition::exec_violations)
        .method("reduce_plus", &Partition::reduce_plus)
        .method("digest", &Partition::digest);
  }

  // Deployment-time: binds partition `index` on `server` and announces it
  // in the static directory (every node must already have the class
  // installed in its cache, like any deployed class).
  static void bind_partition(MageServer& server, Directory& directory,
                             const std::string& class_name,
                             const std::string& base, std::size_t index) {
    ComponentInfo info;
    info.name = partition_name(base, index);
    info.class_name = class_name;
    info.home = server.self();
    info.is_public = true;
    directory.announce(info);
    server.registry().bind(info.name, server.world().instantiate(class_name));
  }

  // --- keyed operations ----------------------------------------------------

  MageFuture<std::optional<V>> get(const K& key) {
    return client_.invoke<std::optional<V>>(owner(key), "get", key);
  }

  MageFuture<bool> put(const K& key, const V& value) {
    return client_.invoke<bool>(owner(key), "put", key, value);
  }

  MageFuture<V> apply(const K& key, const V& delta) {
    return client_.invoke<V>(owner(key), "apply", key, delta);
  }

  MageFuture<V> expand(const K& key, const V& value) {
    return client_.invoke<V>(owner(key), "expand", key, value);
  }

  MageFuture<bool> erase(const K& key) {
    return client_.invoke<bool>(owner(key), "erase", key);
  }

  MageFuture<std::int64_t> exec_count(const K& key) {
    return client_.invoke<std::int64_t>(owner(key), "exec_count", key);
  }

  // --- fan-out operations (when_all over every partition) ------------------

  MageFuture<std::uint64_t> size() {
    return fan_in<std::uint64_t>(
        "size", 0, [](std::uint64_t acc, const std::uint64_t& part,
                      std::size_t) { return acc + part; });
  }

  MageFuture<V> reduce_plus() {
    return fan_in<V>("reduce_plus", V{},
                     [](V acc, const V& part, std::size_t) {
                       acc += part;
                       return acc;
                     });
  }

  MageFuture<std::int64_t> dup_hits() {
    return fan_in<std::int64_t>(
        "dup_hits", 0, [](std::int64_t acc, const std::int64_t& part,
                          std::size_t) { return acc + part; });
  }

  MageFuture<std::uint64_t> exec_violations() {
    return fan_in<std::uint64_t>(
        "exec_violations", 0,
        [](std::uint64_t acc, const std::uint64_t& part, std::size_t) {
          return acc + part;
        });
  }

  // Whole-map digest: partition digests folded in partition-index order —
  // placement- and worker-count-independent.
  MageFuture<std::uint64_t> digest() {
    return fan_in<std::uint64_t>(
        "digest", kFnvOffset,
        [](std::uint64_t acc, const std::uint64_t& part, std::size_t) {
          return fold_hash(acc, part);
        });
  }

  [[nodiscard]] PartitionTable& table() { return table_; }
  [[nodiscard]] AsyncClient& client() { return client_; }

  [[nodiscard]] std::size_t partition_of_key(const K& key) const {
    return partition_of(key, table_.partitions());
  }

 private:
  // Routes a key: partition index -> component name (touching the table so
  // repairs are observed).
  const std::string& owner(const K& key) {
    const std::size_t index = partition_of(key, table_.partitions());
    table_.route(index);
    return table_.name_of(index);
  }

  template <typename R, typename Fold>
  MageFuture<R> fan_in(const std::string& method, R init, Fold fold) {
    std::vector<MageFuture<R>> calls;
    calls.reserve(table_.partitions());
    for (std::size_t i = 0; i < table_.partitions(); ++i) {
      table_.route(i);
      calls.push_back(client_.invoke<R>(table_.name_of(i), method));
    }
    return when_all(calls).then([init, fold](std::vector<R>& parts) {
      R acc = init;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        acc = fold(acc, parts[i], i);
      }
      return acc;
    });
  }

  AsyncClient& client_;
  PartitionTable table_;
};

}  // namespace mage::rts::dist
