// AsyncClient: the asynchronous MageClient facade — THE way to program
// MAGE (docs/API.md).
//
// Where MageClient blocks the driver's event loop per call, AsyncClient
// returns a MageFuture and delivers the completion on the calling node's
// own shard, so application logic written as future chains runs unchanged
// (and bit-identically) on the driver engine and on the sharded engine at
// any worker count.  Internally each operation is the same protocol the
// sync client speaks:
//
//   * invoke<R>/invoke_raw chase the object: try the best-known host,
//     follow Moved hints (epoch-fenced — a stale hint is rejected and
//     counted in "rts.stale_hints_rejected"), re-locate on NotFound or
//     transport failure via an async lookup walk with a replicated-
//     directory fallback, all bounded and paced like MageClient's chase.
//   * move() converges the same way and records the new placement epoch.
//   * load_of()/ping() are plain single-host calls.
//
// Calls travel through a channel stack built from this client's
// rmi::CallPolicy (rmi/channel.hpp): Retriable(Hedged(Direct)) with layers
// elided when their policy fields are off.  The default policy adds NO
// channel-level retries or hedges — mage.invoke is not idempotent, and
// only transport-level retransmission is at-most-once safe.  Give a
// *separate* AsyncClient a retrying/hedging policy for idempotent traffic
// (load probes, lookups, convergent moves) — see docs/API.md's cookbook.
//
// invoke_oneway() always uses the bare direct channel, whatever the
// policy: a one-way verb must never be channel-retried (zero-retry by
// construction; asserted in tests/async_client_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "rmi/channel.hpp"
#include "rts/future.hpp"
#include "rts/protocol.hpp"
#include "rts/server.hpp"
#include "serial/traits.hpp"

namespace mage::rts {

class DirectoryClient;

class AsyncClient {
 public:
  // `server` provides the transport, registry, and static directory of the
  // node this client runs on.  The default policy is a bare transport call
  // (no channel retries/hedges — see the header comment).
  explicit AsyncClient(MageServer& server);
  AsyncClient(MageServer& server, rmi::CallPolicy policy);

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  [[nodiscard]] common::NodeId self() const { return transport_.self(); }
  [[nodiscard]] const rmi::CallPolicy& policy() const { return policy_; }

  // Replaces the channel stack.  Setup/driver context only: throws
  // MageError while any call issued through this client is outstanding
  // (an in-flight call's channel would be destroyed under it).
  void set_policy(rmi::CallPolicy policy);

  // Opt-in replicated-directory fallback (see MageClient::
  // set_directory_client).  Not owned.
  void set_directory_client(DirectoryClient* dclient) {
    directory_client_ = dclient;
  }

  // --- invocation ---------------------------------------------------------

  template <typename R, typename... Args>
  MageFuture<R> invoke(const common::ComponentName& name,
                       const std::string& method, const Args&... args) {
    serial::Writer w;
    (serial::put(w, args), ...);
    return invoke_raw(name, method, w.take()).then([](serial::Buffer& b) {
      serial::Reader r(b);
      return serial::get<R>(r);
    });
  }

  MageFuture<serial::Buffer> invoke_raw(const common::ComponentName& name,
                                        const std::string& method,
                                        serial::Buffer args);

  // Mobile-agent one-way invoke: the future completes on the host's
  // acknowledgement (the result stays parked at the host).  Always rides
  // the direct channel — zero channel retries regardless of policy.
  template <typename... Args>
  MageFuture<Unit> invoke_oneway(const common::ComponentName& name,
                                 const std::string& method,
                                 const Args&... args) {
    serial::Writer w;
    (serial::put(w, args), ...);
    return invoke_oneway_raw(name, method, w.take());
  }

  MageFuture<Unit> invoke_oneway_raw(const common::ComponentName& name,
                                     const std::string& method,
                                     serial::Buffer args);

  // --- placement ----------------------------------------------------------

  // Moves the component to `to`; completes with the new host once the
  // migration converged.  Records the new placement epoch and (when a
  // DirectoryClient is set) announces the placement asynchronously.
  MageFuture<common::NodeId> move(const common::ComponentName& name,
                                  common::NodeId to);

  // Async resolve: where is `name` now?  (Epoch-fenced lookup walk, then
  // directory fallback, then one unfenced walk; does not chase
  // invocations anywhere.)
  MageFuture<common::NodeId> locate(const common::ComponentName& name);

  // --- probes -------------------------------------------------------------

  MageFuture<double> load_of(common::NodeId node);
  MageFuture<Unit> ping(common::NodeId node);

  // Lists the components bound on `node` whose names start with `prefix`,
  // as (name, placement epoch) pairs — the partition-ops probe a
  // rebalancer uses to pick a migration victim from the host's
  // authoritative registry instead of a possibly-stale client table.
  MageFuture<std::vector<std::pair<std::string, std::uint64_t>>> manifest(
      common::NodeId node, const std::string& prefix);

  // --- epoch fences (same bookkeeping as MageClient) ----------------------

  void note_epoch(const common::ComponentName& name, std::uint64_t epoch);
  [[nodiscard]] std::uint64_t known_epoch(
      const common::ComponentName& name) const;

  // Best local knowledge of the component's host (no network traffic):
  // local object, forwarding address, or static-directory home — kNoNode
  // when nothing is known.
  [[nodiscard]] common::NodeId believed_host(
      const common::ComponentName& name) const;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  struct ChaseOp;

  void rebuild_stack();
  [[nodiscard]] rmi::Channel& channel() { return *top_; }

  bool accept_hint(const common::ComponentName& name, common::NodeId hint,
                   std::uint64_t hint_epoch);

  void start_chase(const std::shared_ptr<ChaseOp>& op);
  void send_op(const std::shared_ptr<ChaseOp>& op);
  void on_invoke_reply(const std::shared_ptr<ChaseOp>& op,
                       rmi::CallResult result);
  void on_move_reply(const std::shared_ptr<ChaseOp>& op,
                     rmi::CallResult result);
  // Backoff, re-locate, resume — or fail the op once the chase budget is
  // spent.  `why` explains the last setback in the final error.
  void relocate_and_resume(const std::shared_ptr<ChaseOp>& op,
                           std::string why);
  void fail_op(const std::shared_ptr<ChaseOp>& op, const std::string& why);

  MageFuture<common::NodeId> directory_fallback(
      const common::ComponentName& name);
  // Last-resort unfenced chain walk (min_epoch 0) from `start`.  A fenced
  // walk can dead-end when every reachable chain entry is older than this
  // client's own fence even though the chain still leads to the live
  // binding (epochs rise strictly along a forwarding chain, so following
  // a stale link converges; only a node's LOCAL binding ever serves, so
  // the worst case is a wasted hop, never a wrong execution).  This is
  // exactly the walk a fresh client (fence 0) is always allowed, and the
  // caller re-verifies placement on the next invoke anyway.
  MageFuture<common::NodeId> unfenced_walk(const common::ComponentName& name,
                                           common::NodeId start);

  MageServer& server_;
  rmi::Transport& transport_;
  sim::Simulation& sim_;
  DirectoryClient* directory_client_ = nullptr;

  rmi::CallPolicy policy_;
  std::unique_ptr<rmi::DirectChannel> direct_;
  std::unique_ptr<rmi::HedgedChannel> hedged_;
  std::unique_ptr<rmi::RetriableChannel> retriable_;
  rmi::Channel* top_ = nullptr;
  std::int64_t outstanding_ = 0;  // set_policy guard

  std::map<common::ComponentName, std::uint64_t> known_epochs_;

  std::int64_t* async_invokes_;    // "rts.async_invokes"
  std::int64_t* async_redirects_;  // "rts.async_redirects"
  std::int64_t* async_relocates_;  // "rts.async_relocates"
  std::int64_t* async_moves_;      // "rts.async_moves"
};

}  // namespace mage::rts
