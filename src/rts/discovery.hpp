// Resource discovery.
//
// The paper's introduction requires that distributed systems "support host
// and resource discovery, incorporate new hardware and robustly cope with
// changing network conditions".  This module is MAGE's discovery service:
// each namespace advertises named resources ("printer", "sensor",
// "cpu-pool") with an attached capacity figure; clients query the
// federation and feed the answers to target-selection policies.
//
// Discovery is deliberately registry-like rather than broadcast-based: a
// client asks each candidate namespace directly (one get-resources RMI per
// node), mirroring how the paper's MAGE rides on RMI rather than multicast.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mage::rts {

struct ResourceAdvert {
  std::string kind;     // e.g. "printer"
  double capacity = 0;  // kind-specific units (pages/min, MB/s, ...)
};

// Per-namespace advertisement table; owned by the MageServer.
class ResourceBoard {
 public:
  void advertise(const std::string& kind, double capacity) {
    adverts_[kind] = capacity;
  }

  void withdraw(const std::string& kind) { adverts_.erase(kind); }

  [[nodiscard]] bool offers(const std::string& kind) const {
    return adverts_.contains(kind);
  }

  [[nodiscard]] double capacity(const std::string& kind) const {
    auto it = adverts_.find(kind);
    return it == adverts_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, double>& all() const {
    return adverts_;
  }

 private:
  std::map<std::string, double> adverts_;
};

// One discovery answer: a namespace and what it offers.
struct DiscoveredHost {
  common::NodeId node;
  double capacity = 0;
};

}  // namespace mage::rts
