// Per-namespace MAGE registry (Section 4.1).
//
// "The MAGE Registry wraps the RMI registry and tracks object locations.
// ...  For mobile objects, the registry maintains a list of all the objects
// that have ever been moved into a namespace in the registry's JVM and
// their last known location.  To find an object, the registry simply
// follows the chain of forwarding addresses until it reaches the MAGE
// server currently hosting the component.  As the result returns, each
// server updates its forwarding address, thus collapsing the path."
//
// This class is the *local* slice of that global namespace: objects bound
// here, plus forwarding addresses for objects that left.  The chain walk
// itself is a network protocol and lives in MageServer; path collapsing
// calls back into update_forward().
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "rts/component.hpp"
#include "serial/buffer.hpp"

namespace mage::rts {

class Registry {
 public:
  explicit Registry(common::NodeId self) : self_(self) {}

  // --- local bindings -----------------------------------------------------

  // Binds `object` under `name` in this namespace; clears any forwarding
  // entry (the object is back).
  void bind(const common::ComponentName& name,
            std::unique_ptr<MageObject> object);

  // Removes and returns the local object (it is about to migrate).
  [[nodiscard]] std::unique_ptr<MageObject> unbind(
      const common::ComponentName& name);

  [[nodiscard]] bool has_local(const common::ComponentName& name) const {
    return objects_.contains(name);
  }

  // Borrow the live object; throws NotFoundError when not local.
  [[nodiscard]] MageObject& local(const common::ComponentName& name);

  [[nodiscard]] std::vector<common::ComponentName> local_names() const;

  // --- forwarding chain -----------------------------------------------------

  // Records "the object left this namespace toward `to`" or collapses the
  // chain after a successful lookup.
  void update_forward(const common::ComponentName& name, common::NodeId to);

  [[nodiscard]] std::optional<common::NodeId> forward(
      const common::ComponentName& name) const;

  // --- MA result store ------------------------------------------------------

  // Under the mobile-agent model the invocation result "stays at the remote
  // host"; it is parked here until fetched.
  void park_result(const common::ComponentName& name, serial::Buffer result);
  [[nodiscard]] std::optional<serial::Buffer> take_result(
      const common::ComponentName& name);

  [[nodiscard]] common::NodeId self() const { return self_; }

 private:
  common::NodeId self_;
  std::map<common::ComponentName, std::unique_ptr<MageObject>> objects_;
  std::map<common::ComponentName, common::NodeId> forwards_;
  std::map<common::ComponentName, serial::Buffer> results_;
};

}  // namespace mage::rts
