// Per-namespace MAGE registry (Section 4.1).
//
// "The MAGE Registry wraps the RMI registry and tracks object locations.
// ...  For mobile objects, the registry maintains a list of all the objects
// that have ever been moved into a namespace in the registry's JVM and
// their last known location.  To find an object, the registry simply
// follows the chain of forwarding addresses until it reaches the MAGE
// server currently hosting the component.  As the result returns, each
// server updates its forwarding address, thus collapsing the path."
//
// This class is the *local* slice of that global namespace: objects bound
// here, plus forwarding addresses for objects that left.  The chain walk
// itself is a network protocol and lives in MageServer; path collapsing
// calls back into update_forward().
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "rts/component.hpp"
#include "serial/buffer.hpp"

namespace mage::rts {

class Registry {
 public:
  explicit Registry(common::NodeId self) : self_(self) {}

  // --- local bindings -----------------------------------------------------

  // Binds `object` under `name` in this namespace; clears any forwarding
  // entry (the object is back).  `epoch` is the placement epoch the object
  // arrives at (a migration destination binds at the source's epoch + 1);
  // 0 keeps the highest epoch this registry has seen, floored at 1 — a
  // first bind starts every object's history at epoch 1.
  void bind(const common::ComponentName& name,
            std::unique_ptr<MageObject> object, std::uint64_t epoch = 0);

  // Removes and returns the local object (it is about to migrate).
  [[nodiscard]] std::unique_ptr<MageObject> unbind(
      const common::ComponentName& name);

  [[nodiscard]] bool has_local(const common::ComponentName& name) const {
    return objects_.contains(name);
  }

  // Borrow the live object; throws NotFoundError when not local.
  [[nodiscard]] MageObject& local(const common::ComponentName& name);

  [[nodiscard]] std::vector<common::ComponentName> local_names() const;

  // --- forwarding chain -----------------------------------------------------

  // Records "the object left this namespace toward `to`" or collapses the
  // chain after a successful lookup.  The unfenced overload keeps the
  // current epoch knowledge; the fenced overload applies only when `epoch`
  // is at least what this registry already knows (and records it) —
  // returns false when the update was stale and ignored.  Epoch-fenced
  // forwards are what stop a stale chain from resurrecting a dead home:
  // knowledge can only move forward in placement history.
  void update_forward(const common::ComponentName& name, common::NodeId to);
  bool update_forward(const common::ComponentName& name, common::NodeId to,
                      std::uint64_t epoch);

  [[nodiscard]] std::optional<common::NodeId> forward(
      const common::ComponentName& name) const;

  // Highest placement epoch this registry has seen for `name` (local bind
  // or fenced forward); 0 = no epoch knowledge.
  [[nodiscard]] std::uint64_t epoch_of(const common::ComponentName& name) const;

  // --- MA result store ------------------------------------------------------

  // Under the mobile-agent model the invocation result "stays at the remote
  // host"; it is parked here until fetched.
  void park_result(const common::ComponentName& name, serial::Buffer result);
  [[nodiscard]] std::optional<serial::Buffer> take_result(
      const common::ComponentName& name);

  [[nodiscard]] common::NodeId self() const { return self_; }

 private:
  common::NodeId self_;
  std::map<common::ComponentName, std::unique_ptr<MageObject>> objects_;
  std::map<common::ComponentName, common::NodeId> forwards_;
  // Placement-epoch knowledge per name; outlives both the binding and the
  // forward (an erased forward must not forget how recent it was).
  std::map<common::ComponentName, std::uint64_t> epochs_;
  std::map<common::ComponentName, serial::Buffer> results_;
};

}  // namespace mage::rts
