// Access control for MAGE namespaces.
//
// "Currently, MAGE trusts its constituent servers.  We are exploring a
// version of MAGE that runs on and scales to WANs ... fragmented into
// competing and disjoint administrative domains, each with different
// services, resources and security needs ...  We also are working on
// adding access control and resource allocation models to MAGE."
// (Section 7.)
//
// This module is that access-control model: each namespace owns an
// AccessController consulted by its MageServer before executing an
// operation on behalf of a remote caller.  The default policy is the
// paper's status quo — trust everyone — and deployments tighten it with
// per-operation allow/deny rules keyed by caller node or caller domain.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/ids.hpp"

namespace mage::rts {

// The remotely invocable operation families a policy can gate.
enum class Operation : std::uint8_t {
  Lookup,       // walking forwarding chains through this namespace
  Invoke,       // executing a method on a hosted object
  MoveOut,      // migrating a hosted object away
  TransferIn,   // accepting a migrating object
  FetchClass,   // serving a class image
  LoadClass,    // accepting a pushed class image
  Instantiate,  // acting as a remote object factory
  Lock,         // locking a hosted object
};

[[nodiscard]] const char* operation_name(Operation op);

enum class Verdict : std::uint8_t { Allow, Deny };

class AccessController {
 public:
  // The paper's default: "MAGE trusts its constituent servers".
  AccessController() = default;

  // Changes the fall-through verdict for callers matching no rule.
  void set_default(Verdict verdict) { default_ = verdict; }

  // Node-level rules take precedence over domain-level rules.
  void allow_node(Operation op, common::NodeId caller);
  void deny_node(Operation op, common::NodeId caller);
  void allow_domain(Operation op, const std::string& domain);
  void deny_domain(Operation op, const std::string& domain);

  // Decides whether `caller` (member of `caller_domain`, empty when
  // domains are unused) may perform `op` here.
  [[nodiscard]] bool permitted(Operation op, common::NodeId caller,
                               const std::string& caller_domain) const;

  [[nodiscard]] std::uint64_t denials() const { return denials_; }
  void count_denial() const { ++denials_; }

 private:
  Verdict default_ = Verdict::Allow;
  std::map<std::pair<Operation, common::NodeId>, Verdict> node_rules_;
  std::map<std::pair<Operation, std::string>, Verdict> domain_rules_;
  mutable std::uint64_t denials_ = 0;
};

// Resource-allocation model for one namespace (the other half of the
// paper's Section 7 agenda): admission control over what a namespace will
// host.  A migration or remote instantiation that would exceed the budget
// is rejected; the mover's attribute can then pick another target.
struct ResourceModel {
  // Maximum mobile objects resident at once; nullopt = unlimited.
  std::optional<std::size_t> max_objects;
  // Maximum serialized state accepted in one transfer; nullopt = any.
  std::optional<std::size_t> max_transfer_bytes;

  [[nodiscard]] bool admits_object(std::size_t currently_hosted) const {
    return !max_objects.has_value() || currently_hosted < *max_objects;
  }
  [[nodiscard]] bool admits_transfer(std::size_t state_bytes) const {
    return !max_transfer_bytes.has_value() ||
           state_bytes <= *max_transfer_bytes;
  }
};

}  // namespace mage::rts
