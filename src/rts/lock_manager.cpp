#include "rts/lock_manager.hpp"

#include <algorithm>

namespace mage::rts {

LockGrant LockManager::make_grant(common::NodeId target) {
  const LockKind kind = target == self_ ? LockKind::Stay : LockKind::Move;
  if (kind == LockKind::Stay) {
    ++stay_grants_;
  } else {
    ++move_grants_;
  }
  return LockGrant{common::LockId{next_lock_id_++}, kind};
}

void LockManager::request(const common::ComponentName& name,
                          common::ActivityId activity, common::NodeId target,
                          GrantFn grant, BounceFn bounce) {
  ObjectLock& lock = locks_[name];
  if (!lock.holder.has_value()) {
    lock.holder = make_grant(target);
    lock.holder_activity = activity;
    grant(*lock.holder);
    return;
  }
  lock.queue.push_back(
      Pending{activity, target, std::move(grant), std::move(bounce)});
}

bool LockManager::release(const common::ComponentName& name,
                          common::LockId id) {
  auto it = locks_.find(name);
  if (it == locks_.end()) return false;
  ObjectLock& lock = it->second;
  if (!lock.holder.has_value() || lock.holder->id != id) return false;
  lock.holder.reset();
  grant_next(name, lock);
  if (!lock.holder.has_value() && lock.queue.empty()) locks_.erase(it);
  return true;
}

void LockManager::grant_next(const common::ComponentName& name,
                             ObjectLock& lock) {
  (void)name;
  if (lock.queue.empty()) return;

  auto chosen = lock.queue.begin();
  if (!fair_) {
    // The paper's unfair policy: any waiting stay-lock request (target ==
    // this node) jumps the queue, because granting a move lock would pay
    // for a migration.
    auto stay = std::find_if(lock.queue.begin(), lock.queue.end(),
                             [this](const Pending& p) {
                               return p.target == self_;
                             });
    if (stay != lock.queue.end()) chosen = stay;
  }

  Pending pending = std::move(*chosen);
  lock.queue.erase(chosen);
  lock.holder = make_grant(pending.target);
  lock.holder_activity = pending.activity;
  pending.grant(*lock.holder);
}

void LockManager::on_object_departed(const common::ComponentName& name,
                                     common::NodeId new_host) {
  auto it = locks_.find(name);
  if (it == locks_.end()) return;
  ObjectLock& lock = it->second;
  std::deque<Pending> bounced = std::move(lock.queue);
  lock.queue.clear();
  for (Pending& pending : bounced) {
    if (pending.bounce) pending.bounce(new_host);
  }
  if (!lock.holder.has_value()) locks_.erase(it);
}

bool LockManager::is_locked(const common::ComponentName& name) const {
  auto it = locks_.find(name);
  return it != locks_.end() && it->second.holder.has_value();
}

std::size_t LockManager::queue_length(
    const common::ComponentName& name) const {
  auto it = locks_.find(name);
  return it == locks_.end() ? 0 : it->second.queue.size();
}

}  // namespace mage::rts
