// MageClient: the driver-side API mobility attributes are built on.
//
// A MageClient represents one application activity running inside one
// namespace.  Its methods are synchronous — they send protocol messages and
// run the simulation until the reply lands — which reproduces the paper's
// programming model: the programmer calls ma.bind() and then invokes
// methods, while "the MAGE RTS transparently manages location of code and
// data".
//
// Operations addressed to "wherever the object currently is" (invoke, move,
// lock) chase the object: they try the best-known host, follow Moved hints
// along forwarding chains, fall back to a full registry find, and retry
// with backoff while an object is mid-flight.  This is what lets mobility
// attributes that assume static placement keep working on mobile
// components (Section 3.6).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "rmi/transport.hpp"
#include "rts/directory.hpp"
#include "rts/protocol.hpp"
#include "rts/server.hpp"
#include "serial/traits.hpp"

namespace mage::rts {

class DirectoryClient;

// Proof of a granted stay/move lock; needed to unlock.
struct LockHandle {
  common::ComponentName name;
  common::NodeId host = common::kNoNode;  // where the lock queue lives
  std::uint64_t lock_id = 0;
  LockKind kind = LockKind::Stay;
};

class MageClient {
 public:
  MageClient(rmi::Transport& transport, MageServer& local_server,
             Directory& directory, const ClassWorld& world,
             common::ActivityId activity);

  [[nodiscard]] common::NodeId self() const { return transport_.self(); }
  [[nodiscard]] common::ActivityId activity() const { return activity_; }
  [[nodiscard]] MageServer& local_server() { return local_server_; }
  [[nodiscard]] Directory& directory() { return directory_; }

  // Opt-in high-availability naming: when set, the client announces new
  // components to the replicated director quorum and falls back to it when
  // the static directory's lead (or a forwarding chain) dead-ends — e.g.
  // when the original home node is crashed.  Null by default (pure
  // static-directory behavior).  Not owned.
  void set_directory_client(DirectoryClient* dclient) {
    directory_client_ = dclient;
  }
  [[nodiscard]] DirectoryClient* directory_client() const {
    return directory_client_;
  }

  // Epoch-fence bookkeeping: the highest placement epoch this client has
  // confirmed for `name` (0 = none).  note_epoch records authoritative
  // knowledge (a directory resolution, a completed move); Moved hints with
  // an older epoch are rejected instead of chased — a stale chain can
  // never send this client back to a dead ex-home.
  void note_epoch(const common::ComponentName& name, std::uint64_t epoch);
  [[nodiscard]] std::uint64_t known_epoch(
      const common::ComponentName& name) const;
  [[nodiscard]] sim::Simulation& simulation() {
    return transport_.network().node_sim(transport_.self());
  }

  // --- component lifecycle --------------------------------------------------

  // Creates a component in this namespace: instantiates `class_name`
  // locally, binds it under `name`, and announces the (name, class, home =
  // this node, is_public) tuple in the static directory.
  MageObject& create_component(const common::ComponentName& name,
                               const std::string& class_name,
                               bool is_public = false);

  // Borrows a locally hosted object (e.g. to set initial state).
  MageObject& local_object(const common::ComponentName& name);

  [[nodiscard]] bool has_local(const common::ComponentName& name) const;

  // --- registry --------------------------------------------------------------

  // Resolves the component's current namespace.  Consults the local MAGE
  // registry first (cheap, direct), then walks forwarding chains from the
  // best-known starting point.  Throws NotFoundError.
  common::NodeId find(const common::ComponentName& name);

  [[nodiscard]] bool is_shared(const common::ComponentName& name) const;

  // --- class & object movement ----------------------------------------------

  // Moves the component's object to `to`; returns the new host (== to).
  // `hint` short-circuits the initial find when the caller tracks cloc.
  common::NodeId move(const common::ComponentName& name, common::NodeId to,
                      common::NodeId hint = common::kNoNode);

  // Push-style class shipping (REV/MA): revalidates the target's copy of
  // the class and pushes the image when missing.  Per the traditional
  // models, the revalidation round trip happens on *every* call; only the
  // image bytes are saved by the target's class cache.
  void ensure_class_at(common::NodeId target, const std::string& class_name);

  // Pull-style class shipping (COD): fetches the image from `source` into
  // this namespace's cache.  The revalidation round trip always happens;
  // the image transfer is skipped when the local cache already has it.
  void fetch_class_to_local(common::NodeId source,
                            const std::string& class_name);

  // Remote factory: instantiate `class_name` at `target` under
  // `object_name` and record the binding (home = this node).
  void instantiate_at(common::NodeId target, const std::string& class_name,
                      const common::ComponentName& object_name,
                      bool is_public = false);

  // Traditional REV's per-bind Naming.lookup of the remote execution
  // server's stub — a full RMI round trip to `target`.
  void resolve_server(common::NodeId target);

  // Ships a *locally hosted* object directly to `to` (the agent-style
  // transfer: state and dispatch travel in one message; the receiver pulls
  // the class image only if it lacks it).
  void transfer_out(const common::ComponentName& name, common::NodeId to);

  // --- invocation ----------------------------------------------------------

  // Synchronous typed invocation; chases the object from `cloc` (updated
  // in place as the chase learns the object's location).
  template <typename R, typename... Args>
  R invoke(common::NodeId& cloc, const common::ComponentName& name,
           const std::string& method, const Args&... args) {
    serial::Writer w;
    (serial::put(w, args), ...);
    auto result = invoke_raw(cloc, name, method, w.take());
    serial::Reader r(result);
    return serial::get<R>(r);
  }

  // Asynchronous one-way invocation (mobile-agent semantics): the reply is
  // only an acknowledgement; the result stays at the host.
  template <typename... Args>
  void invoke_oneway(common::NodeId& cloc, const common::ComponentName& name,
                     const std::string& method, const Args&... args) {
    serial::Writer w;
    (serial::put(w, args), ...);
    invoke_oneway_raw(cloc, name, method, w.take());
  }

  // Retrieves a result parked by a one-way invocation.
  template <typename R>
  R fetch_result(common::NodeId& cloc, const common::ComponentName& name) {
    auto result = fetch_result_raw(cloc, name);
    serial::Reader r(result);
    return serial::get<R>(r);
  }

  serial::Buffer invoke_raw(common::NodeId& cloc,
                            const common::ComponentName& name,
                            const std::string& method, serial::Buffer args);
  void invoke_oneway_raw(common::NodeId& cloc,
                         const common::ComponentName& name,
                         const std::string& method, serial::Buffer args);
  serial::Buffer fetch_result_raw(common::NodeId& cloc,
                                  const common::ComponentName& name);

  // --- condensed remote evaluation --------------------------------------------------

  // The Section 5 optimization: instantiate `class_name` at `target` under
  // `object_name`, invoke `method`, and return the result — all in a
  // single RMI exchange (vs traditional REV's four).
  template <typename R, typename... Args>
  R exec_at(common::NodeId target, const std::string& class_name,
            const common::ComponentName& object_name,
            const std::string& method, const Args&... args) {
    serial::Writer w;
    (serial::put(w, args), ...);
    auto result = exec_at_raw(target, class_name, object_name, method,
                              w.take());
    serial::Reader r(result);
    return serial::get<R>(r);
  }

  serial::Buffer exec_at_raw(common::NodeId target,
                             const std::string& class_name,
                             const common::ComponentName& name,
                             const std::string& method, serial::Buffer args);

  // --- resource discovery --------------------------------------------------------

  // Queries each candidate namespace for resources of `kind`; returns the
  // offering hosts with their advertised capacities (unreachable or
  // denying candidates are skipped).  One RMI per candidate.
  std::vector<DiscoveredHost> discover(
      const std::string& kind,
      const std::vector<common::NodeId>& candidates);

  // Convenience: the offering host with the highest capacity, or kNoNode.
  common::NodeId discover_best(const std::string& kind,
                               const std::vector<common::NodeId>& candidates);

  // --- class statics -----------------------------------------------------------

  // Reads / writes a static field of `class_name` at its statics home
  // (home-station coherency: every access is one round trip to the home,
  // so class data stays sequentially consistent despite class cloning).
  template <typename T>
  T static_get(const std::string& class_name, const std::string& key) {
    auto bytes = static_get_raw(class_name, key);
    serial::Reader r(bytes);
    return serial::get<T>(r);
  }

  template <typename T>
  void static_put(const std::string& class_name, const std::string& key,
                  const T& value) {
    serial::Writer w;
    serial::put(w, value);
    static_put_raw(class_name, key, w.take());
  }

  serial::Buffer static_get_raw(const std::string& class_name,
                                const std::string& key);
  void static_put_raw(const std::string& class_name, const std::string& key,
                      serial::Buffer value);

  // --- locking ----------------------------------------------------------------

  // Acquires the stay/move lock for `name`, computing at `target`
  // (Section 4.4: "the lock method takes the name of the object and the
  // mobility attribute's target").  Blocks (in simulated time) while the
  // lock is held elsewhere.
  LockHandle lock(const common::ComponentName& name, common::NodeId target);
  void unlock(const LockHandle& handle);

  // Async variants for multi-activity interleaving tests.  Move-only
  // callbacks (the spine's convention): captures routinely hold Buffers
  // and handles, and a UniqueFunction small enough for the inline SBO
  // never heap-allocates.
  void lock_async(common::NodeId host, const common::ComponentName& name,
                  common::NodeId target,
                  common::UniqueFunction<void(proto::LockReply)> on_reply);
  void unlock_async(common::NodeId host, const common::ComponentName& name,
                    std::uint64_t lock_id,
                    common::UniqueFunction<void()> on_reply);

  // --- misc --------------------------------------------------------------------

  [[nodiscard]] double load_of(common::NodeId node);
  void ping(common::NodeId node);

  // Advances simulated time by `d` on behalf of driver-side CPU work.
  void charge(common::SimDuration d);

 private:
  [[nodiscard]] const net::CostModel& model() const;

  // One full lookup starting from best-known knowledge; nullopt if the
  // chase dead-ends (caller may back off and retry).
  std::optional<common::NodeId> try_find(const common::ComponentName& name);

  // Replicated-directory fallback for try_find; nullopt when no
  // DirectoryClient is configured or the quorum has no (fresh) record.
  std::optional<common::NodeId> directory_find(
      const common::ComponentName& name);

  // Applies the epoch fence to a Moved hint: true = chase it (and the
  // epoch knowledge was recorded), false = stale hint rejected (counted in
  // "rts.stale_hints_rejected"; caller re-finds instead).
  bool accept_hint(const common::ComponentName& name, common::NodeId hint,
                   std::uint64_t hint_epoch);

  rmi::Transport& transport_;
  MageServer& local_server_;
  Directory& directory_;
  const ClassWorld& world_;
  common::ActivityId activity_;
  DirectoryClient* directory_client_ = nullptr;
  // Highest confirmed placement epoch per name (see note_epoch).
  std::map<common::ComponentName, std::uint64_t> known_epochs_;
  // (target, class) pairs this client knows are cached remotely — lets a
  // cold push ship the image in one optimistic round trip while warm
  // pushes degrade to a small revalidation call.
  std::set<std::pair<common::NodeId, std::string>> classes_pushed_;
};

}  // namespace mage::rts
