// MageSystem: boots a whole MAGE federation in one simulation.
//
// Owns the simulation universe (clock, RNG, stats), the network, the
// process-wide ClassWorld and static Directory, and one (Transport,
// MageServer, MageClient) triple per namespace.  Figure 6 of the paper —
// cooperating JVMs, each with a Mage registry, server objects and bound
// mobility attributes — corresponds to one MageSystem with N nodes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "rts/client.hpp"
#include "rts/directory.hpp"
#include "rts/server.hpp"
#include "sim/simulation.hpp"

namespace mage::rts {

class MageSystem {
 public:
  explicit MageSystem(net::CostModel model = net::CostModel::jdk122_classic(),
                      std::uint64_t seed = 0x6D616765u);

  MageSystem(const MageSystem&) = delete;
  MageSystem& operator=(const MageSystem&) = delete;

  // Adds a namespace/VM; returns its node id.  Call before using clients.
  common::NodeId add_node(const std::string& label);

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] ClassWorld& world() { return world_; }
  [[nodiscard]] Directory& directory() { return directory_; }
  [[nodiscard]] common::StatsRegistry& stats() { return sim_.stats(); }

  [[nodiscard]] MageServer& server(common::NodeId node);
  [[nodiscard]] MageClient& client(common::NodeId node);
  [[nodiscard]] rmi::Transport& transport(common::NodeId node);

  [[nodiscard]] std::vector<common::NodeId> nodes() const {
    return network_.node_ids();
  }

  // Installs a class image on a node "at deployment time" (it is on the
  // node's classpath rather than shipped at runtime).
  void install_class(common::NodeId node, const std::string& class_name);

  // Installs a class image on every node.
  void install_class_everywhere(const std::string& class_name);

  // --- administrative domains (Section 7's WAN vision) ---------------------

  // Assigns a node to a named domain and re-derives inter-domain link
  // latencies: links whose endpoints are in different domains get the
  // extra one-way latency configured by set_interdomain_latency.
  void assign_domain(common::NodeId node, const std::string& domain);

  // Extra one-way latency for every cross-domain link (default 0).
  void set_interdomain_latency(common::SimDuration extra_us);

  [[nodiscard]] std::vector<common::NodeId> nodes_in_domain(
      const std::string& domain) const;

  // Marks every server's engine warm (for logic tests and the amortized
  // halves of benches that model a long-running federation).
  void warm_all();

  // Human-readable dump of the whole federation: per-node registries,
  // forwards, class caches — the executable analogue of Figure 6.
  [[nodiscard]] std::string describe() const;

 private:
  struct NodeRuntime {
    std::unique_ptr<rmi::Transport> transport;
    std::unique_ptr<MageServer> server;
    std::unique_ptr<MageClient> client;
  };

  [[nodiscard]] NodeRuntime& runtime(common::NodeId node);
  [[nodiscard]] const NodeRuntime& runtime(common::NodeId node) const;
  void refresh_domain_latencies();

  sim::Simulation sim_;
  net::Network network_;
  ClassWorld world_;
  Directory directory_;
  std::vector<NodeRuntime> runtimes_;
  std::uint64_t next_activity_ = 1;
  common::SimDuration interdomain_latency_us_ = 0;
};

}  // namespace mage::rts
