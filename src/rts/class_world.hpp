// Process-wide class table ("the world's code").
//
// MAGE ships *class images* between namespaces but, as the paper notes, it
// "implicitly defines mobile classes globally" by cloning class files.  We
// reproduce that split: the ClassWorld holds the executable artifacts — the
// factory and the method table — once per process (the analogue of every
// JVM being able to define the class once it has the bytes), while each
// node's ClassCache (class_cache.hpp) tracks which namespaces have
// *received* the image and may therefore instantiate or deserialize
// instances.
//
// Methods are registered through ClassBuilder with automatic marshalling:
//   ClassBuilder<Counter>(world, "Counter")
//       .method("increment", &Counter::increment)
//       .method("get", &Counter::get);
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "rts/component.hpp"
#include "serial/traits.hpp"
#include "serial/type_registry.hpp"

namespace mage::rts {

// Marshalled method: serialized args in, serialized result out.
using MethodFn =
    std::function<serial::Buffer(MageObject&, const serial::Buffer&)>;

struct MethodEntry {
  MethodFn fn;
  // Simulated CPU time the method body consumes (e.g. a geo-data filter
  // pass); charged by the hosting server before the result is produced.
  std::int64_t cost_us = 0;
};

struct ClassDescriptor {
  std::string name;
  // Simulated size of the class image on the wire (bytes).  A minimal
  // class file extending UnicastRemoteObject — the paper's test object —
  // is about 2 KB.
  std::uint32_t code_size = 2048;
  std::map<std::string, MethodEntry> methods;
  // Namespace holding the class's static fields (Section 4.2: "handling
  // classes with static fields would require extending MAGE to provide
  // coherency for class data" — we provide home-station coherency: every
  // static read/write is served at this node).  kNoNode = no statics.
  common::NodeId statics_home = common::kNoNode;
};

class ClassWorld {
 public:
  // Registers a class: factory into the type registry, descriptor here.
  template <typename T>
  ClassDescriptor& register_class(const std::string& name,
                                  std::uint32_t code_size = 2048) {
    static_assert(std::is_base_of_v<MageObject, T>);
    types_.register_type(name, [] { return std::make_unique<T>(); });
    auto& d = descriptors_[name];
    d.name = name;
    d.code_size = code_size;
    return d;
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return descriptors_.contains(name);
  }

  // Declares which namespace serves `class_name`'s static fields.
  void set_statics_home(const std::string& class_name, common::NodeId home) {
    auto it = descriptors_.find(class_name);
    if (it == descriptors_.end()) {
      throw common::SerializationError("class '" + class_name +
                                       "' is not registered in the world");
    }
    it->second.statics_home = home;
  }

  [[nodiscard]] const ClassDescriptor& descriptor(
      const std::string& name) const;

  // Instantiates a default-constructed object of `class_name`.
  [[nodiscard]] std::unique_ptr<MageObject> instantiate(
      const std::string& class_name) const;

  // Instantiates and restores state.
  [[nodiscard]] std::unique_ptr<MageObject> deserialize(
      const std::string& class_name, serial::Reader& r) const;

  // Looks up a method; throws RemoteInvocationError when missing.
  [[nodiscard]] const MethodEntry& method(
      const std::string& class_name, const std::string& method_name) const;

 private:
  serial::TypeRegistry types_;
  std::map<std::string, ClassDescriptor> descriptors_;
};

namespace detail {

// Invokes a member function with arguments decoded from `args_bytes` and
// encodes the result (Unit for void).  `Fn` is a pointer to member
// function, const or not.
template <typename T, typename R, typename Fn, typename... Args>
MethodFn wrap_method_impl(Fn fn, std::tuple<Args...>*) {
  return [fn](MageObject& object, const serial::Buffer& args_bytes) {
    auto* typed = dynamic_cast<T*>(&object);
    if (typed == nullptr) {
      throw common::RemoteInvocationError(
          "object is not an instance of the method's class");
    }
    serial::Reader r(args_bytes);
    // Decode left-to-right into a tuple (function argument evaluation
    // order is unspecified; tuple construction with explicit sequencing
    // keeps the wire format deterministic).
    std::tuple<std::decay_t<Args>...> args{
        serial::get<std::decay_t<Args>>(r)...};
    serial::Writer w;
    if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&&... a) { (typed->*fn)(a...); }, args);
      serial::put(w, serial::Unit{});
    } else {
      R result = std::apply([&](auto&&... a) { return (typed->*fn)(a...); },
                            args);
      serial::put(w, result);
    }
    return w.take();
  };
}

template <typename T, typename R, typename... Args>
MethodFn wrap_method(R (T::*fn)(Args...)) {
  return wrap_method_impl<T, R>(fn,
                                static_cast<std::tuple<Args...>*>(nullptr));
}

template <typename T, typename R, typename... Args>
MethodFn wrap_method(R (T::*fn)(Args...) const) {
  return wrap_method_impl<T, R>(fn,
                                static_cast<std::tuple<Args...>*>(nullptr));
}

}  // namespace detail

// Fluent registration of a class and its remotely invocable methods.
template <typename T>
class ClassBuilder {
 public:
  ClassBuilder(ClassWorld& world, const std::string& name,
               std::uint32_t code_size = 2048)
      : descriptor_(world.register_class<T>(name, code_size)) {}

  template <typename R, typename... Args>
  ClassBuilder& method(const std::string& method_name, R (T::*fn)(Args...),
                       std::int64_t cost_us = 0) {
    descriptor_.methods[method_name] =
        MethodEntry{detail::wrap_method(fn), cost_us};
    return *this;
  }

  template <typename R, typename... Args>
  ClassBuilder& method(const std::string& method_name,
                       R (T::*fn)(Args...) const, std::int64_t cost_us = 0) {
    descriptor_.methods[method_name] =
        MethodEntry{detail::wrap_method(fn), cost_us};
    return *this;
  }

 private:
  ClassDescriptor& descriptor_;
};

}  // namespace mage::rts
