// The MAGE component model.
//
// "In Java, objects cannot exist without classes, but classes can exist
// without objects.  Thus, a class and an object form a pair, whose object
// can be null.  MAGE maps its notion of component to this pair."
// (Section 4.2.)  A component is therefore identified by a registry name
// and consists of a class (always) plus at most one live object.  Mobility
// attributes bind to components; binding to the class alone acts as an
// object factory.
#pragma once

#include <string>

#include "common/ids.hpp"
#include "serial/serializable.hpp"

namespace mage::rts {

// Base class for all migratable MAGE objects.  State moves via weak
// migration (serialize/deserialize); behaviour never moves — method bodies
// live in the process-wide ClassWorld, mirroring how MAGE clones class
// files to every namespace an object visits.
class MageObject : public serial::Serializable {};

// Statically shared knowledge about one component: "MAGE requires that
// mobile objects and their clients share the name of the mobile object's
// origin server, an interface to the mobile object and the mobile object's
// name as bound in the MAGE registry" (Section 7).  This struct is that
// shared static information.
struct ComponentInfo {
  common::ComponentName name;
  std::string class_name;
  common::NodeId home;   // origin server whose registry anchors the chain
  bool is_public = false;  // public objects are shared across activities
};

}  // namespace mage::rts
