// Deterministic leader election for the director quorum.
//
// A Raft-style election stripped to what a replicated *directory* needs:
// terms, randomized election timeouts, majority votes, and heartbeats —
// but no replicated log (placement records are epoch-fenced idempotent
// writes, so the directory state machine converges without log ordering;
// see director.hpp).
//
// Everything runs in simulated time, and every random choice (the election
// timeout) is drawn from the member's own per-shard RNG — so a 5-member
// election under partitions and crashes replays bit-identically at any
// worker count, for a given seed.  Timers are generation-counted rather
// than cancelled: re-arming bumps `timeout_gen_`, and a stale timer firing
// with an old generation is a no-op.  Timer events schedule with Wake::No
// (they are internal); the simulation is woken explicitly exactly where a
// role transition lands, so run_until predicates see every leadership
// change.
//
// A crashed member's timers keep firing locally (the network refuses its
// messages, the process model does not stop its clock).  That is
// deliberate: it keeps the event stream deterministic, and it reproduces
// the classic rejoin behavior — a revived member comes back with a high
// term and forces one re-election, which the chaos tests count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "rmi/transport.hpp"
#include "rts/protocol.hpp"

namespace mage::rts {

class Election {
 public:
  enum class Role { Follower, Candidate, Leader };

  struct Config {
    // Leader liveness signal; well under the election timeout.
    common::SimDuration heartbeat_interval_us = 1'500;
    // Election timeout = min + rng.next_below(span): the randomized spread
    // is what breaks split votes deterministically.
    common::SimDuration election_timeout_min_us = 4'000;
    common::SimDuration election_timeout_span_us = 4'000;
  };

  // `members` is the full quorum (including self), identical on every
  // member — the majority threshold is members/2 + 1.  (Two overloads
  // rather than a defaulted Config argument: GCC rejects `= {}` for a
  // nested class with member initializers inside its encloser.)
  Election(rmi::Transport& transport, std::vector<common::NodeId> members);
  Election(rmi::Transport& transport, std::vector<common::NodeId> members,
           Config config);

  Election(const Election&) = delete;
  Election& operator=(const Election&) = delete;

  // Registers the vote/heartbeat services and arms the first election
  // timeout.  Call once, before the simulation runs.
  void start();

  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] std::uint64_t term() const { return term_; }
  [[nodiscard]] bool is_leader() const { return role_ == Role::Leader; }
  // Best known leader: self when leading, the heartbeat source when
  // following one, kNoNode while an election is unresolved.
  [[nodiscard]] common::NodeId leader_hint() const { return leader_; }
  [[nodiscard]] const std::vector<common::NodeId>& members() const {
    return members_;
  }

  // Fires on every transition *to* leader (after the role is set).
  void set_on_leader(std::function<void()> cb) { on_leader_ = std::move(cb); }

 private:
  void arm_timeout();
  void on_timeout(std::uint64_t gen);
  void start_election();
  void become_leader();
  void become_follower(std::uint64_t term, common::NodeId leader);
  void send_heartbeats();
  void schedule_heartbeat(std::uint64_t gen);
  void handle_request_vote(common::NodeId caller,
                           const serial::BufferChain& body,
                           rmi::Replier replier);
  void handle_heartbeat(common::NodeId caller, const serial::BufferChain& body,
                        rmi::Replier replier);
  [[nodiscard]] sim::Simulation& sim();
  [[nodiscard]] common::NodeId self() const { return transport_.self(); }
  [[nodiscard]] int majority() const {
    return static_cast<int>(members_.size()) / 2 + 1;
  }

  rmi::Transport& transport_;
  std::vector<common::NodeId> members_;
  Config config_;

  Role role_ = Role::Follower;
  std::uint64_t term_ = 0;
  common::NodeId voted_for_ = common::kNoNode;
  common::NodeId leader_ = common::kNoNode;
  int votes_ = 0;
  common::SimTime election_start_ = 0;

  // Generation counters: bumping one invalidates every outstanding timer
  // of that family (cheaper and simpler than cancel bookkeeping).
  std::uint64_t timeout_gen_ = 0;
  std::uint64_t heartbeat_gen_ = 0;

  std::function<void()> on_leader_;

  std::int64_t* elections_held_;  // "rts.elections_held"
  std::int64_t* leader_changes_;  // "rts.leader_changes"
};

}  // namespace mage::rts
