#include "rts/election.hpp"

#include <utility>

namespace mage::rts {

namespace proto_verbs = proto::verbs;

// Vote and heartbeat traffic is fire-and-forget: liveness comes from the
// timers re-sending fresh rounds, not from transport retransmission.  One
// attempt with a short timeout keeps a partitioned member cheap.
constexpr rmi::CallOptions kElectionCall{2'000, 1};

Election::Election(rmi::Transport& transport,
                   std::vector<common::NodeId> members)
    : Election(transport, std::move(members), Config{}) {}

Election::Election(rmi::Transport& transport,
                   std::vector<common::NodeId> members, Config config)
    : transport_(transport),
      members_(std::move(members)),
      config_(config),
      elections_held_(sim().stats().counter_handle("rts.elections_held")),
      leader_changes_(sim().stats().counter_handle("rts.leader_changes")) {}

sim::Simulation& Election::sim() {
  return transport_.network().node_sim(transport_.self());
}

void Election::start() {
  transport_.register_service(
      proto_verbs::kRequestVote,
      [this](common::NodeId caller, const serial::BufferChain& body,
             rmi::Replier replier) {
        handle_request_vote(caller, body, std::move(replier));
      });
  transport_.register_service(
      proto_verbs::kHeartbeat,
      [this](common::NodeId caller, const serial::BufferChain& body,
             rmi::Replier replier) {
        handle_heartbeat(caller, body, std::move(replier));
      });
  arm_timeout();
}

void Election::arm_timeout() {
  const std::uint64_t gen = ++timeout_gen_;
  const common::SimDuration delay =
      config_.election_timeout_min_us +
      static_cast<common::SimDuration>(sim().rng().next_below(
          static_cast<std::uint64_t>(config_.election_timeout_span_us)));
  sim().schedule_after(delay, [this, gen] { on_timeout(gen); }, sim::Wake::No);
}

void Election::on_timeout(std::uint64_t gen) {
  if (gen != timeout_gen_) return;  // re-armed since; stale timer
  if (role_ == Role::Leader) return;
  start_election();
}

void Election::start_election() {
  role_ = Role::Candidate;
  ++term_;
  voted_for_ = self();
  leader_ = common::kNoNode;
  votes_ = 1;  // own vote
  election_start_ = sim().now();
  ++*elections_held_;
  sim().wake();
  // Re-arm: if this round splits or drowns, a fresh timeout starts the
  // next term.
  arm_timeout();

  proto::VoteRequest request;
  request.term = term_;
  request.candidate = self();
  const std::uint64_t election_term = term_;
  for (auto member : members_) {
    if (member == self()) continue;
    transport_.call(
        member, proto_verbs::kRequestVote, request.encode(),
        [this, election_term](rmi::CallResult result) {
          if (!result.ok) return;  // unreachable member; timers handle it
          const auto reply = proto::VoteReply::decode(result.body);
          if (reply.term > term_) {
            become_follower(reply.term, common::kNoNode);
            return;
          }
          if (role_ != Role::Candidate || term_ != election_term) return;
          if (!reply.granted) return;
          if (++votes_ >= majority()) become_leader();
        },
        kElectionCall);
  }
}

void Election::become_leader() {
  role_ = Role::Leader;
  leader_ = self();
  ++*leader_changes_;
  // Election latency in simulated time, from the term's first candidacy to
  // the majority landing.
  sim().stats().add("rts.election_time_us", sim().now() - election_start_);
  sim().wake();
  if (on_leader_) on_leader_();
  send_heartbeats();
  schedule_heartbeat(++heartbeat_gen_);
}

void Election::become_follower(std::uint64_t term, common::NodeId leader) {
  if (term > term_) {
    term_ = term;
    voted_for_ = common::kNoNode;
  }
  if (role_ != Role::Follower) {
    role_ = Role::Follower;
    ++heartbeat_gen_;  // stop any leader heartbeat loop
    sim().wake();
  }
  if (!common::is_no_node(leader)) leader_ = leader;
}

void Election::schedule_heartbeat(std::uint64_t gen) {
  sim().schedule_after(
      config_.heartbeat_interval_us,
      [this, gen] {
        if (gen != heartbeat_gen_ || role_ != Role::Leader) return;
        send_heartbeats();
        schedule_heartbeat(gen);
      },
      sim::Wake::No);
}

void Election::send_heartbeats() {
  proto::HeartbeatRequest request;
  request.term = term_;
  request.leader = self();
  for (auto member : members_) {
    if (member == self()) continue;
    transport_.call(
        member, proto_verbs::kHeartbeat, request.encode(),
        [this](rmi::CallResult result) {
          if (!result.ok) return;
          const auto reply = proto::HeartbeatReply::decode(result.body);
          if (reply.term > term_) {
            // A higher term exists (e.g. a revived member re-elected);
            // step down and wait for its leader's heartbeat.
            become_follower(reply.term, common::kNoNode);
            arm_timeout();
          }
        },
        kElectionCall);
  }
}

void Election::handle_request_vote(common::NodeId /*caller*/,
                                   const serial::BufferChain& body,
                                   rmi::Replier replier) {
  const auto request = proto::VoteRequest::decode(body);
  if (request.term > term_) become_follower(request.term, common::kNoNode);
  proto::VoteReply reply;
  const bool granted =
      request.term == term_ &&
      (common::is_no_node(voted_for_) || voted_for_ == request.candidate);
  if (granted) {
    voted_for_ = request.candidate;
    arm_timeout();  // granting a vote defers our own candidacy
  }
  reply.term = term_;
  reply.granted = granted;
  replier.ok(reply.encode());
}

void Election::handle_heartbeat(common::NodeId /*caller*/,
                                const serial::BufferChain& body,
                                rmi::Replier replier) {
  const auto request = proto::HeartbeatRequest::decode(body);
  proto::HeartbeatReply reply;
  if (request.term >= term_) {
    become_follower(request.term, request.leader);
    arm_timeout();
    reply.ok = true;
  }
  reply.term = term_;
  replier.ok(reply.encode());
}

}  // namespace mage::rts
