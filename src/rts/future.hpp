// MageFuture / MagePromise: the chainable completion type the AsyncClient
// facade returns.
//
// Design constraints (docs/ARCHITECTURE.md "Completion-delivery
// determinism"):
//
//   * sim-deterministic — completion runs INLINE on the shard that
//     completes the promise, which for AsyncClient is always the calling
//     node's own shard (transport callbacks and channel timers both live
//     there).  There is no executor, no thread hop, no completion queue:
//     a future chain is just a deterministic sequence of calls inside one
//     simulation event.
//   * allocation-conscious — one shared state per future; continuations
//     are move-only common::UniqueFunction (inline SBO, no std::function
//     boxing); .then() adds exactly one state for its derived future.
//   * single-completion — completing a promise twice throws MageError;
//     attaching a continuation after completion runs it immediately (same
//     shard, still deterministic).
//
// Errors are strings (the wire's error currency).  They propagate through
// .then() chains without invoking the mapped functions; .on_error()
// observes them.  `Unit` stands in for void results so combinators stay
// regular.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/function.hpp"

namespace mage::rts {

struct Unit {};

template <typename R>
class MageFuture;
template <typename R>
class MagePromise;

namespace detail {

template <typename R>
struct FutureState {
  std::optional<R> value;
  std::string error;
  bool failed = false;
  std::vector<common::UniqueFunction<void(FutureState&)>> continuations;

  [[nodiscard]] bool completed() const { return value.has_value() || failed; }

  void set_value(R v) {
    if (completed()) {
      throw common::MageError("MagePromise completed twice");
    }
    value.emplace(std::move(v));
    settle();
  }

  void set_error(std::string e) {
    if (completed()) {
      throw common::MageError("MagePromise completed twice");
    }
    failed = true;
    error = std::move(e);
    settle();
  }

  void attach(common::UniqueFunction<void(FutureState&)> continuation) {
    if (completed()) {
      continuation(*this);  // late attach: run inline, same shard
      return;
    }
    continuations.push_back(std::move(continuation));
  }

 private:
  void settle() {
    // A continuation may attach further continuations (a .then() inside a
    // .then()); drain in waves so they all run, in attachment order.
    while (!continuations.empty()) {
      auto wave = std::move(continuations);
      continuations.clear();
      for (auto& continuation : wave) continuation(*this);
    }
  }
};

template <typename T>
struct IsFuture : std::false_type {};
template <typename T>
struct IsFuture<MageFuture<T>> : std::true_type {};

}  // namespace detail

template <typename R>
class MagePromise {
 public:
  MagePromise() : state_(std::make_shared<detail::FutureState<R>>()) {}

  [[nodiscard]] MageFuture<R> future() const;  // defined after MageFuture

  void set_value(R value) const { state_->set_value(std::move(value)); }
  void set_error(std::string error) const {
    state_->set_error(std::move(error));
  }
  [[nodiscard]] bool completed() const { return state_->completed(); }

 private:
  std::shared_ptr<detail::FutureState<R>> state_;
};

template <typename R>
class MageFuture {
 public:
  using Value = R;

  MageFuture() : state_(std::make_shared<detail::FutureState<R>>()) {}
  explicit MageFuture(std::shared_ptr<detail::FutureState<R>> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool completed() const { return state_->completed(); }
  [[nodiscard]] bool has_value() const { return state_->value.has_value(); }
  [[nodiscard]] bool has_error() const { return state_->failed; }
  // Valid only when has_value()/has_error(); driver-side inspection.
  [[nodiscard]] R& value() const { return *state_->value; }
  [[nodiscard]] const std::string& error() const { return state_->error; }

  // Chain a transformation.  `fn` may return a plain value U (->
  // MageFuture<U>), void (-> MageFuture<Unit>), or a MageFuture<U>
  // (unwrapped: the chain waits for it).  Upstream errors skip `fn` and
  // propagate.
  template <typename F>
  auto then(F&& fn) const {
    using Ret = std::invoke_result_t<std::decay_t<F>&, R&>;
    if constexpr (std::is_void_v<Ret>) {
      MagePromise<Unit> next;
      state_->attach([fn = std::forward<F>(fn),
                      next](detail::FutureState<R>& st) mutable {
        if (st.failed) {
          next.set_error(st.error);
          return;
        }
        fn(*st.value);
        next.set_value(Unit{});
      });
      return next.future();
    } else if constexpr (detail::IsFuture<Ret>::value) {
      using U = typename Ret::Value;
      MagePromise<U> next;
      state_->attach([fn = std::forward<F>(fn),
                      next](detail::FutureState<R>& st) mutable {
        if (st.failed) {
          next.set_error(st.error);
          return;
        }
        fn(*st.value).then([next](U& u) mutable {
          next.set_value(std::move(u));
        }).on_error([next](const std::string& e) mutable {
          next.set_error(e);
        });
      });
      return next.future();
    } else {
      MagePromise<Ret> next;
      state_->attach([fn = std::forward<F>(fn),
                      next](detail::FutureState<R>& st) mutable {
        if (st.failed) {
          next.set_error(st.error);
          return;
        }
        next.set_value(fn(*st.value));
      });
      return next.future();
    }
  }

  // Observe a failure (fn(const std::string&)).  Returns the same future
  // so success chains can continue past it.
  template <typename F>
  MageFuture<R> on_error(F&& fn) const {
    state_->attach(
        [fn = std::forward<F>(fn)](detail::FutureState<R>& st) mutable {
          if (st.failed) fn(st.error);
        });
    return *this;
  }

 private:
  template <typename T>
  friend class MagePromise;
  template <typename T>
  friend MageFuture<std::vector<T>> when_all(
      const std::vector<MageFuture<T>>& futures);
  template <typename T>
  friend MageFuture<std::pair<std::size_t, T>> when_any(
      const std::vector<MageFuture<T>>& futures);

  std::shared_ptr<detail::FutureState<R>> state_;
};

template <typename R>
MageFuture<R> MagePromise<R>::future() const {
  return MageFuture<R>(state_);
}

// All-of: completes with every result (input order) once the last input
// succeeds; fails fast with the FIRST error (later results are ignored).
template <typename R>
MageFuture<std::vector<R>> when_all(const std::vector<MageFuture<R>>& futures) {
  struct Join {
    MagePromise<std::vector<R>> promise;
    std::vector<std::optional<R>> slots;
    std::size_t remaining = 0;
    bool done = false;
  };
  auto join = std::make_shared<Join>();
  join->slots.resize(futures.size());
  join->remaining = futures.size();
  if (futures.empty()) {
    join->promise.set_value({});
    return join->promise.future();
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    futures[i].state_->attach(
        [join, i](detail::FutureState<R>& st) {
          if (join->done) return;
          if (st.failed) {
            join->done = true;
            join->promise.set_error(st.error);
            return;
          }
          join->slots[i].emplace(*st.value);
          if (--join->remaining > 0) return;
          join->done = true;
          std::vector<R> values;
          values.reserve(join->slots.size());
          for (auto& slot : join->slots) values.push_back(std::move(*slot));
          join->promise.set_value(std::move(values));
        });
  }
  return join->promise.future();
}

// Any-of: completes with (index, result) of the FIRST success; fails only
// when every input failed (with the last error).
template <typename R>
MageFuture<std::pair<std::size_t, R>> when_any(
    const std::vector<MageFuture<R>>& futures) {
  struct Race {
    MagePromise<std::pair<std::size_t, R>> promise;
    std::size_t remaining = 0;
    bool done = false;
  };
  auto race = std::make_shared<Race>();
  race->remaining = futures.size();
  if (futures.empty()) {
    race->promise.set_error("when_any on zero futures");
    return race->promise.future();
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    futures[i].state_->attach(
        [race, i](detail::FutureState<R>& st) {
          if (race->done) return;
          if (!st.failed) {
            race->done = true;
            race->promise.set_value({i, *st.value});
            return;
          }
          if (--race->remaining == 0) {
            race->done = true;
            race->promise.set_error(st.error);
          }
        });
  }
  return race->promise.future();
}

}  // namespace mage::rts
