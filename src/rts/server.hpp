// MageServer: one namespace's runtime services.
//
// The paper (Section 4.1) splits the per-JVM runtime into MageServer (the
// "home" interface talking to local mobility attributes) and
// MageExternalServer (the "remote" interface that sends/receives objects
// and classes and forwards registry requests).  Both roles are message
// services on the same node, so this class implements them together; the
// verbs map onto the split as:
//
//   MageServer role:          lookup (local consult path), lock, unlock,
//                             invoke, get_load
//   MageExternalServer role:  class_check, fetch_class, load_class,
//                             instantiate, move, transfer, forwarded lookup
//
// All handlers are continuation-style: a handler may hold its Replier and
// answer after a sub-protocol (forwarding-chain hop, class fetch, object
// transfer) completes.  Nothing here ever blocks the event loop.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "net/network.hpp"
#include "rmi/transport.hpp"
#include "rts/access.hpp"
#include "rts/class_cache.hpp"
#include "rts/discovery.hpp"
#include "rts/class_world.hpp"
#include "rts/directory.hpp"
#include "rts/lock_manager.hpp"
#include "rts/protocol.hpp"
#include "rts/registry.hpp"

namespace mage::rts {

class MageServer {
 public:
  MageServer(rmi::Transport& transport, const ClassWorld& world,
             const Directory& directory);

  MageServer(const MageServer&) = delete;
  MageServer& operator=(const MageServer&) = delete;

  [[nodiscard]] common::NodeId self() const { return transport_.self(); }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] ClassCache& class_cache() { return class_cache_; }
  [[nodiscard]] LockManager& locks() { return locks_; }
  [[nodiscard]] rmi::Transport& transport() { return transport_; }

  // Marks the engine pre-warmed (benches use this to separate the cold
  // "single invocation" run from the amortized runs, and zero-cost logic
  // tests warm everything up front).
  void set_warmed(bool warmed) { warmed_ = warmed; }
  [[nodiscard]] bool warmed() const { return warmed_; }

  // True while `name`'s object is mid-transfer away from this node.
  [[nodiscard]] bool in_transit(const common::ComponentName& name) const {
    return in_transit_.contains(name);
  }

  [[nodiscard]] const ClassWorld& world() const { return world_; }
  [[nodiscard]] const Directory& directory() const { return directory_; }

  // Section 7 models: per-namespace access control and resource admission.
  [[nodiscard]] AccessController& access() { return access_; }
  [[nodiscard]] ResourceModel& resources() { return resources_; }

  // What this namespace advertises to resource discovery.
  [[nodiscard]] ResourceBoard& resource_board() { return resource_board_; }

  // Class statics hosted here (for classes whose statics home is this
  // node); exposed for tests and the federation snapshot.
  [[nodiscard]] const std::map<std::string,
                               std::map<std::string, serial::Buffer>>&
  statics() const {
    return statics_;
  }

 private:
  // The scatter-gather body a service receives from the transport.
  using Body = serial::BufferChain;
  // Continuation for ensure_class_then; move-only so it can carry a Replier.
  using EnsureClassFn = common::UniqueFunction<void(bool ok, std::string error)>;

  void register_services();
  // Wraps a handler so the first migration-family operation on this node
  // pays the one-time engine warm-up cost.
  void register_warmable(common::VerbId verb, rmi::Transport::Service fn);

  void handle_lookup(common::NodeId caller, const Body& body,
                     rmi::Replier replier);
  void handle_class_check(common::NodeId caller, const Body& body,
                          rmi::Replier replier);
  void handle_fetch_class(common::NodeId caller, const Body& body,
                          rmi::Replier replier);
  void handle_load_class(common::NodeId caller, const Body& body,
                         rmi::Replier replier);
  void handle_instantiate(common::NodeId caller, const Body& body,
                          rmi::Replier replier);
  void handle_move(common::NodeId caller, const Body& body,
                   rmi::Replier replier);
  void handle_transfer(common::NodeId caller, const Body& body,
                       rmi::Replier replier);
  void handle_invoke(common::NodeId caller, const Body& body,
                     rmi::Replier replier);
  void handle_invoke_oneway(common::NodeId caller, const Body& body,
                            rmi::Replier replier);
  void handle_fetch_result(common::NodeId caller, const Body& body,
                           rmi::Replier replier);
  void handle_lock(common::NodeId caller, const Body& body,
                   rmi::Replier replier);
  void handle_unlock(common::NodeId caller, const Body& body,
                     rmi::Replier replier);
  void handle_get_load(common::NodeId caller, const Body& body,
                       rmi::Replier replier);
  void handle_manifest(common::NodeId caller, const Body& body,
                       rmi::Replier replier);
  void handle_static_get(common::NodeId caller, const Body& body,
                         rmi::Replier replier);
  void handle_static_put(common::NodeId caller, const Body& body,
                         rmi::Replier replier);
  void handle_discover(common::NodeId caller, const Body& body,
                       rmi::Replier replier);
  void handle_exec(common::NodeId caller, const Body& body,
                   rmi::Replier replier);

  // Consults the access controller; on denial replies with the tagged
  // "access denied" error and returns false.
  bool check_access(Operation op, common::NodeId caller,
                    rmi::Replier& replier);

  // Ensures `class_name` is in the local cache, fetching the image from
  // `source` if needed, then runs `then`.  Used by transfer/instantiate.
  void ensure_class_then(const std::string& class_name, common::NodeId source,
                         EnsureClassFn then);

  // Executes a method on a locally bound object; returns an InvokeReply.
  proto::InvokeReply run_method(const proto::InvokeRequest& request);

  // Answers "where should the caller look next" for a non-local component:
  // Moved + hint when we know where it went, NotFound otherwise.  `epoch`
  // is the placement epoch backing the hint, so callers can fence stale
  // forwarding knowledge (an in-transit hint is one epoch ahead of the
  // local binding — the destination binds at epoch + 1).
  struct Hint {
    proto::Status status = proto::Status::NotFound;
    common::NodeId node = common::kNoNode;
    std::uint64_t epoch = 0;
  };
  [[nodiscard]] Hint locate_hint(const common::ComponentName& name) const;

  sim::Simulation& sim();
  [[nodiscard]] const net::CostModel& model() const {
    return transport_.network().cost_model();
  }

  rmi::Transport& transport_;
  const ClassWorld& world_;
  const Directory& directory_;
  Registry registry_;
  ClassCache class_cache_;
  LockManager locks_;
  bool warmed_ = false;
  // name -> destination, for objects mid-transfer away from this node.
  std::map<common::ComponentName, common::NodeId> in_transit_;
  AccessController access_;
  ResourceModel resources_;
  ResourceBoard resource_board_;
  // class -> key -> serialized value, for classes homed here.
  std::map<std::string, std::map<std::string, serial::Buffer>> statics_;
};

}  // namespace mage::rts
