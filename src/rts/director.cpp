#include "rts/director.hpp"

#include <utility>

namespace mage::rts {

namespace proto_verbs = proto::verbs;

// --- Director ----------------------------------------------------------------

Director::Director(rmi::Transport& transport,
                   std::vector<common::NodeId> members,
                   Election::Config config)
    : transport_(transport),
      election_(transport, std::move(members), config),
      announces_(sim().stats().counter_handle("rts.dir_announces")),
      resolves_(sim().stats().counter_handle("rts.dir_resolves")),
      replications_(sim().stats().counter_handle("rts.dir_replications")) {}

sim::Simulation& Director::sim() {
  return transport_.network().node_sim(transport_.self());
}

void Director::start() {
  transport_.register_service(
      proto_verbs::kDirAnnounce,
      [this](common::NodeId caller, const serial::BufferChain& body,
             rmi::Replier replier) {
        handle_announce(caller, body, std::move(replier));
      });
  transport_.register_service(
      proto_verbs::kDirResolve,
      [this](common::NodeId caller, const serial::BufferChain& body,
             rmi::Replier replier) {
        handle_resolve(caller, body, std::move(replier));
      });
  transport_.register_service(
      proto_verbs::kDirReplicate,
      [this](common::NodeId caller, const serial::BufferChain& body,
             rmi::Replier replier) {
        handle_replicate(caller, body, std::move(replier));
      });
  election_.start();
}

void Director::seed(const proto::PlacementRecord& record) {
  records_[record.name] = record;
}

std::uint64_t Director::apply(const proto::PlacementRecord& record) {
  auto it = records_.find(record.name);
  if (it == records_.end()) {
    records_.emplace(record.name, record);
    return record.epoch;
  }
  // Highest epoch wins; replays and out-of-order replication are no-ops.
  if (record.epoch > it->second.epoch) it->second = record;
  return it->second.epoch;
}

void Director::replicate(const proto::PlacementRecord& record) {
  proto::DirAnnounceRequest request;
  request.record = record;
  for (auto member : election_.members()) {
    if (member == self()) continue;
    ++*replications_;
    // Fire-and-forget as a true transport-level one-way: no pending-table
    // entry, no retry timer, no reply-cache slot on the follower.  A member
    // that misses this update catches up on the next announce of the name
    // (higher epoch) or stays one epoch behind, which readers detect via
    // their own fence — exactly the semantics a replied call with an
    // ignored result was simulating, minus the bookkeeping.
    transport_.call_oneway(member, proto_verbs::kDirReplicate,
                           request.encode());
  }
}

void Director::handle_announce(common::NodeId /*caller*/,
                               const serial::BufferChain& body,
                               rmi::Replier replier) {
  ++*announces_;
  const auto request = proto::DirAnnounceRequest::decode(body);
  proto::DirAnnounceReply reply;
  reply.leader = election_.leader_hint();
  if (!election_.is_leader()) {
    reply.status = proto::Status::Moved;
    reply.error = "not the directory leader";
    replier.ok(reply.encode());
    return;
  }
  reply.status = proto::Status::Ok;
  reply.epoch = apply(request.record);
  replicate(request.record);
  replier.ok(reply.encode());
}

void Director::handle_resolve(common::NodeId /*caller*/,
                              const serial::BufferChain& body,
                              rmi::Replier replier) {
  ++*resolves_;
  const auto request = proto::DirResolveRequest::decode(body);
  proto::DirResolveReply reply;
  reply.leader = election_.leader_hint();
  const auto it = records_.find(request.name);
  if (it == records_.end()) {
    reply.status = proto::Status::NotFound;
    reply.error = "no placement record for '" + request.name + "'";
  } else {
    reply.status = proto::Status::Ok;
    reply.host = it->second.host;
    reply.epoch = it->second.epoch;
  }
  replier.ok(reply.encode());
}

void Director::handle_replicate(common::NodeId /*caller*/,
                                const serial::BufferChain& body,
                                rmi::Replier replier) {
  const auto request = proto::DirAnnounceRequest::decode(body);
  const std::uint64_t epoch = apply(request.record);
  // The leader sends replication as a one-way (unarmed Replier).  Answer
  // only replied callers — older peers still invoking dir.replicate as a
  // regular call get the ack they expect.
  if (!replier.armed()) return;
  proto::DirAnnounceReply reply;
  reply.status = proto::Status::Ok;
  reply.leader = election_.leader_hint();
  reply.epoch = epoch;
  replier.ok(reply.encode());
}

// --- DirectoryClient ---------------------------------------------------------

DirectoryClient::DirectoryClient(rmi::Transport& transport,
                                 std::vector<common::NodeId> directors,
                                 rmi::CallPolicy policy)
    : transport_(transport),
      channel_(transport, std::move(directors), policy) {}

sim::Simulation& DirectoryClient::sim() {
  return transport_.network().node_sim(transport_.self());
}

void DirectoryClient::resolve(
    const common::ComponentName& name,
    std::function<void(std::optional<Resolution>)> done) {
  proto::DirResolveRequest request;
  request.name = name;
  channel_.call_with_verdict(
      proto_verbs::kDirResolve, request.encode(),
      [](common::NodeId target, const rmi::CallResult& result,
         common::NodeId& redirect) {
        const auto reply = proto::DirResolveReply::decode(result.body);
        if (reply.status == proto::Status::Ok) return true;
        if (reply.status == proto::Status::NotFound) {
          // Followers can lag an in-flight replication; only the leader's
          // NotFound is authoritative.  A member that knows a different
          // leader steers the sweep there.
          if (reply.leader == target) return true;
          redirect = reply.leader;
        }
        return false;
      },
      [done = std::move(done)](rmi::CallResult result) {
        if (!result.ok) {
          done(std::nullopt);
          return;
        }
        const auto reply = proto::DirResolveReply::decode(result.body);
        if (reply.status != proto::Status::Ok) {
          done(std::nullopt);
          return;
        }
        done(Resolution{reply.host, reply.epoch});
      });
}

void DirectoryClient::announce(const proto::PlacementRecord& record,
                               std::function<void(bool)> done) {
  proto::DirAnnounceRequest request;
  request.record = record;
  channel_.call_with_verdict(
      proto_verbs::kDirAnnounce, request.encode(),
      [](common::NodeId /*target*/, const rmi::CallResult& result,
         common::NodeId& redirect) {
        const auto reply = proto::DirAnnounceReply::decode(result.body);
        if (reply.status == proto::Status::Ok) return true;
        if (reply.status == proto::Status::Moved) redirect = reply.leader;
        return false;
      },
      [done = std::move(done)](rmi::CallResult result) {
        if (!result.ok) {
          done(false);
          return;
        }
        const auto reply = proto::DirAnnounceReply::decode(result.body);
        done(reply.status == proto::Status::Ok);
      });
}

std::optional<DirectoryClient::Resolution> DirectoryClient::resolve_sync(
    const common::ComponentName& name) {
  bool settled = false;
  std::optional<Resolution> resolution;
  resolve(name, [&](std::optional<Resolution> r) {
    resolution = r;
    settled = true;
  });
  sim().run_until([&] { return settled; });
  return resolution;
}

bool DirectoryClient::announce_sync(const proto::PlacementRecord& record) {
  bool settled = false;
  bool accepted = false;
  announce(record, [&](bool ok) {
    accepted = ok;
    settled = true;
  });
  sim().run_until([&] { return settled; });
  return accepted;
}

}  // namespace mage::rts
