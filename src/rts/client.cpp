#include "rts/client.hpp"

#include <utility>

#include "common/log.hpp"
#include "rts/director.hpp"

namespace mage::rts {

namespace proto_verbs = proto::verbs;

// Chase/retry policy for operations addressed to a moving object.
constexpr int kMaxChaseAttempts = 12;
constexpr common::SimDuration kChaseBackoffUs = 10'000;

MageClient::MageClient(rmi::Transport& transport, MageServer& local_server,
                       Directory& directory, const ClassWorld& world,
                       common::ActivityId activity)
    : transport_(transport),
      local_server_(local_server),
      directory_(directory),
      world_(world),
      activity_(activity) {}

const net::CostModel& MageClient::model() const {
  return transport_.network().cost_model();
}

void MageClient::note_epoch(const common::ComponentName& name,
                            std::uint64_t epoch) {
  auto& known = known_epochs_[name];
  if (epoch > known) known = epoch;
}

std::uint64_t MageClient::known_epoch(const common::ComponentName& name) const {
  const auto it = known_epochs_.find(name);
  return it == known_epochs_.end() ? 0 : it->second;
}

bool MageClient::accept_hint(const common::ComponentName& name,
                             common::NodeId hint, std::uint64_t hint_epoch) {
  if (common::is_no_node(hint)) return false;
  // Unfenced hints (epoch 0) come from servers without epoch knowledge;
  // they are chased as before.  Fenced hints must be at least as recent as
  // what this client has already confirmed — an older hint points into a
  // placement history segment we know is obsolete (e.g. a forwarding loop
  // left behind by a crashed-and-restarted ex-home).
  if (hint_epoch != 0 && hint_epoch < known_epoch(name)) {
    simulation().stats().add("rts.stale_hints_rejected");
    return false;
  }
  note_epoch(name, hint_epoch);
  return true;
}

void MageClient::charge(common::SimDuration d) {
  if (d > 0) simulation().run_for(d);
}

// --- component lifecycle -------------------------------------------------------

MageObject& MageClient::create_component(const common::ComponentName& name,
                                         const std::string& class_name,
                                         bool is_public) {
  local_server_.class_cache().install(class_name);
  auto object = world_.instantiate(class_name);
  MageObject& ref = *object;
  local_server_.registry().bind(name, std::move(object));
  directory_.announce(ComponentInfo{name, class_name, self(), is_public});
  note_epoch(name, 1);
  if (directory_client_ != nullptr) {
    directory_client_->announce_sync(
        proto::PlacementRecord{name, class_name, self(), is_public, 1});
  }
  return ref;
}

MageObject& MageClient::local_object(const common::ComponentName& name) {
  return local_server_.registry().local(name);
}

bool MageClient::has_local(const common::ComponentName& name) const {
  return local_server_.registry().has_local(name) &&
         !local_server_.in_transit(name);
}

bool MageClient::is_shared(const common::ComponentName& name) const {
  return directory_.contains(name) && directory_.info(name).is_public;
}

// --- registry -----------------------------------------------------------------

std::optional<common::NodeId> MageClient::try_find(
    const common::ComponentName& name) {
  // Local MAGE registry consult: a direct in-JVM call, not an RMI.
  charge(model().registry_consult_us);
  if (has_local(name)) return self();

  common::NodeId start = common::kNoNode;
  if (auto fwd = local_server_.registry().forward(name)) {
    // Private objects are moved only by their owning activity, so the
    // local forwarding address is authoritative — no network round trip
    // ("if the object is private, cloc always accurately represents the
    // bound object's current location", Section 3.5).  Shared objects may
    // have been moved by anyone; verify by walking the chain.
    if (!is_shared(name)) return *fwd;
    start = *fwd;
  } else if (directory_.contains(name)) {
    start = directory_.info(name).home;
  }
  if (common::is_no_node(start) || start == self()) {
    // No local object and no lead to follow from static knowledge; the
    // replicated directory (when configured) may still know the placement.
    return directory_find(name);
  }

  proto::LookupRequest request;
  request.name = name;
  request.min_epoch = known_epoch(name);
  try {
    auto reply = proto::LookupReply::decode(
        transport_.call_sync(start, proto_verbs::kLookup, request.encode()));
    if (reply.status == proto::Status::Ok) {
      note_epoch(name, reply.epoch);
      local_server_.registry().update_forward(name, reply.host, reply.epoch);
      return reply.host;
    }
  } catch (const common::TransportError&) {
    // The chain's first hop is unreachable (crashed or partitioned).  With
    // a replicated directory we can fail over; without one this is fatal,
    // exactly as before.
    if (directory_client_ == nullptr) throw;
  }
  return directory_find(name);
}

std::optional<common::NodeId> MageClient::directory_find(
    const common::ComponentName& name) {
  if (directory_client_ == nullptr) return std::nullopt;
  auto resolved = directory_client_->resolve_sync(name);
  if (!resolved) return std::nullopt;
  if (resolved->epoch < known_epoch(name)) {
    // The quorum lags our own confirmed knowledge (e.g. an announce is
    // still in flight); treat as not-yet-found and let the caller retry.
    return std::nullopt;
  }
  note_epoch(name, resolved->epoch);
  local_server_.registry().update_forward(name, resolved->host,
                                          resolved->epoch);
  return resolved->host == self() ? self() : resolved->host;
}

common::NodeId MageClient::find(const common::ComponentName& name) {
  for (int attempt = 0; attempt < kMaxChaseAttempts; ++attempt) {
    if (auto host = try_find(name)) return *host;
    // The object may be mid-flight between namespaces; back off and retry
    // ("these protocols must recover from message loss and account for
    // contention over shared components", Section 4.3).
    charge(kChaseBackoffUs);
  }
  throw common::NotFoundError(name, "lookup failed after " +
                                        std::to_string(kMaxChaseAttempts) +
                                        " attempts");
}

// --- class & object movement ------------------------------------------------------

common::NodeId MageClient::move(const common::ComponentName& name,
                                common::NodeId to, common::NodeId hint) {
  common::NodeId at = common::is_no_node(hint) ? find(name) : hint;
  for (int attempt = 0; attempt < kMaxChaseAttempts; ++attempt) {
    proto::MoveRequest request;
    request.name = name;
    request.to = to;
    proto::SimpleReply reply;
    try {
      reply = proto::SimpleReply::decode(
          transport_.call_sync(at, proto_verbs::kMove, request.encode()));
    } catch (const common::TransportError&) {
      // The move is idempotent from here: if it actually completed, the
      // retry at the stale host is answered with a Moved hint and the
      // chase converges at the target (where to == self is a no-op).
      charge(kChaseBackoffUs);
      at = find(name);
      continue;
    }
    switch (reply.status) {
      case proto::Status::Ok:
        // The source's Ok carries the new placement epoch; record it so
        // stale chains left behind by the old placement are fenced off.
        note_epoch(name, reply.hint_epoch);
        local_server_.registry().update_forward(name, to, reply.hint_epoch);
        if (directory_client_ != nullptr) {
          directory_client_->announce_sync(proto::PlacementRecord{
              name, std::string{}, to, is_shared(name), reply.hint_epoch});
        }
        return to;
      case proto::Status::Moved:
        if (accept_hint(name, reply.hint, reply.hint_epoch)) {
          at = reply.hint;
          continue;
        }
        charge(kChaseBackoffUs);
        at = find(name);
        continue;
      case proto::Status::NotFound:
        charge(kChaseBackoffUs);
        at = find(name);
        continue;
      case proto::Status::Error:
        throw common::MageError("move of '" + name + "' failed: " +
                                reply.error);
    }
  }
  throw common::MageError("move of '" + name + "' did not converge");
}

void MageClient::ensure_class_at(common::NodeId target,
                                 const std::string& class_name) {
  // Pushing a class implies having it: it is on this node's classpath.
  local_server_.class_cache().install(class_name);
  if (target == self()) return;

  const auto known_key = std::make_pair(target, class_name);
  if (classes_pushed_.contains(known_key)) {
    // Warm path: we know the target holds the image; the traditional
    // REV/MA contract still revalidates it with one small round trip.
    proto::ClassCheckRequest check{class_name};
    auto reply = proto::ClassCheckReply::decode(transport_.call_sync(
        target, proto_verbs::kClassCheck, check.encode()));
    if (reply.cached) return;
    classes_pushed_.erase(known_key);  // target lost it; re-push below
  }

  // Cold path: one optimistic push carrying the image (the target ignores
  // the bytes if it already has the class).
  proto::LoadClassRequest load;
  load.image.class_name = class_name;
  load.image.code_size = world_.descriptor(class_name).code_size;
  auto load_reply = proto::SimpleReply::decode(transport_.call_sync(
      target, proto_verbs::kLoadClass, load.encode()));
  if (load_reply.status != proto::Status::Ok) {
    throw common::MageError("pushing class '" + class_name + "' failed: " +
                            load_reply.error);
  }
  classes_pushed_.insert(known_key);
}

void MageClient::fetch_class_to_local(common::NodeId source,
                                      const std::string& class_name) {
  if (local_server_.class_cache().has(class_name)) {
    // Warm path: the traditional COD contract still revalidates its cached
    // copy against the origin on every bind — one small round trip.
    proto::ClassCheckRequest check{class_name};
    auto check_reply = proto::ClassCheckReply::decode(transport_.call_sync(
        source, proto_verbs::kClassCheck, check.encode()));
    if (check_reply.cached) return;
    // The origin lost the class (should not happen in practice); fall
    // through and re-fetch.
  }

  // Cold path: a single fetch round trip carries the image (the fetch
  // subsumes the check).
  proto::FetchClassRequest fetch{class_name};
  auto image_bytes =
      transport_.call_sync(source, proto_verbs::kFetchClass, fetch.encode());
  (void)proto::ClassImage::decode(image_bytes);
  charge(model().class_load_us);
  local_server_.class_cache().on_image_received(class_name);
  simulation().stats().add("rts.class_loads");
}

void MageClient::instantiate_at(common::NodeId target,
                                const std::string& class_name,
                                const common::ComponentName& object_name,
                                bool is_public) {
  // The client is shipping its own code: the class image is on this
  // namespace's classpath by definition.
  local_server_.class_cache().install(class_name);
  proto::InstantiateRequest request;
  request.class_name = class_name;
  request.object_name = object_name;
  request.is_public = is_public;
  request.class_source = self();
  auto reply = proto::SimpleReply::decode(transport_.call_sync(
      target, proto_verbs::kInstantiate, request.encode()));
  if (reply.status != proto::Status::Ok) {
    throw common::MageError("instantiate of '" + object_name + "' at node " +
                            std::to_string(target.value()) + " failed: " +
                            reply.error);
  }
  if (!directory_.contains(object_name)) {
    directory_.announce(
        ComponentInfo{object_name, class_name, self(), is_public});
  }
  local_server_.registry().update_forward(object_name, target);
}

void MageClient::resolve_server(common::NodeId target) {
  (void)transport_.call_sync(target, proto_verbs::kResolveServer, {});
}

void MageClient::transfer_out(const common::ComponentName& name,
                              common::NodeId to) {
  if (!has_local(name)) {
    throw common::NotFoundError(name, "transfer_out requires a local object");
  }
  if (to == self()) return;

  MageObject& object = local_server_.registry().local(name);
  serial::Writer state_writer;
  object.serialize(state_writer);

  proto::TransferRequest transfer;
  transfer.name = name;
  transfer.class_name = object.class_name();
  transfer.is_public = is_shared(name);
  transfer.state = state_writer.take();

  auto reply = proto::SimpleReply::decode(
      transport_.call_sync(to, proto_verbs::kTransfer, transfer.encode()));
  if (reply.status != proto::Status::Ok) {
    throw common::MageError("transfer of '" + name + "' failed: " +
                            reply.error);
  }
  auto departed = local_server_.registry().unbind(name);
  departed.reset();
  local_server_.registry().update_forward(name, to);
  local_server_.locks().on_object_departed(name, to);
  simulation().stats().add("rts.migrations");
}

// --- invocation --------------------------------------------------------------------

serial::Buffer MageClient::invoke_raw(common::NodeId& cloc,
                                      const common::ComponentName& name,
                                      const std::string& method,
                                      serial::Buffer args) {
  if (common::is_no_node(cloc)) cloc = find(name);
  proto::InvokeRequest request;
  request.name = name;
  request.method = method;
  request.args = std::move(args);

  for (int attempt = 0; attempt < kMaxChaseAttempts; ++attempt) {
    if (cloc == self() && has_local(name)) {
      // LPC fast path: same namespace, no marshalling, no wire.
      charge(model().local_invoke_us);
      MageObject& object = local_server_.registry().local(name);
      const MethodEntry& entry =
          world_.method(object.class_name(), request.method);
      charge(entry.cost_us);
      simulation().stats().add("rts.local_invocations");
      return entry.fn(object, request.args);
    }
    auto reply = proto::InvokeReply::decode(
        transport_.call_sync(cloc, proto_verbs::kInvoke, request.encode()));
    switch (reply.status) {
      case proto::Status::Ok:
        return std::move(reply.result);
      case proto::Status::Moved:
        if (accept_hint(name, reply.hint, reply.hint_epoch)) {
          cloc = reply.hint;
          continue;
        }
        charge(kChaseBackoffUs);
        cloc = find(name);
        continue;
      case proto::Status::NotFound:
        charge(kChaseBackoffUs);
        cloc = find(name);
        continue;
      case proto::Status::Error:
        throw common::RemoteInvocationError(reply.error);
    }
  }
  throw common::RemoteInvocationError("invocation of '" + name + "." +
                                      method + "' did not converge");
}

void MageClient::invoke_oneway_raw(common::NodeId& cloc,
                                   const common::ComponentName& name,
                                   const std::string& method,
                                   serial::Buffer args) {
  if (common::is_no_node(cloc)) cloc = find(name);
  proto::InvokeRequest request;
  request.name = name;
  request.method = method;
  request.args = std::move(args);

  for (int attempt = 0; attempt < kMaxChaseAttempts; ++attempt) {
    auto reply = proto::InvokeReply::decode(transport_.call_sync(
        cloc, proto_verbs::kInvokeOneway, request.encode()));
    switch (reply.status) {
      case proto::Status::Ok:
        return;  // acknowledged; execution continues remotely
      case proto::Status::Moved:
        if (accept_hint(name, reply.hint, reply.hint_epoch)) {
          cloc = reply.hint;
          continue;
        }
        charge(kChaseBackoffUs);
        cloc = find(name);
        continue;
      case proto::Status::NotFound:
        charge(kChaseBackoffUs);
        cloc = find(name);
        continue;
      case proto::Status::Error:
        throw common::RemoteInvocationError(reply.error);
    }
  }
  throw common::RemoteInvocationError("one-way invocation of '" + name + "." +
                                      method + "' did not converge");
}

serial::Buffer MageClient::fetch_result_raw(
    common::NodeId& cloc, const common::ComponentName& name) {
  if (common::is_no_node(cloc)) cloc = find(name);
  proto::FetchResultRequest request{name};
  for (int attempt = 0; attempt < kMaxChaseAttempts; ++attempt) {
    auto reply = proto::InvokeReply::decode(transport_.call_sync(
        cloc, proto_verbs::kFetchResult, request.encode()));
    if (reply.status == proto::Status::Ok) return std::move(reply.result);
    // The one-way execution may not have finished yet; wait and retry.
    charge(kChaseBackoffUs);
  }
  throw common::RemoteInvocationError("no parked result for '" + name + "'");
}

// --- condensed remote evaluation ------------------------------------------------------------

serial::Buffer MageClient::exec_at_raw(common::NodeId target,
                                       const std::string& class_name,
                                       const common::ComponentName& name,
                                       const std::string& method,
                                       serial::Buffer args) {
  local_server_.class_cache().install(class_name);  // shipping our own code
  proto::ExecRequest request;
  request.class_name = class_name;
  request.object_name = name;
  request.method = method;
  request.args = std::move(args);
  request.class_source = self();
  auto reply = proto::InvokeReply::decode(
      transport_.call_sync(target, proto_verbs::kExec, request.encode()));
  if (reply.status != proto::Status::Ok) {
    throw common::RemoteInvocationError("condensed exec of '" + name +
                                        "' failed: " + reply.error);
  }
  if (!directory_.contains(name)) {
    directory_.announce(ComponentInfo{name, class_name, self(), false});
  }
  local_server_.registry().update_forward(name, target);
  return std::move(reply.result);
}

// --- resource discovery ---------------------------------------------------------------------

std::vector<DiscoveredHost> MageClient::discover(
    const std::string& kind,
    const std::vector<common::NodeId>& candidates) {
  std::vector<DiscoveredHost> hosts;
  proto::DiscoverRequest request{kind};
  for (auto candidate : candidates) {
    if (candidate == self()) {
      const auto& board = local_server_.resource_board();
      if (board.offers(kind)) {
        hosts.push_back(DiscoveredHost{candidate, board.capacity(kind)});
      }
      continue;
    }
    try {
      auto reply = proto::DiscoverReply::decode(transport_.call_sync(
          candidate, proto::verbs::kDiscover, request.encode()));
      if (reply.offers) {
        hosts.push_back(DiscoveredHost{candidate, reply.capacity});
      }
    } catch (const common::MageError&) {
      // Unreachable or unwilling: discovery skips it, per the paper's
      // requirement to "robustly cope with changing network conditions".
    }
  }
  return hosts;
}

common::NodeId MageClient::discover_best(
    const std::string& kind,
    const std::vector<common::NodeId>& candidates) {
  common::NodeId best = common::kNoNode;
  double best_capacity = -1.0;
  for (const auto& host : discover(kind, candidates)) {
    if (host.capacity > best_capacity) {
      best = host.node;
      best_capacity = host.capacity;
    }
  }
  return best;
}

// --- class statics ----------------------------------------------------------------------

serial::Buffer MageClient::static_get_raw(const std::string& class_name,
                                          const std::string& key) {
  const auto home = world_.descriptor(class_name).statics_home;
  if (common::is_no_node(home)) {
    throw common::MageError("class '" + class_name +
                            "' has no statics home declared");
  }
  proto::StaticGetRequest request{class_name, key};
  auto reply = proto::InvokeReply::decode(transport_.call_sync(
      home, proto_verbs::kStaticGet, request.encode()));
  if (reply.status != proto::Status::Ok) {
    throw common::NotFoundError(class_name + "::" + key, reply.error);
  }
  return std::move(reply.result);
}

void MageClient::static_put_raw(const std::string& class_name,
                                const std::string& key,
                                serial::Buffer value) {
  const auto home = world_.descriptor(class_name).statics_home;
  if (common::is_no_node(home)) {
    throw common::MageError("class '" + class_name +
                            "' has no statics home declared");
  }
  proto::StaticPutRequest request;
  request.class_name = class_name;
  request.key = key;
  request.value = std::move(value);
  auto reply = proto::SimpleReply::decode(transport_.call_sync(
      home, proto_verbs::kStaticPut, request.encode()));
  if (reply.status != proto::Status::Ok) {
    throw common::MageError("static_put failed: " + reply.error);
  }
}

// --- locking ------------------------------------------------------------------------

LockHandle MageClient::lock(const common::ComponentName& name,
                            common::NodeId target) {
  common::NodeId at = find(name);
  // Lock waits can be long (the queue drains one holder at a time); allow
  // generous retransmission budget — duplicates are suppressed server-side.
  rmi::CallOptions options;
  options.max_attempts = 64;

  for (int attempt = 0; attempt < kMaxChaseAttempts; ++attempt) {
    proto::LockRequest request;
    request.name = name;
    request.target = target;
    request.activity = activity_.value();
    auto reply = proto::LockReply::decode(transport_.call_sync(
        at, proto_verbs::kLock, request.encode(), options));
    switch (reply.status) {
      case proto::Status::Ok:
        return LockHandle{name, at, reply.lock_id, reply.kind};
      case proto::Status::Moved:
        if (accept_hint(name, reply.hint, reply.hint_epoch)) {
          at = reply.hint;
          continue;
        }
        charge(kChaseBackoffUs);
        at = find(name);
        continue;
      case proto::Status::NotFound:
        charge(kChaseBackoffUs);
        at = find(name);
        continue;
      case proto::Status::Error:
        throw common::LockError("lock('" + name + "') failed: " + reply.error);
    }
  }
  throw common::LockError("lock('" + name + "') did not converge");
}

void MageClient::unlock(const LockHandle& handle) {
  proto::UnlockRequest request;
  request.name = handle.name;
  request.lock_id = handle.lock_id;
  auto reply = proto::SimpleReply::decode(transport_.call_sync(
      handle.host, proto_verbs::kUnlock, request.encode()));
  if (reply.status != proto::Status::Ok) {
    throw common::LockError("unlock('" + handle.name + "') failed: " +
                            reply.error);
  }
}

void MageClient::lock_async(common::NodeId host,
                            const common::ComponentName& name,
                            common::NodeId target,
                            common::UniqueFunction<void(proto::LockReply)>
                                on_reply) {
  proto::LockRequest request;
  request.name = name;
  request.target = target;
  request.activity = activity_.value();
  rmi::CallOptions options;
  options.max_attempts = 64;
  transport_.call(
      host, proto_verbs::kLock, request.encode(),
      [on_reply = std::move(on_reply)](rmi::CallResult result) mutable {
        if (!result.ok) {
          proto::LockReply reply;
          reply.status = proto::Status::Error;
          reply.error = result.error;
          on_reply(reply);
          return;
        }
        on_reply(proto::LockReply::decode(result.body));
      },
      options);
}

void MageClient::unlock_async(common::NodeId host,
                              const common::ComponentName& name,
                              std::uint64_t lock_id,
                              common::UniqueFunction<void()> on_reply) {
  proto::UnlockRequest request;
  request.name = name;
  request.lock_id = lock_id;
  transport_.call(host, proto_verbs::kUnlock, request.encode(),
                  [on_reply = std::move(on_reply)](rmi::CallResult) mutable {
                    on_reply();
                  });
}

// --- misc ------------------------------------------------------------------------------

double MageClient::load_of(common::NodeId node) {
  if (node == self()) return transport_.network().load(node);
  auto reply = proto::LoadReply::decode(
      transport_.call_sync(node, proto_verbs::kGetLoad, {}));
  return reply.load;
}

void MageClient::ping(common::NodeId node) {
  (void)transport_.call_sync(node, proto_verbs::kPing, {});
}

}  // namespace mage::rts
