// MAGE wire protocol: verbs and message bodies.
//
// Every struct encodes to / decodes from the RMI envelope body.  The verbs
// are the operations MageServer registers with its Transport; together they
// implement the protocols of Section 4 — registry lookup with forwarding
// chains (4.1), class shipping and object migration (4.2, 4.3/Figure 7),
// invocation, and lock requests (4.4/Figure 8).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "rts/lock_manager.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::rts::proto {

// Operation names.  The ".reply"-suffixed verbs on the wire are added by
// the transport; these are the request verbs.
namespace verbs {
inline constexpr const char* kLookup = "mage.lookup";
inline constexpr const char* kClassCheck = "mage.class_check";
inline constexpr const char* kFetchClass = "mage.fetch_class";
inline constexpr const char* kLoadClass = "mage.load_class";
inline constexpr const char* kInstantiate = "mage.instantiate";
inline constexpr const char* kMove = "mage.move";
inline constexpr const char* kTransfer = "mage.transfer";
inline constexpr const char* kInvoke = "mage.invoke";
inline constexpr const char* kInvokeOneway = "mage.invoke_oneway";
inline constexpr const char* kFetchResult = "mage.fetch_result";
inline constexpr const char* kLock = "mage.lock";
inline constexpr const char* kUnlock = "mage.unlock";
inline constexpr const char* kGetLoad = "mage.get_load";
inline constexpr const char* kPing = "mage.ping";
// Traditional REV's per-bind lookup of the remote execution server's stub
// (Naming.lookup against the target's RMI registry).
inline constexpr const char* kResolveServer = "mage.resolve_server";
// Static-field coherency (the Section 4.2 limitation, implemented): class
// data lives at the class's statics home and is read/written there.
inline constexpr const char* kStaticGet = "mage.static_get";
inline constexpr const char* kStaticPut = "mage.static_put";
// Resource discovery ("support host and resource discovery", Section 1).
inline constexpr const char* kDiscover = "mage.discover";
// Condensed remote evaluation — the Section 5 optimization: "condensing
// the number of RMI calls ... by better utilizing the in and out variables
// of a single Java RMI call".  One exchange carries instantiate + invoke.
inline constexpr const char* kExec = "mage.exec";
}  // namespace verbs

// Shared status for operations addressed to "the node currently hosting X":
// the host may answer Ok, or redirect the caller along its forwarding chain
// (Moved + hint), or declare the name unknown.
enum class Status : std::uint8_t {
  Ok = 0,
  Moved = 1,     // not here; try `hint`
  NotFound = 2,  // unknown name, no forwarding information
  Error = 3,     // application-level failure, see `error`
};

[[nodiscard]] const char* status_name(Status s);

void put_node(serial::Writer& w, common::NodeId n);
[[nodiscard]] common::NodeId get_node(serial::Reader& r);

// --- registry lookup ---------------------------------------------------

struct LookupRequest {
  common::ComponentName name;
  std::uint32_t hops = 0;  // cycle guard for the forwarding-chain walk

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static LookupRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct LookupReply {
  Status status = Status::NotFound;
  common::NodeId host = common::kNoNode;  // valid when Ok
  std::string error;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static LookupReply decode(const std::vector<std::uint8_t>& bytes);
};

// --- class shipping ------------------------------------------------------

struct ClassCheckRequest {
  std::string class_name;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static ClassCheckRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct ClassCheckReply {
  bool cached = false;  // does the queried node hold the class image?

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static ClassCheckReply decode(const std::vector<std::uint8_t>& bytes);
};

struct FetchClassRequest {
  std::string class_name;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static FetchClassRequest decode(const std::vector<std::uint8_t>& bytes);
};

// The class image: name + simulated code bytes (filler sized to the
// descriptor's code_size so the wire pays the real transfer cost).
struct ClassImage {
  std::string class_name;
  std::uint32_t code_size = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static ClassImage decode(const std::vector<std::uint8_t>& bytes);
};

// Push-style class load (REV/MA push the class toward the target).
struct LoadClassRequest {
  ClassImage image;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static LoadClassRequest decode(const std::vector<std::uint8_t>& bytes);
};

// --- instantiation (class-bound REV/COD act as object factories) -----------

struct InstantiateRequest {
  std::string class_name;
  common::ComponentName object_name;
  bool is_public = false;
  // Node able to serve the class image if the target lacks it.
  common::NodeId class_source = common::kNoNode;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static InstantiateRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct SimpleReply {
  Status status = Status::Ok;
  common::NodeId hint = common::kNoNode;  // valid when Moved
  std::string error;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static SimpleReply decode(const std::vector<std::uint8_t>& bytes);
};

// --- migration (Figure 7) ---------------------------------------------------

struct MoveRequest {
  common::ComponentName name;
  common::NodeId to = common::kNoNode;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static MoveRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct TransferRequest {
  common::ComponentName name;
  std::string class_name;
  bool is_public = false;
  std::vector<std::uint8_t> state;  // weakly migrated heap state

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static TransferRequest decode(const std::vector<std::uint8_t>& bytes);
};

// --- invocation ---------------------------------------------------------

struct InvokeRequest {
  common::ComponentName name;
  std::string method;
  std::vector<std::uint8_t> args;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static InvokeRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct InvokeReply {
  Status status = Status::Ok;
  common::NodeId hint = common::kNoNode;  // valid when Moved
  std::string error;                      // valid when Error
  std::vector<std::uint8_t> result;       // valid when Ok

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static InvokeReply decode(const std::vector<std::uint8_t>& bytes);
};

struct FetchResultRequest {
  common::ComponentName name;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static FetchResultRequest decode(const std::vector<std::uint8_t>& bytes);
};

// --- locking -------------------------------------------------------------

struct LockRequest {
  common::ComponentName name;
  common::NodeId target = common::kNoNode;  // the attribute's target
  std::uint64_t activity = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static LockRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct LockReply {
  Status status = Status::Ok;
  common::NodeId hint = common::kNoNode;  // valid when Moved
  std::uint64_t lock_id = 0;              // valid when Ok
  LockKind kind = LockKind::Stay;         // valid when Ok
  std::string error;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static LockReply decode(const std::vector<std::uint8_t>& bytes);
};

struct UnlockRequest {
  common::ComponentName name;
  std::uint64_t lock_id = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static UnlockRequest decode(const std::vector<std::uint8_t>& bytes);
};

// --- class statics ------------------------------------------------------------

struct StaticGetRequest {
  std::string class_name;
  std::string key;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static StaticGetRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct StaticPutRequest {
  std::string class_name;
  std::string key;
  std::vector<std::uint8_t> value;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static StaticPutRequest decode(const std::vector<std::uint8_t>& bytes);
};

// --- condensed remote evaluation --------------------------------------------------

struct ExecRequest {
  std::string class_name;
  common::ComponentName object_name;  // bound at the target after the call
  std::string method;
  std::vector<std::uint8_t> args;
  common::NodeId class_source = common::kNoNode;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static ExecRequest decode(const std::vector<std::uint8_t>& bytes);
};

// --- resource discovery ---------------------------------------------------------

struct DiscoverRequest {
  std::string kind;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static DiscoverRequest decode(const std::vector<std::uint8_t>& bytes);
};

struct DiscoverReply {
  bool offers = false;
  double capacity = 0.0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static DiscoverReply decode(const std::vector<std::uint8_t>& bytes);
};

// --- misc ------------------------------------------------------------------

struct LoadReply {
  double load = 0.0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static LoadReply decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace mage::rts::proto
