// MAGE wire protocol: verbs and message bodies.
//
// Every struct encodes to / decodes from the RMI envelope body.  The verbs
// are the operations MageServer registers with its Transport; together they
// implement the protocols of Section 4 — registry lookup with forwarding
// chains (4.1), class shipping and object migration (4.2, 4.3/Figure 7),
// invocation, and lock requests (4.4/Figure 8).
//
// Encoding: small field-only structs build one serial::Buffer through a
// Writer.  Structs that carry a pre-serialized payload (invocation args,
// migrating object state, results, static values) encode to a
// serial::BufferChain through a ChainWriter: the payload rides as its own
// fragment by refcount instead of being copied into the body at encode
// time.  The logical byte stream is identical either way (the chain just
// fragments it), so every struct decodes through one ChainReader-based
// implementation; decode() overloads accept a flat Buffer (tests, tools)
// or the BufferChain a service receives.  docs/WIRE_FORMAT.md records the
// byte-level layouts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/verb.hpp"
#include "rts/lock_manager.hpp"
#include "serial/buffer.hpp"
#include "serial/chain.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::rts::proto {

// Operation names.  The ".reply"-suffixed verbs on the wire are added by
// the transport; these are the request verbs.
namespace verbs {
inline const common::VerbId kLookup = common::intern_verb("mage.lookup");
inline const common::VerbId kClassCheck = common::intern_verb("mage.class_check");
inline const common::VerbId kFetchClass = common::intern_verb("mage.fetch_class");
inline const common::VerbId kLoadClass = common::intern_verb("mage.load_class");
inline const common::VerbId kInstantiate = common::intern_verb("mage.instantiate");
inline const common::VerbId kMove = common::intern_verb("mage.move");
inline const common::VerbId kTransfer = common::intern_verb("mage.transfer");
inline const common::VerbId kInvoke = common::intern_verb("mage.invoke");
inline const common::VerbId kInvokeOneway = common::intern_verb("mage.invoke_oneway");
inline const common::VerbId kFetchResult = common::intern_verb("mage.fetch_result");
inline const common::VerbId kLock = common::intern_verb("mage.lock");
inline const common::VerbId kUnlock = common::intern_verb("mage.unlock");
inline const common::VerbId kGetLoad = common::intern_verb("mage.get_load");
inline const common::VerbId kPing = common::intern_verb("mage.ping");
// Traditional REV's per-bind lookup of the remote execution server's stub
// (Naming.lookup against the target's RMI registry).
inline const common::VerbId kResolveServer = common::intern_verb("mage.resolve_server");
// Static-field coherency (the Section 4.2 limitation, implemented): class
// data lives at the class's statics home and is read/written there.
inline const common::VerbId kStaticGet = common::intern_verb("mage.static_get");
inline const common::VerbId kStaticPut = common::intern_verb("mage.static_put");
// Resource discovery ("support host and resource discovery", Section 1).
inline const common::VerbId kDiscover = common::intern_verb("mage.discover");
// Condensed remote evaluation — the Section 5 optimization: "condensing
// the number of RMI calls ... by better utilizing the in and out variables
// of a single Java RMI call".  One exchange carries instantiate + invoke.
inline const common::VerbId kExec = common::intern_verb("mage.exec");
// Partition ops for the distributed collections (src/rts/dist/): list
// the components bound on a node, so a rebalancer can pick a migration
// victim from the hot node's authoritative local view.
inline const common::VerbId kManifest = common::intern_verb("mage.manifest");
// Replicated directory control plane (the Section 7 static-home fix):
// leader election among the director quorum, plus placement-record
// announce/resolve/replicate.
inline const common::VerbId kRequestVote = common::intern_verb("dir.request_vote");
inline const common::VerbId kHeartbeat = common::intern_verb("dir.heartbeat");
inline const common::VerbId kDirAnnounce = common::intern_verb("dir.announce");
inline const common::VerbId kDirResolve = common::intern_verb("dir.resolve");
inline const common::VerbId kDirReplicate = common::intern_verb("dir.replicate");
}  // namespace verbs

// Shared status for operations addressed to "the node currently hosting X":
// the host may answer Ok, or redirect the caller along its forwarding chain
// (Moved + hint), or declare the name unknown.
enum class Status : std::uint8_t {
  Ok = 0,
  Moved = 1,     // not here; try `hint`
  NotFound = 2,  // unknown name, no forwarding information
  Error = 3,     // application-level failure, see `error`
};

[[nodiscard]] const char* status_name(Status s);

void put_node(serial::Writer& w, common::NodeId n);
void put_node(serial::ChainWriter& w, common::NodeId n);
[[nodiscard]] common::NodeId get_node(serial::ChainReader& r);

// Every struct's decode is implemented once over a ChainReader; these two
// wrappers let call sites hand in either form the bytes arrive as.
#define MAGE_PROTO_DECODE(T)                                   \
  static T decode(serial::ChainReader& r);                     \
  static T decode(const serial::Buffer& bytes) {               \
    serial::ChainReader r(bytes);                              \
    return decode(r);                                          \
  }                                                            \
  static T decode(const serial::BufferChain& body) {           \
    serial::ChainReader r(body);                               \
    return decode(r);                                          \
  }

// --- registry lookup ---------------------------------------------------

struct LookupRequest {
  common::ComponentName name;
  std::uint32_t hops = 0;  // cycle guard for the forwarding-chain walk
  // Epoch fence: the highest placement epoch the caller has confirmed for
  // this name.  A node whose forwarding knowledge is older answers
  // NotFound instead of sending the caller down a stale chain.  0 = no
  // fence (legacy callers).
  std::uint64_t min_epoch = 0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(LookupRequest)
};

struct LookupReply {
  Status status = Status::NotFound;
  common::NodeId host = common::kNoNode;  // valid when Ok
  std::string error;
  // Placement epoch of `host` (see LookupRequest::min_epoch); 0 = unknown.
  std::uint64_t epoch = 0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(LookupReply)
};

// --- class shipping ------------------------------------------------------

struct ClassCheckRequest {
  std::string class_name;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(ClassCheckRequest)
};

struct ClassCheckReply {
  bool cached = false;  // does the queried node hold the class image?

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(ClassCheckReply)
};

struct FetchClassRequest {
  std::string class_name;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(FetchClassRequest)
};

// The class image: name + simulated code bytes (filler sized to the
// descriptor's code_size so the wire pays the real transfer cost).
struct ClassImage {
  std::string class_name;
  std::uint32_t code_size = 0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(ClassImage)
};

// Push-style class load (REV/MA push the class toward the target).
struct LoadClassRequest {
  ClassImage image;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(LoadClassRequest)
};

// --- instantiation (class-bound REV/COD act as object factories) -----------

struct InstantiateRequest {
  std::string class_name;
  common::ComponentName object_name;
  bool is_public = false;
  // Node able to serve the class image if the target lacks it.
  common::NodeId class_source = common::kNoNode;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(InstantiateRequest)
};

struct SimpleReply {
  Status status = Status::Ok;
  common::NodeId hint = common::kNoNode;  // valid when Moved
  std::string error;
  // Placement epoch backing `hint` (Moved), or the new epoch of a
  // completed operation (e.g. a move's Ok reply carries the migrated
  // object's epoch).  0 = unfenced.
  std::uint64_t hint_epoch = 0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(SimpleReply)
};

// --- migration (Figure 7) ---------------------------------------------------

struct MoveRequest {
  common::ComponentName name;
  common::NodeId to = common::kNoNode;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(MoveRequest)
};

struct TransferRequest {
  common::ComponentName name;
  std::string class_name;
  bool is_public = false;
  // Placement epoch the destination binds the object at (source's epoch +
  // 1); fences stale Moved hints behind this migration.
  std::uint64_t epoch = 0;
  serial::Buffer state;  // weakly migrated heap state

  // Scatter-gather: `state` rides as its own fragment, uncopied.
  [[nodiscard]] serial::BufferChain encode() const;
  MAGE_PROTO_DECODE(TransferRequest)
};

// --- invocation ---------------------------------------------------------

struct InvokeRequest {
  common::ComponentName name;
  std::string method;
  serial::Buffer args;

  // Scatter-gather: `args` rides as its own fragment, uncopied.
  [[nodiscard]] serial::BufferChain encode() const;
  MAGE_PROTO_DECODE(InvokeRequest)
};

struct InvokeReply {
  Status status = Status::Ok;
  common::NodeId hint = common::kNoNode;  // valid when Moved
  std::string error;                      // valid when Error
  std::uint64_t hint_epoch = 0;           // placement epoch backing `hint`
  serial::Buffer result;                  // valid when Ok

  // Scatter-gather: `result` rides as its own fragment, uncopied.
  [[nodiscard]] serial::BufferChain encode() const;
  MAGE_PROTO_DECODE(InvokeReply)
};

struct FetchResultRequest {
  common::ComponentName name;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(FetchResultRequest)
};

// --- locking -------------------------------------------------------------

struct LockRequest {
  common::ComponentName name;
  common::NodeId target = common::kNoNode;  // the attribute's target
  std::uint64_t activity = 0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(LockRequest)
};

struct LockReply {
  Status status = Status::Ok;
  common::NodeId hint = common::kNoNode;  // valid when Moved
  std::uint64_t lock_id = 0;              // valid when Ok
  LockKind kind = LockKind::Stay;         // valid when Ok
  std::string error;
  std::uint64_t hint_epoch = 0;           // placement epoch backing `hint`

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(LockReply)
};

struct UnlockRequest {
  common::ComponentName name;
  std::uint64_t lock_id = 0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(UnlockRequest)
};

// --- class statics ------------------------------------------------------------

struct StaticGetRequest {
  std::string class_name;
  std::string key;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(StaticGetRequest)
};

struct StaticPutRequest {
  std::string class_name;
  std::string key;
  serial::Buffer value;

  // Scatter-gather: `value` rides as its own fragment, uncopied.
  [[nodiscard]] serial::BufferChain encode() const;
  MAGE_PROTO_DECODE(StaticPutRequest)
};

// --- condensed remote evaluation --------------------------------------------------

struct ExecRequest {
  std::string class_name;
  common::ComponentName object_name;  // bound at the target after the call
  std::string method;
  serial::Buffer args;
  common::NodeId class_source = common::kNoNode;

  // Scatter-gather: `args` rides as its own fragment, uncopied (the
  // class_source field follows in a trailing fragment).
  [[nodiscard]] serial::BufferChain encode() const;
  MAGE_PROTO_DECODE(ExecRequest)
};

// --- resource discovery ---------------------------------------------------------

struct DiscoverRequest {
  std::string kind;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(DiscoverRequest)
};

struct DiscoverReply {
  bool offers = false;
  double capacity = 0.0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(DiscoverReply)
};

// --- replicated directory & election ----------------------------------------
//
// The director quorum's control-plane messages (docs/ARCHITECTURE.md,
// "Replicated directory & election").  Election messages are term-based;
// placement records carry the same epoch fence the forwarding chain uses.

struct VoteRequest {
  std::uint64_t term = 0;
  common::NodeId candidate = common::kNoNode;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(VoteRequest)
};

struct VoteReply {
  std::uint64_t term = 0;
  bool granted = false;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(VoteReply)
};

struct HeartbeatRequest {
  std::uint64_t term = 0;
  common::NodeId leader = common::kNoNode;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(HeartbeatRequest)
};

struct HeartbeatReply {
  std::uint64_t term = 0;
  bool ok = false;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(HeartbeatReply)
};

// One replicated placement fact: where `name` lives as of `epoch`.
struct PlacementRecord {
  common::ComponentName name;
  std::string class_name;
  common::NodeId host = common::kNoNode;
  bool is_public = false;
  std::uint64_t epoch = 0;
};

void put_record(serial::Writer& w, const PlacementRecord& rec);
[[nodiscard]] PlacementRecord get_record(serial::ChainReader& r);

// kDirAnnounce (leader-only; followers answer Moved + leader hint) and
// kDirReplicate (leader -> follower fan-out) share this body.
struct DirAnnounceRequest {
  PlacementRecord record;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(DirAnnounceRequest)
};

struct DirAnnounceReply {
  Status status = Status::Ok;
  common::NodeId leader = common::kNoNode;  // best-known leader (any status)
  std::uint64_t epoch = 0;                  // epoch stored, when Ok
  std::string error;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(DirAnnounceReply)
};

struct DirResolveRequest {
  common::ComponentName name;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(DirResolveRequest)
};

struct DirResolveReply {
  Status status = Status::NotFound;
  common::NodeId host = common::kNoNode;    // valid when Ok
  std::uint64_t epoch = 0;                  // valid when Ok
  common::NodeId leader = common::kNoNode;  // best-known leader (any status)
  std::string error;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(DirResolveReply)
};

// --- partition manifests (distributed collections) ---------------------------

// "Which components live on you right now?"  The queried node answers from
// its registry — names filtered by prefix, each with its placement epoch —
// which is how rts::Rebalancer picks a partition to migrate off a hot node
// without trusting a possibly-stale client-side table.
struct ManifestRequest {
  std::string prefix;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(ManifestRequest)
};

struct ManifestReply {
  // (component name, placement epoch), in registry (lexicographic) order.
  std::vector<std::pair<common::ComponentName, std::uint64_t>> entries;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(ManifestReply)
};

// --- misc ------------------------------------------------------------------

struct LoadReply {
  double load = 0.0;

  [[nodiscard]] serial::Buffer encode() const;
  MAGE_PROTO_DECODE(LoadReply)
};

#undef MAGE_PROTO_DECODE

}  // namespace mage::rts::proto
