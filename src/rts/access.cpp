#include "rts/access.hpp"

namespace mage::rts {

const char* operation_name(Operation op) {
  switch (op) {
    case Operation::Lookup:
      return "lookup";
    case Operation::Invoke:
      return "invoke";
    case Operation::MoveOut:
      return "move-out";
    case Operation::TransferIn:
      return "transfer-in";
    case Operation::FetchClass:
      return "fetch-class";
    case Operation::LoadClass:
      return "load-class";
    case Operation::Instantiate:
      return "instantiate";
    case Operation::Lock:
      return "lock";
  }
  return "?";
}

void AccessController::allow_node(Operation op, common::NodeId caller) {
  node_rules_[{op, caller}] = Verdict::Allow;
}

void AccessController::deny_node(Operation op, common::NodeId caller) {
  node_rules_[{op, caller}] = Verdict::Deny;
}

void AccessController::allow_domain(Operation op, const std::string& domain) {
  domain_rules_[{op, domain}] = Verdict::Allow;
}

void AccessController::deny_domain(Operation op, const std::string& domain) {
  domain_rules_[{op, domain}] = Verdict::Deny;
}

bool AccessController::permitted(Operation op, common::NodeId caller,
                                 const std::string& caller_domain) const {
  if (auto it = node_rules_.find({op, caller}); it != node_rules_.end()) {
    return it->second == Verdict::Allow;
  }
  if (!caller_domain.empty()) {
    if (auto it = domain_rules_.find({op, caller_domain});
        it != domain_rules_.end()) {
      return it->second == Verdict::Allow;
    }
  }
  return default_ == Verdict::Allow;
}

}  // namespace mage::rts
