#include "rts/class_world.hpp"

namespace mage::rts {

const ClassDescriptor& ClassWorld::descriptor(const std::string& name) const {
  auto it = descriptors_.find(name);
  if (it == descriptors_.end()) {
    throw common::SerializationError("class '" + name +
                                     "' is not registered in the world");
  }
  return it->second;
}

std::unique_ptr<MageObject> ClassWorld::instantiate(
    const std::string& class_name) const {
  auto object = types_.create(class_name);
  auto* mage_object = dynamic_cast<MageObject*>(object.get());
  if (mage_object == nullptr) {
    throw common::SerializationError("class '" + class_name +
                                     "' is not a MageObject");
  }
  object.release();
  return std::unique_ptr<MageObject>(mage_object);
}

std::unique_ptr<MageObject> ClassWorld::deserialize(
    const std::string& class_name, serial::Reader& r) const {
  auto object = instantiate(class_name);
  object->deserialize(r);
  return object;
}

const MethodEntry& ClassWorld::method(const std::string& class_name,
                                      const std::string& method_name) const {
  const auto& d = descriptor(class_name);
  auto it = d.methods.find(method_name);
  if (it == d.methods.end()) {
    throw common::RemoteInvocationError("class '" + class_name +
                                        "' has no method '" + method_name +
                                        "'");
  }
  return it->second;
}

}  // namespace mage::rts
