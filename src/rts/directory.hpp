// Static component directory.
//
// The paper concedes (Section 7): "MAGE has inherited RMI's reliance on
// static information shared between clients and servers.  Specifically,
// MAGE requires that mobile objects and their clients share the name of the
// mobile object's origin server, an interface to the mobile object and the
// mobile object's name as bound in the MAGE registry."
//
// The Directory is exactly that shared static knowledge: name -> (origin
// server, class, public/private).  It is deployment-time configuration, so
// consulting it costs nothing at runtime.  Everything *dynamic* — where the
// object currently lives — is tracked by the per-node registries and their
// forwarding chains, never here.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "rts/component.hpp"

namespace mage::rts {

class Directory {
 public:
  void announce(const ComponentInfo& info) { entries_[info.name] = info; }

  [[nodiscard]] bool contains(const common::ComponentName& name) const {
    return entries_.contains(name);
  }

  [[nodiscard]] const ComponentInfo& info(
      const common::ComponentName& name) const {
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw common::NotFoundError(name, "no directory entry");
    }
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<common::ComponentName, ComponentInfo> entries_;
};

}  // namespace mage::rts
