#include "rts/async_client.hpp"

#include <utility>

#include "rts/director.hpp"

namespace mage::rts {

namespace proto_verbs = proto::verbs;

// Chase/retry pacing for operations addressed to a moving object — the
// same budget MageClient uses, so the two facades converge identically.
constexpr int kMaxChaseAttempts = 12;
constexpr common::SimDuration kChaseBackoffUs = 10'000;

// One in-flight invoke/move: the chase state machine, shared by the
// channel callbacks and the relocation events that advance it.
struct AsyncClient::ChaseOp {
  enum class Kind { Invoke, InvokeOneway, Move };

  Kind kind = Kind::Invoke;
  common::ComponentName name;
  std::string method;       // Invoke/InvokeOneway
  serial::Buffer args;      // Invoke/InvokeOneway
  common::NodeId to;        // Move
  common::NodeId at = common::kNoNode;
  int attempts = 0;

  MagePromise<serial::Buffer> result;  // Invoke
  MagePromise<Unit> ack;               // InvokeOneway
  MagePromise<common::NodeId> moved;   // Move
};

AsyncClient::AsyncClient(MageServer& server)
    : AsyncClient(server, rmi::CallPolicy{}) {}

AsyncClient::AsyncClient(MageServer& server, rmi::CallPolicy policy)
    : server_(server),
      transport_(server.transport()),
      sim_(transport_.network().node_sim(transport_.self())),
      policy_(policy),
      async_invokes_(sim_.stats().counter_handle("rts.async_invokes")),
      async_redirects_(sim_.stats().counter_handle("rts.async_redirects")),
      async_relocates_(sim_.stats().counter_handle("rts.async_relocates")),
      async_moves_(sim_.stats().counter_handle("rts.async_moves")) {
  rebuild_stack();
}

void AsyncClient::rebuild_stack() {
  // Destroy outer layers before the channels they wrap.
  retriable_.reset();
  hedged_.reset();
  direct_ = std::make_unique<rmi::DirectChannel>(transport_, policy_);
  top_ = direct_.get();
  if (policy_.hedge_after_us > 0) {
    hedged_ = std::make_unique<rmi::HedgedChannel>(*top_, policy_);
    top_ = hedged_.get();
  }
  if (policy_.max_retries > 0 || policy_.deadline_us > 0) {
    retriable_ = std::make_unique<rmi::RetriableChannel>(*top_, policy_);
    top_ = retriable_.get();
  }
}

void AsyncClient::set_policy(rmi::CallPolicy policy) {
  if (outstanding_ != 0) {
    throw common::MageError(
        "AsyncClient::set_policy with " + std::to_string(outstanding_) +
        " calls in flight: the channel stack cannot be replaced under them");
  }
  policy_ = policy;
  rebuild_stack();
}

// --- epoch fences -----------------------------------------------------------

void AsyncClient::note_epoch(const common::ComponentName& name,
                             std::uint64_t epoch) {
  auto& known = known_epochs_[name];
  if (epoch > known) known = epoch;
}

std::uint64_t AsyncClient::known_epoch(
    const common::ComponentName& name) const {
  const auto it = known_epochs_.find(name);
  return it == known_epochs_.end() ? 0 : it->second;
}

bool AsyncClient::accept_hint(const common::ComponentName& name,
                              common::NodeId hint, std::uint64_t hint_epoch) {
  if (common::is_no_node(hint)) return false;
  // Same fence as MageClient::accept_hint: unfenced hints (epoch 0) are
  // chased; fenced hints older than confirmed knowledge are rejected — a
  // stale chain can never send this client back to a dead ex-home.
  if (hint_epoch != 0 && hint_epoch < known_epoch(name)) {
    sim_.stats().add("rts.stale_hints_rejected");
    return false;
  }
  note_epoch(name, hint_epoch);
  return true;
}

common::NodeId AsyncClient::believed_host(
    const common::ComponentName& name) const {
  if (server_.registry().has_local(name) && !server_.in_transit(name)) {
    return transport_.self();
  }
  if (auto fwd = server_.registry().forward(name)) return *fwd;
  if (server_.directory().contains(name)) {
    return server_.directory().info(name).home;
  }
  return common::kNoNode;
}

// --- locate -----------------------------------------------------------------

MageFuture<common::NodeId> AsyncClient::directory_fallback(
    const common::ComponentName& name) {
  MagePromise<common::NodeId> promise;
  if (directory_client_ == nullptr) {
    promise.set_error("'" + name + "' is not known here (no forwarding "
                      "address, no static-directory entry, no replicated "
                      "directory configured)");
    return promise.future();
  }
  directory_client_->resolve(
      name, [this, name, promise](
                std::optional<DirectoryClient::Resolution> resolution) {
        if (!resolution) {
          promise.set_error("directory has no record of '" + name + "'");
          return;
        }
        if (resolution->epoch < known_epoch(name)) {
          // The quorum lags our own confirmed knowledge (an announce is
          // still in flight); treat as not-yet-found so the chase retries.
          promise.set_error("directory record of '" + name + "' is stale");
          return;
        }
        note_epoch(name, resolution->epoch);
        server_.registry().update_forward(name, resolution->host,
                                          resolution->epoch);
        promise.set_value(resolution->host);
      });
  return promise.future();
}

MageFuture<common::NodeId> AsyncClient::unfenced_walk(
    const common::ComponentName& name, common::NodeId start) {
  proto::LookupRequest request;
  request.name = name;
  request.min_epoch = 0;
  MagePromise<common::NodeId> promise;
  ++outstanding_;
  sim_.stats().add("rts.unfenced_walks");
  channel().call(start, proto_verbs::kLookup, request.encode(),
                 [this, name, promise](rmi::CallResult result) {
                   --outstanding_;
                   if (result.ok) {
                     const auto reply = proto::LookupReply::decode(result.body);
                     if (reply.status == proto::Status::Ok) {
                       note_epoch(name, reply.epoch);
                       server_.registry().update_forward(name, reply.host,
                                                         reply.epoch);
                       promise.set_value(reply.host);
                       return;
                     }
                     promise.set_error("unfenced walk for '" + name +
                                       "' dead-ended: " + reply.error);
                     return;
                   }
                   promise.set_error(result.error);
                 });
  return promise.future();
}

MageFuture<common::NodeId> AsyncClient::locate(
    const common::ComponentName& name) {
  if (server_.registry().has_local(name) && !server_.in_transit(name)) {
    MagePromise<common::NodeId> promise;
    promise.set_value(transport_.self());
    return promise.future();
  }

  const bool shared = server_.directory().contains(name) &&
                      server_.directory().info(name).is_public;
  common::NodeId start = common::kNoNode;
  if (auto fwd = server_.registry().forward(name)) {
    // Private objects move only through their owner, so the forwarding
    // address is authoritative; shared ones verify by walking the chain.
    if (!shared) {
      MagePromise<common::NodeId> promise;
      promise.set_value(*fwd);
      return promise.future();
    }
    start = *fwd;
  } else if (server_.directory().contains(name)) {
    start = server_.directory().info(name).home;
  }
  if (common::is_no_node(start) || start == transport_.self()) {
    return directory_fallback(name);
  }

  proto::LookupRequest request;
  request.name = name;
  request.min_epoch = known_epoch(name);
  MagePromise<common::NodeId> promise;
  ++outstanding_;
  channel().call(
      start, proto_verbs::kLookup, request.encode(),
      [this, name, start, promise](rmi::CallResult result) {
        --outstanding_;
        if (result.ok) {
          const auto reply = proto::LookupReply::decode(result.body);
          if (reply.status == proto::Status::Ok) {
            note_epoch(name, reply.epoch);
            server_.registry().update_forward(name, reply.host, reply.epoch);
            promise.set_value(reply.host);
            return;
          }
        }
        // Chain start unreachable or the walk dead-ended; the replicated
        // directory (when configured) may still know the placement, and an
        // unfenced walk is the final fallback — a fenced walk refuses any
        // chain entry older than this client's own fence, which can strand
        // a client whose fence outran every reachable entry (e.g. after a
        // partition bounced between nodes several times).
        directory_fallback(name)
            .then([promise](common::NodeId host) mutable {
              promise.set_value(host);
            })
            .on_error([this, name, start, promise](const std::string&) {
              unfenced_walk(name, start)
                  .then([promise](common::NodeId host) mutable {
                    promise.set_value(host);
                  })
                  .on_error([promise](const std::string& error) mutable {
                    promise.set_error(error);
                  });
            });
      });
  return promise.future();
}

// --- the chase --------------------------------------------------------------

void AsyncClient::start_chase(const std::shared_ptr<ChaseOp>& op) {
  op->at = believed_host(op->name);
  if (common::is_no_node(op->at)) {
    relocate_and_resume(op, "no local knowledge of '" + op->name + "'");
    return;
  }
  send_op(op);
}

void AsyncClient::send_op(const std::shared_ptr<ChaseOp>& op) {
  ++outstanding_;
  switch (op->kind) {
    case ChaseOp::Kind::Invoke: {
      proto::InvokeRequest request{op->name, op->method, op->args};
      channel().call(op->at, proto_verbs::kInvoke, request.encode(),
                     [this, op](rmi::CallResult result) {
                       --outstanding_;
                       on_invoke_reply(op, std::move(result));
                     });
      return;
    }
    case ChaseOp::Kind::InvokeOneway: {
      proto::InvokeRequest request{op->name, op->method, op->args};
      // Direct channel unconditionally: one-way verbs are never
      // channel-retried (a duplicate would re-run the agent method).
      direct_->call(op->at, proto_verbs::kInvokeOneway, request.encode(),
                    [this, op](rmi::CallResult result) {
                      --outstanding_;
                      on_invoke_reply(op, std::move(result));
                    });
      return;
    }
    case ChaseOp::Kind::Move: {
      proto::MoveRequest request;
      request.name = op->name;
      request.to = op->to;
      channel().call(op->at, proto_verbs::kMove, request.encode(),
                     [this, op](rmi::CallResult result) {
                       --outstanding_;
                       on_move_reply(op, std::move(result));
                     });
      return;
    }
  }
}

void AsyncClient::on_invoke_reply(const std::shared_ptr<ChaseOp>& op,
                                  rmi::CallResult result) {
  if (!result.ok) {
    relocate_and_resume(op, std::move(result.error));
    return;
  }
  auto reply = proto::InvokeReply::decode(result.body);
  switch (reply.status) {
    case proto::Status::Ok:
      ++*async_invokes_;
      if (op->kind == ChaseOp::Kind::InvokeOneway) {
        op->ack.set_value(Unit{});
      } else {
        op->result.set_value(std::move(reply.result));
      }
      return;
    case proto::Status::Moved:
      if (accept_hint(op->name, reply.hint, reply.hint_epoch)) {
        ++*async_redirects_;
        if (++op->attempts >= kMaxChaseAttempts) {
          fail_op(op, "redirect chain exceeded the chase budget");
          return;
        }
        op->at = reply.hint;
        send_op(op);  // fresh hint: follow immediately, no backoff
        return;
      }
      relocate_and_resume(op, "stale Moved hint rejected");
      return;
    case proto::Status::NotFound:
      relocate_and_resume(op, "object is mid-flight or unknown at " +
                                  std::to_string(op->at.value()));
      return;
    case proto::Status::Error:
      fail_op(op, reply.error);
      return;
  }
}

void AsyncClient::on_move_reply(const std::shared_ptr<ChaseOp>& op,
                                rmi::CallResult result) {
  if (!result.ok) {
    // Idempotent from here: if the move actually completed, the retry at
    // the stale host is answered with a Moved hint and the chase converges
    // at the target (where to == self is a no-op).
    relocate_and_resume(op, std::move(result.error));
    return;
  }
  auto reply = proto::SimpleReply::decode(result.body);
  switch (reply.status) {
    case proto::Status::Ok:
      ++*async_moves_;
      // The source's Ok carries the new placement epoch; record it so
      // stale chains left behind by the old placement are fenced off.
      note_epoch(op->name, reply.hint_epoch);
      server_.registry().update_forward(op->name, op->to, reply.hint_epoch);
      if (directory_client_ != nullptr) {
        // Asynchronous announce (fire-and-forget): readers that race it
        // are protected by the epoch fence, exactly like the sync path.
        directory_client_->announce(
            proto::PlacementRecord{op->name, std::string{}, op->to,
                                   server_.directory().contains(op->name) &&
                                       server_.directory()
                                           .info(op->name)
                                           .is_public,
                                   reply.hint_epoch},
            [](bool) {});
      }
      op->moved.set_value(op->to);
      return;
    case proto::Status::Moved:
      if (accept_hint(op->name, reply.hint, reply.hint_epoch)) {
        ++*async_redirects_;
        if (++op->attempts >= kMaxChaseAttempts) {
          fail_op(op, "redirect chain exceeded the chase budget");
          return;
        }
        op->at = reply.hint;
        send_op(op);
        return;
      }
      relocate_and_resume(op, "stale Moved hint rejected");
      return;
    case proto::Status::NotFound:
      relocate_and_resume(op, "object is mid-flight or unknown at " +
                                  std::to_string(op->at.value()));
      return;
    case proto::Status::Error:
      fail_op(op, reply.error);
      return;
  }
}

void AsyncClient::relocate_and_resume(const std::shared_ptr<ChaseOp>& op,
                                      std::string why) {
  if (++op->attempts >= kMaxChaseAttempts) {
    fail_op(op, why);
    return;
  }
  ++*async_relocates_;
  // The object may be mid-flight between namespaces; back off, re-locate
  // from fresh knowledge, then resume the chase.
  sim_.schedule_after(
      kChaseBackoffUs,
      [this, op, why = std::move(why)]() mutable {
        locate(op->name)
            .then([this, op](common::NodeId host) {
              op->at = host;
              send_op(op);
            })
            .on_error([this, op, why = std::move(why)](
                          const std::string& locate_error) mutable {
              relocate_and_resume(op, why + "; then " + locate_error);
            });
      },
      sim::Wake::No);
}

void AsyncClient::fail_op(const std::shared_ptr<ChaseOp>& op,
                          const std::string& why) {
  const char* what = op->kind == ChaseOp::Kind::Move ? "move" : "invoke";
  const std::string message = std::string(what) + " of '" + op->name +
                              "' did not converge after " +
                              std::to_string(op->attempts) +
                              " attempts: " + why;
  // Failure can surface from a channel/backoff timer event; wake so an
  // enclosing run_until re-checks its predicate.
  sim_.wake();
  switch (op->kind) {
    case ChaseOp::Kind::Invoke:
      op->result.set_error(message);
      return;
    case ChaseOp::Kind::InvokeOneway:
      op->ack.set_error(message);
      return;
    case ChaseOp::Kind::Move:
      op->moved.set_error(message);
      return;
  }
}

// --- public operations ------------------------------------------------------

MageFuture<serial::Buffer> AsyncClient::invoke_raw(
    const common::ComponentName& name, const std::string& method,
    serial::Buffer args) {
  auto op = std::make_shared<ChaseOp>();
  op->kind = ChaseOp::Kind::Invoke;
  op->name = name;
  op->method = method;
  op->args = std::move(args);
  start_chase(op);
  return op->result.future();
}

MageFuture<Unit> AsyncClient::invoke_oneway_raw(
    const common::ComponentName& name, const std::string& method,
    serial::Buffer args) {
  auto op = std::make_shared<ChaseOp>();
  op->kind = ChaseOp::Kind::InvokeOneway;
  op->name = name;
  op->method = method;
  op->args = std::move(args);
  start_chase(op);
  return op->ack.future();
}

MageFuture<common::NodeId> AsyncClient::move(const common::ComponentName& name,
                                             common::NodeId to) {
  auto op = std::make_shared<ChaseOp>();
  op->kind = ChaseOp::Kind::Move;
  op->name = name;
  op->to = to;
  start_chase(op);
  return op->moved.future();
}

MageFuture<double> AsyncClient::load_of(common::NodeId node) {
  MagePromise<double> promise;
  ++outstanding_;
  channel().call(node, proto_verbs::kGetLoad, {},
                 [this, promise](rmi::CallResult result) {
                   --outstanding_;
                   if (!result.ok) {
                     promise.set_error(std::move(result.error));
                     return;
                   }
                   promise.set_value(
                       proto::LoadReply::decode(result.body).load);
                 });
  return promise.future();
}

MageFuture<std::vector<std::pair<std::string, std::uint64_t>>>
AsyncClient::manifest(common::NodeId node, const std::string& prefix) {
  MagePromise<std::vector<std::pair<std::string, std::uint64_t>>> promise;
  proto::ManifestRequest request;
  request.prefix = prefix;
  ++outstanding_;
  channel().call(node, proto_verbs::kManifest, request.encode(),
                 [this, promise](rmi::CallResult result) {
                   --outstanding_;
                   if (!result.ok) {
                     promise.set_error(std::move(result.error));
                     return;
                   }
                   promise.set_value(
                       proto::ManifestReply::decode(result.body).entries);
                 });
  return promise.future();
}

MageFuture<Unit> AsyncClient::ping(common::NodeId node) {
  MagePromise<Unit> promise;
  ++outstanding_;
  channel().call(node, proto_verbs::kPing, {},
                 [this, promise](rmi::CallResult result) {
                   --outstanding_;
                   if (!result.ok) {
                     promise.set_error(std::move(result.error));
                     return;
                   }
                   promise.set_value(Unit{});
                 });
  return promise.future();
}

}  // namespace mage::rts
