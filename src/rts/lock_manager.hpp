// Mobile-object locking (Section 4.4, Figure 8).
//
// "Each mobile object has a lock queue.  Each lock request in the queue
// carries its mobility attribute's computation target, T.  If the mobile
// object already resides in the namespace named by the lock request, MAGE
// returns a *stay* lock to the requesting mobility attribute, otherwise it
// returns a *move* lock.  Because object migration is so expensive, MAGE's
// current locking implementation unfairly favors invocations that stay
// lock their object."
//
// The queue lives at the object's current host.  When the object departs,
// queued requests are bounced with the new host so callers re-request there
// (the paper's footnote: stay and move locks are read/write locks under
// another guise — we keep them exclusive, as object movement is the hazard
// being serialized).  `set_fair(true)` switches to strict FIFO granting,
// the ablation benchmarked by bench_ablation_lock_fairness.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/ids.hpp"

namespace mage::rts {

enum class LockKind : std::uint8_t { Stay = 0, Move = 1 };

struct LockGrant {
  common::LockId id;
  LockKind kind;
};

class LockManager {
 public:
  using GrantFn = std::function<void(LockGrant)>;
  // Called for queued requests when the object leaves this node; the
  // requester should retry at `new_host`.
  using BounceFn = std::function<void(common::NodeId new_host)>;

  explicit LockManager(common::NodeId self) : self_(self) {}

  // Requests the lock for `name` on behalf of `activity`, intending to
  // compute at `target`.  `grant` fires (possibly immediately, possibly
  // later) when the lock is acquired; `bounce` fires instead if the object
  // departs while the request is queued.
  void request(const common::ComponentName& name, common::ActivityId activity,
               common::NodeId target, GrantFn grant, BounceFn bounce);

  // Releases a held lock; returns false when `id` does not hold `name`.
  // Granting the next queued request happens before returning.
  bool release(const common::ComponentName& name, common::LockId id);

  // The object migrated to `new_host`: all *queued* requests are bounced.
  // The current holder (typically the mover itself) keeps its grant and
  // must still release here.
  void on_object_departed(const common::ComponentName& name,
                          common::NodeId new_host);

  [[nodiscard]] bool is_locked(const common::ComponentName& name) const;
  [[nodiscard]] std::size_t queue_length(
      const common::ComponentName& name) const;

  // Strict-FIFO granting instead of the paper's stay-first policy.
  void set_fair(bool fair) { fair_ = fair; }
  [[nodiscard]] bool fair() const { return fair_; }

  [[nodiscard]] std::uint64_t stay_grants() const { return stay_grants_; }
  [[nodiscard]] std::uint64_t move_grants() const { return move_grants_; }

 private:
  struct Pending {
    common::ActivityId activity;
    common::NodeId target;
    GrantFn grant;
    BounceFn bounce;
  };

  struct ObjectLock {
    std::optional<LockGrant> holder;
    common::ActivityId holder_activity;
    std::deque<Pending> queue;
  };

  void grant_next(const common::ComponentName& name, ObjectLock& lock);
  LockGrant make_grant(common::NodeId target);

  common::NodeId self_;
  bool fair_ = false;
  std::map<common::ComponentName, ObjectLock> locks_;
  std::uint64_t next_lock_id_ = 1;
  std::uint64_t stay_grants_ = 0;
  std::uint64_t move_grants_ = 0;
};

}  // namespace mage::rts
