#include "serial/chain.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace mage::serial {

// --- BufferChain ------------------------------------------------------------

void BufferChain::append(Buffer fragment) {
  if (count_ >= kMaxFragments) {
    throw common::SerializationError(
        "body chain exceeds " + std::to_string(kMaxFragments) +
        " fragments");
  }
  total_ += fragment.size();
  ::new (static_cast<void*>(slot(count_))) Buffer(std::move(fragment));
  ++count_;
}

Buffer BufferChain::flatten() const {
  if (count_ == 0) return {};
  if (count_ == 1) return fragment(0);
  Writer w(total_);
  for (std::size_t i = 0; i < count_; ++i) {
    w.write_raw(fragment(i).data(), fragment(i).size());
  }
  Buffer::note_deep_copy(total_);
  return w.take();
}

void BufferChain::write_to(Writer& w) const {
  for (std::size_t i = 0; i < count_; ++i) {
    w.write_raw(fragment(i).data(), fragment(i).size());
  }
}

namespace {

// Lexicographic walk over a chain's logical bytes.
struct ChainCursor {
  const BufferChain& chain;
  std::size_t frag = 0;
  std::size_t offset = 0;

  // Next contiguous unread piece (empty only when exhausted).
  std::span<const std::uint8_t> piece() {
    while (frag < chain.fragments()) {
      const Buffer& f = chain.fragment(frag);
      if (offset < f.size()) return {f.data() + offset, f.size() - offset};
      ++frag;
      offset = 0;
    }
    return {};
  }
  void advance(std::size_t n) { offset += n; }
};

bool equals_bytes(const BufferChain& a, const std::uint8_t* b,
                  std::size_t b_size) {
  if (a.size() != b_size) return false;
  ChainCursor cur{a};
  std::size_t off = 0;
  while (off < b_size) {
    const auto piece = cur.piece();
    if (std::memcmp(piece.data(), b + off, piece.size()) != 0) return false;
    cur.advance(piece.size());
    off += piece.size();
  }
  return true;
}

}  // namespace

bool operator==(const BufferChain& a, const BufferChain& b) {
  if (a.size() != b.size()) return false;
  ChainCursor ca{a};
  ChainCursor cb{b};
  std::size_t left = a.size();
  while (left > 0) {
    auto pa = ca.piece();
    auto pb = cb.piece();
    const std::size_t n = pa.size() < pb.size() ? pa.size() : pb.size();
    if (std::memcmp(pa.data(), pb.data(), n) != 0) return false;
    ca.advance(n);
    cb.advance(n);
    left -= n;
  }
  return true;
}

bool operator==(const BufferChain& a, const Buffer& b) {
  return equals_bytes(a, b.data(), b.size());
}

bool operator==(const BufferChain& a, const std::vector<std::uint8_t>& b) {
  return equals_bytes(a, b.data(), b.size());
}

// --- ChainWriter ------------------------------------------------------------

void ChainWriter::seal() {
  if (writer_.size() > 0) chain_.append(writer_.take());
}

void ChainWriter::append_payload(const Buffer& payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw common::SerializationError(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds the u32 length prefix");
  }
  writer_.write_u32(static_cast<std::uint32_t>(payload.size()));
  if (payload.empty()) return;  // bare prefix; no fragment spent
  seal();
  chain_.append(payload);
}

BufferChain ChainWriter::take() {
  seal();
  return std::move(chain_);
}

// --- ChainReader ------------------------------------------------------------

void ChainReader::require(std::size_t n) const {
  if (remaining_ < n) {
    throw common::SerializationError(
        "truncated payload: need " + std::to_string(n) + " bytes, have " +
        std::to_string(remaining_));
  }
}

void ChainReader::normalize() {
  while (offset_ >= chain_.fragment(frag_).size()) {
    ++frag_;
    offset_ = 0;
  }
}

void ChainReader::read_raw(void* out, std::size_t size) {
  require(size);
  auto* dst = static_cast<std::uint8_t*>(out);
  while (size > 0) {
    normalize();
    const Buffer& f = chain_.fragment(frag_);
    const std::size_t n = size < fragment_remaining() ? size
                                                      : fragment_remaining();
    std::memcpy(dst, f.data() + offset_, n);
    offset_ += n;
    remaining_ -= n;
    dst += n;
    size -= n;
  }
}

template <typename T>
T ChainReader::read_le() {
  std::uint8_t raw[sizeof(T)];
  read_raw(raw, sizeof(T));
  T v;
  if constexpr (std::endian::native == std::endian::big) {
    std::uint8_t swapped[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      swapped[i] = raw[sizeof(T) - 1 - i];
    }
    std::memcpy(&v, swapped, sizeof(T));
  } else {
    std::memcpy(&v, raw, sizeof(T));
  }
  return v;
}

std::uint8_t ChainReader::read_u8() {
  require(1);
  normalize();
  --remaining_;
  return chain_.fragment(frag_)[offset_++];
}

std::uint16_t ChainReader::read_u16() { return read_le<std::uint16_t>(); }
std::uint32_t ChainReader::read_u32() { return read_le<std::uint32_t>(); }
std::uint64_t ChainReader::read_u64() { return read_le<std::uint64_t>(); }

std::int32_t ChainReader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

std::int64_t ChainReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

bool ChainReader::read_bool() { return read_u8() != 0; }

double ChainReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ChainReader::read_string() {
  const std::uint32_t size = read_u32();
  require(size);
  std::string out(size, '\0');
  if (size > 0) read_raw(out.data(), size);
  return out;
}

Buffer ChainReader::gather(std::size_t size) {
  Writer w(size);
  std::size_t left = size;
  while (left > 0) {
    normalize();
    const Buffer& f = chain_.fragment(frag_);
    const std::size_t n = left < fragment_remaining() ? left
                                                      : fragment_remaining();
    w.write_raw(f.data() + offset_, n);
    offset_ += n;
    remaining_ -= n;
    left -= n;
  }
  Buffer::note_deep_copy(size);
  return w.take();
}

void ChainReader::skip(std::size_t size) {
  require(size);
  while (size > 0) {
    normalize();
    const std::size_t n = size < fragment_remaining() ? size
                                                      : fragment_remaining();
    offset_ += n;
    remaining_ -= n;
    size -= n;
  }
}

Buffer ChainReader::read_bytes() {
  const std::uint32_t size = read_u32();
  require(size);
  if (size == 0) return {};
  normalize();
  if (size <= fragment_remaining()) {
    Buffer out = chain_.fragment(frag_).slice(offset_, size);
    offset_ += size;
    remaining_ -= size;
    return out;
  }
  return gather(size);
}

}  // namespace mage::serial
