#include "serial/buffer.hpp"

#include <atomic>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace mage::serial {
namespace {

// Atomic so sharded workers can account gathers concurrently; the hot path
// never copies, so the counters only cost on the slow path they police.
std::atomic<std::uint64_t> g_deep_copy_count{0};
std::atomic<std::uint64_t> g_deep_copy_bytes{0};

}  // namespace

Buffer Buffer::copy(std::span<const std::uint8_t> bytes) {
  note_deep_copy(bytes.size());
  if (bytes.empty()) return {};
  auto storage = std::make_shared_for_overwrite<std::uint8_t[]>(bytes.size());
  std::memcpy(storage.get(), bytes.data(), bytes.size());
  return adopt_shared(std::move(storage), bytes.size());
}

void Buffer::note_deep_copy(std::size_t bytes) {
  g_deep_copy_count.fetch_add(1, std::memory_order_relaxed);
  g_deep_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

Buffer Buffer::slice(std::size_t offset, std::size_t length) const {
  if (offset > size_ || length > size_ - offset) {
    throw common::SerializationError(
        "buffer slice [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") out of bounds (size " +
        std::to_string(size_) + ")");
  }
  return Buffer(owner_, data_ + offset, length);
}

std::uint64_t Buffer::deep_copy_count() {
  return g_deep_copy_count.load(std::memory_order_relaxed);
}
std::uint64_t Buffer::deep_copy_bytes() {
  return g_deep_copy_bytes.load(std::memory_order_relaxed);
}

void Buffer::reset_copy_counters() {
  g_deep_copy_count.store(0, std::memory_order_relaxed);
  g_deep_copy_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace mage::serial
