// Interface for migratable object state.
//
// MAGE uses *weak* migration (Section 3.5): only heap state moves, never an
// execution stack.  A mobile object therefore only has to know how to write
// its fields to a Writer and restore them from a Reader.  The class_name()
// ties the state blob to a class image in the type registry, reproducing
// Java's requirement that the class file be present before an object can be
// deserialized — which is exactly what forces MAGE to ship classes.
#pragma once

#include <string>

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::serial {

class Serializable {
 public:
  virtual ~Serializable() = default;

  // The registry name of this object's class (unique per concrete type).
  [[nodiscard]] virtual std::string class_name() const = 0;

  // Writes the object's heap state.
  virtual void serialize(Writer& w) const = 0;

  // Restores the object's heap state; the object was default-constructed by
  // the class factory just before this call.
  virtual void deserialize(Reader& r) = 0;
};

}  // namespace mage::serial
