// Generic value (de)serialization used by the typed RMI marshalling layer.
//
// put(Writer&, value) / get<T>(Reader&) are defined for the closed set of
// types that may cross the wire as invocation arguments and results:
// arithmetic types, bool, std::string, and std::vector / std::pair /
// std::optional / std::map compositions thereof.  Anything else fails to
// compile at the invocation site rather than at runtime.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace mage::serial {

// One-byte type tag preceding every codec-encoded value.  Catches
// marshalling mismatches (caller sent a string, method expects an int) at
// the unmarshalling site instead of silently reinterpreting bytes.
enum class WireTag : std::uint8_t {
  Bool = 0x01,
  I32 = 0x02,
  U32 = 0x03,
  I64 = 0x04,
  U64 = 0x05,
  F64 = 0x06,
  Str = 0x07,
  Vec = 0x08,
  Pair = 0x09,
  Opt = 0x0A,
  Map = 0x0B,
  Unit = 0x0C,
};

namespace detail {

inline void put_tag(Writer& w, WireTag tag) {
  w.write_u8(static_cast<std::uint8_t>(tag));
}

void expect_tag(Reader& r, WireTag expected);

}  // namespace detail

template <typename T>
struct Codec;  // primary template intentionally undefined

template <typename T>
concept WireType = requires(Writer& w, Reader& r, const T& v) {
  Codec<T>::put(w, v);
  { Codec<T>::get(r) } -> std::convertible_to<T>;
};

template <typename T>
void put(Writer& w, const T& value) {
  Codec<T>::put(w, value);
}

template <typename T>
[[nodiscard]] T get(Reader& r) {
  return Codec<T>::get(r);
}

// --- scalar codecs ---------------------------------------------------------

template <>
struct Codec<bool> {
  static void put(Writer& w, bool v) {
    detail::put_tag(w, WireTag::Bool);
    w.write_bool(v);
  }
  static bool get(Reader& r) {
    detail::expect_tag(r, WireTag::Bool);
    return r.read_bool();
  }
};

template <>
struct Codec<std::int32_t> {
  static void put(Writer& w, std::int32_t v) {
    detail::put_tag(w, WireTag::I32);
    w.write_i32(v);
  }
  static std::int32_t get(Reader& r) {
    detail::expect_tag(r, WireTag::I32);
    return r.read_i32();
  }
};

template <>
struct Codec<std::uint32_t> {
  static void put(Writer& w, std::uint32_t v) {
    detail::put_tag(w, WireTag::U32);
    w.write_u32(v);
  }
  static std::uint32_t get(Reader& r) {
    detail::expect_tag(r, WireTag::U32);
    return r.read_u32();
  }
};

template <>
struct Codec<std::int64_t> {
  static void put(Writer& w, std::int64_t v) {
    detail::put_tag(w, WireTag::I64);
    w.write_i64(v);
  }
  static std::int64_t get(Reader& r) {
    detail::expect_tag(r, WireTag::I64);
    return r.read_i64();
  }
};

template <>
struct Codec<std::uint64_t> {
  static void put(Writer& w, std::uint64_t v) {
    detail::put_tag(w, WireTag::U64);
    w.write_u64(v);
  }
  static std::uint64_t get(Reader& r) {
    detail::expect_tag(r, WireTag::U64);
    return r.read_u64();
  }
};

template <>
struct Codec<double> {
  static void put(Writer& w, double v) {
    detail::put_tag(w, WireTag::F64);
    w.write_f64(v);
  }
  static double get(Reader& r) {
    detail::expect_tag(r, WireTag::F64);
    return r.read_f64();
  }
};

template <>
struct Codec<std::string> {
  static void put(Writer& w, const std::string& v) {
    detail::put_tag(w, WireTag::Str);
    w.write_string(v);
  }
  static std::string get(Reader& r) {
    detail::expect_tag(r, WireTag::Str);
    return r.read_string();
  }
};

// --- composite codecs ------------------------------------------------------

template <WireType T>
struct Codec<std::vector<T>> {
  static void put(Writer& w, const std::vector<T>& v) {
    detail::put_tag(w, WireTag::Vec);
    w.write_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) Codec<T>::put(w, e);
  }
  static std::vector<T> get(Reader& r) {
    detail::expect_tag(r, WireTag::Vec);
    const std::uint32_t n = r.read_u32();
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(Codec<T>::get(r));
    return out;
  }
};

template <WireType A, WireType B>
struct Codec<std::pair<A, B>> {
  static void put(Writer& w, const std::pair<A, B>& v) {
    detail::put_tag(w, WireTag::Pair);
    Codec<A>::put(w, v.first);
    Codec<B>::put(w, v.second);
  }
  static std::pair<A, B> get(Reader& r) {
    detail::expect_tag(r, WireTag::Pair);
    A a = Codec<A>::get(r);
    B b = Codec<B>::get(r);
    return {std::move(a), std::move(b)};
  }
};

template <WireType T>
struct Codec<std::optional<T>> {
  static void put(Writer& w, const std::optional<T>& v) {
    detail::put_tag(w, WireTag::Opt);
    w.write_bool(v.has_value());
    if (v) Codec<T>::put(w, *v);
  }
  static std::optional<T> get(Reader& r) {
    detail::expect_tag(r, WireTag::Opt);
    if (!r.read_bool()) return std::nullopt;
    return Codec<T>::get(r);
  }
};

template <WireType K, WireType V>
struct Codec<std::map<K, V>> {
  static void put(Writer& w, const std::map<K, V>& v) {
    detail::put_tag(w, WireTag::Map);
    w.write_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& [k, val] : v) {
      Codec<K>::put(w, k);
      Codec<V>::put(w, val);
    }
  }
  static std::map<K, V> get(Reader& r) {
    detail::expect_tag(r, WireTag::Map);
    const std::uint32_t n = r.read_u32();
    std::map<K, V> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      K k = Codec<K>::get(r);
      V val = Codec<V>::get(r);
      out.emplace(std::move(k), std::move(val));
    }
    return out;
  }
};

// Marker for invocations with no result ("void methods").
struct Unit {
  friend bool operator==(Unit, Unit) = default;
};

template <>
struct Codec<Unit> {
  static void put(Writer& w, Unit) { detail::put_tag(w, WireTag::Unit); }
  static Unit get(Reader& r) {
    detail::expect_tag(r, WireTag::Unit);
    return {};
  }
};

}  // namespace mage::serial
