// Byte-oriented serialization writer.
//
// MAGE must marshal three kinds of payloads: invocation arguments/results
// (the paper's "traditional data marshalling mechanisms"), migrating object
// state (weak migration: heap state only, Section 3.5), and class images.
// The encoding is explicit little-endian with length-prefixed strings —
// deliberately simple and self-contained, since building the wire format by
// hand is part of the reproduction (repro note: "manual serialization").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mage::serial {

class Writer {
 public:
  Writer() = default;

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_bool(bool v);
  void write_f64(double v);
  // Length-prefixed (u32) byte string.
  void write_string(std::string_view v);
  // Raw bytes, caller is responsible for knowing the length on read.
  void write_raw(const void* data, std::size_t size);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  // Moves the accumulated bytes out, leaving the writer empty.
  [[nodiscard]] std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace mage::serial
