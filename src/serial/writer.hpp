// Byte-oriented serialization writer.
//
// MAGE must marshal three kinds of payloads: invocation arguments/results
// (the paper's "traditional data marshalling mechanisms"), migrating object
// state (weak migration: heap state only, Section 3.5), and class images.
// The encoding is explicit little-endian with length-prefixed strings —
// deliberately simple and self-contained, since building the wire format by
// hand is part of the reproduction (repro note: "manual serialization").
//
// The accumulated bytes leave the writer exactly once, as an immutable
// ref-counted serial::Buffer (take()), so a marshalled payload is written
// once and never copied again on its way through the transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serial/buffer.hpp"

namespace mage::serial {

class Writer {
 public:
  Writer() = default;
  // Pre-reserves capacity so a known-size payload builds with one
  // allocation.
  explicit Writer(std::size_t reserve_bytes) { buffer_.reserve(reserve_bytes); }

  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_bool(bool v);
  void write_f64(double v);
  // Length-prefixed (u32) byte string.  Throws SerializationError when
  // v.size() exceeds UINT32_MAX (a silent wrong length prefix would corrupt
  // the stream).
  void write_string(std::string_view v);
  // Length-prefixed (u32) byte block, mirror of Reader::read_bytes.
  void write_bytes(std::span<const std::uint8_t> v);
  // Raw bytes, caller is responsible for knowing the length on read.
  void write_raw(const void* data, std::size_t size);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  // Moves the accumulated bytes out as an immutable Buffer (no byte copy),
  // leaving the writer empty.
  [[nodiscard]] Buffer take();

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace mage::serial
