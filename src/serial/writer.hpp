// Byte-oriented serialization writer.
//
// MAGE must marshal three kinds of payloads: invocation arguments/results
// (the paper's "traditional data marshalling mechanisms"), migrating object
// state (weak migration: heap state only, Section 3.5), and class images.
// The encoding is explicit little-endian with length-prefixed strings —
// deliberately simple and self-contained, since building the wire format by
// hand is part of the reproduction (repro note: "manual serialization").
//
// The writer builds directly into the shared array block that becomes the
// Buffer: take() moves the storage out with no copy and no extra control
// block, so a message whose size fits the initial reservation costs exactly
// ONE allocation end to end (make_shared<uint8_t[]> fuses bytes and control
// block).  Growth re-allocates and memcpys — an internal resize, not a
// counted payload deep-copy; pre-reserve on known-size payloads to avoid it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "serial/buffer.hpp"

namespace mage::serial {

class Writer {
 public:
  Writer() = default;
  // Pre-reserves capacity so a known-size payload builds with one
  // allocation.
  explicit Writer(std::size_t reserve_bytes) { reserve(reserve_bytes); }

  void reserve(std::size_t bytes) {
    if (bytes > capacity_) grow_to(bytes);
  }

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_bool(bool v);
  void write_f64(double v);
  // Length-prefixed (u32) byte string.  Throws SerializationError when
  // v.size() exceeds UINT32_MAX (a silent wrong length prefix would corrupt
  // the stream).
  void write_string(std::string_view v);
  // Length-prefixed (u32) byte block, mirror of Reader::read_bytes.
  void write_bytes(std::span<const std::uint8_t> v);
  // Raw bytes, caller is responsible for knowing the length on read.
  void write_raw(const void* data, std::size_t size);
  // `count` copies of `value` (simulated class-image filler et al.) without
  // materialising a temporary vector.
  void write_fill(std::uint8_t value, std::size_t count);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {storage_.get(), size_};
  }
  [[nodiscard]] std::size_t size() const { return size_; }

  // Moves the accumulated storage out as an immutable Buffer (no byte copy,
  // no additional allocation), leaving the writer empty.
  [[nodiscard]] Buffer take();

 private:
  void grow_to(std::size_t min_capacity);
  // Returns the write cursor after ensuring room for `extra` more bytes.
  std::uint8_t* make_room(std::size_t extra);

  std::shared_ptr<std::uint8_t[]> storage_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace mage::serial
