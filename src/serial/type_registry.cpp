#include "serial/type_registry.hpp"

#include "common/error.hpp"

namespace mage::serial {

bool TypeRegistry::register_type(const std::string& name, Factory factory) {
  auto [it, inserted] = factories_.insert_or_assign(name, std::move(factory));
  (void)it;
  return inserted;
}

bool TypeRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::unique_ptr<Serializable> TypeRegistry::create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw common::SerializationError("unknown class '" + name +
                                     "' (no factory registered)");
  }
  return it->second();
}

std::unique_ptr<Serializable> TypeRegistry::deserialize_object(
    const std::string& name, Reader& r) const {
  auto object = create(name);
  object->deserialize(r);
  return object;
}

std::vector<std::string> TypeRegistry::registered_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace mage::serial
