#include "serial/writer.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace mage::serial {
namespace {

constexpr std::size_t kMinCapacity = 64;

void check_block_size(std::size_t size) {
  if (size > std::numeric_limits<std::uint32_t>::max()) {
    throw common::SerializationError(
        "block of " + std::to_string(size) +
        " bytes exceeds the u32 length prefix");
  }
}

}  // namespace

void Writer::grow_to(std::size_t min_capacity) {
  std::size_t capacity = capacity_ < kMinCapacity ? kMinCapacity : capacity_;
  while (capacity < min_capacity) capacity *= 2;
  auto grown = std::make_shared_for_overwrite<std::uint8_t[]>(capacity);
  if (size_ > 0) std::memcpy(grown.get(), storage_.get(), size_);
  storage_ = std::move(grown);
  capacity_ = capacity;
}

std::uint8_t* Writer::make_room(std::size_t extra) {
  if (size_ + extra > capacity_) grow_to(size_ + extra);
  return storage_.get() + size_;
}

template <typename T>
static void store_le(std::uint8_t* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (std::endian::native == std::endian::big) {
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) out[i] = raw[sizeof(T) - 1 - i];
  } else {
    std::memcpy(out, &v, sizeof(T));
  }
}

void Writer::write_u8(std::uint8_t v) {
  *make_room(1) = v;
  ++size_;
}

void Writer::write_u16(std::uint16_t v) {
  store_le(make_room(2), v);
  size_ += 2;
}

void Writer::write_u32(std::uint32_t v) {
  store_le(make_room(4), v);
  size_ += 4;
}

void Writer::write_u64(std::uint64_t v) {
  store_le(make_room(8), v);
  size_ += 8;
}

void Writer::write_i32(std::int32_t v) {
  write_u32(static_cast<std::uint32_t>(v));
}

void Writer::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void Writer::write_bool(bool v) { write_u8(v ? 1 : 0); }

void Writer::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void Writer::write_string(std::string_view v) {
  check_block_size(v.size());
  write_u32(static_cast<std::uint32_t>(v.size()));
  write_raw(v.data(), v.size());
}

void Writer::write_bytes(std::span<const std::uint8_t> v) {
  check_block_size(v.size());
  write_u32(static_cast<std::uint32_t>(v.size()));
  write_raw(v.data(), v.size());
}

void Writer::write_raw(const void* data, std::size_t size) {
  if (size == 0) return;
  std::memcpy(make_room(size), data, size);
  size_ += size;
}

void Writer::write_fill(std::uint8_t value, std::size_t count) {
  if (count == 0) return;
  std::memset(make_room(count), value, count);
  size_ += count;
}

Buffer Writer::take() {
  Buffer out = Buffer::adopt_shared(std::move(storage_), size_);
  storage_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  return out;
}

}  // namespace mage::serial
