#include "serial/writer.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace mage::serial {
namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buffer, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = sizeof(T); i-- > 0;) buffer.push_back(raw[i]);
  } else {
    buffer.insert(buffer.end(), raw, raw + sizeof(T));
  }
}

void check_block_size(std::size_t size) {
  if (size > std::numeric_limits<std::uint32_t>::max()) {
    throw common::SerializationError(
        "block of " + std::to_string(size) +
        " bytes exceeds the u32 length prefix");
  }
}

}  // namespace

void Writer::write_u8(std::uint8_t v) { buffer_.push_back(v); }
void Writer::write_u16(std::uint16_t v) { append_le(buffer_, v); }
void Writer::write_u32(std::uint32_t v) { append_le(buffer_, v); }
void Writer::write_u64(std::uint64_t v) { append_le(buffer_, v); }
void Writer::write_i32(std::int32_t v) {
  append_le(buffer_, static_cast<std::uint32_t>(v));
}
void Writer::write_i64(std::int64_t v) {
  append_le(buffer_, static_cast<std::uint64_t>(v));
}
void Writer::write_bool(bool v) { write_u8(v ? 1 : 0); }

void Writer::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void Writer::write_string(std::string_view v) {
  check_block_size(v.size());
  write_u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void Writer::write_bytes(std::span<const std::uint8_t> v) {
  check_block_size(v.size());
  write_u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void Writer::write_raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

Buffer Writer::take() {
  Buffer out(std::move(buffer_));
  buffer_.clear();
  return out;
}

}  // namespace mage::serial
