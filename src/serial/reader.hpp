// Byte-oriented serialization reader, mirror of Writer.
//
// All reads are bounds-checked; a truncated or corrupt payload raises
// common::SerializationError rather than reading past the end, so a mangled
// network message can never corrupt a namespace.
//
// Constructed over a serial::Buffer, the reader also offers zero-copy
// accessors: read_view() returns a string_view into the buffer, and
// read_bytes() returns a sub-Buffer sharing the parent's storage — nested
// payloads (invocation args, migrated state) decode without duplicating a
// byte.  View lifetimes are tied to the underlying buffer, which the
// Buffer-constructed reader keeps alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serial/buffer.hpp"

namespace mage::serial {

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  // Keeps a reference on `buffer`, so views returned by read_view() /
  // read_bytes() stay valid for the buffer's lifetime.
  explicit Reader(const Buffer& buffer)
      : bytes_(buffer.span()), owner_(buffer) {}
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data(), bytes.size()) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  bool read_bool();
  double read_f64();
  std::string read_string();
  // Zero-copy mirror of read_string: a view into the underlying bytes.
  std::string_view read_view();
  // Length-prefixed byte block (mirror of Writer::write_bytes).  Zero-copy
  // (a shared slice) when this reader was constructed over a Buffer; a
  // counted deep copy otherwise.
  Buffer read_bytes();
  // The next `size` raw bytes as a view, advancing the cursor.
  std::span<const std::uint8_t> read_span(std::size_t size);
  void read_raw(void* out, std::size_t size);

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  Buffer owner_;  // empty unless constructed from a Buffer
  std::size_t offset_ = 0;
};

}  // namespace mage::serial
