// Byte-oriented serialization reader, mirror of Writer.
//
// All reads are bounds-checked; a truncated or corrupt payload raises
// common::SerializationError rather than reading past the end, so a mangled
// network message can never corrupt a namespace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mage::serial {

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  bool read_bool();
  double read_f64();
  std::string read_string();
  void read_raw(void* out, std::size_t size);

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace mage::serial
