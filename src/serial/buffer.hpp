// Immutable ref-counted byte buffer — the unit payloads travel in.
//
// A Buffer is produced once (Writer::take() hands over its storage with no
// copy) and then flows by reference count through net::Message,
// rmi::Envelope, the transport's retransmission and reply-cache state, and
// CallResult.  Copying a Buffer bumps a refcount; slicing shares the parent's
// storage.  The bytes themselves are never touched again — which is what
// makes a steady-state simulated RMI call free of payload deep-copies.
//
// Storage is a single make_shared<uint8_t[]> block (control block and bytes
// in one allocation), so building a message through a Writer costs exactly
// one allocation.  Adopting a std::vector keeps the vector's storage alive
// via shared_ptr aliasing (no byte copy, but a second control-block
// allocation — fine off the hot path).
//
// Deep copies (Buffer::copy) are the only way bytes are ever duplicated, and
// they are counted: bench builds assert the hot path performs none
// (deep_copy_count/deep_copy_bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

namespace mage::serial {

class Buffer {
 public:
  Buffer() = default;

  // Takes ownership of `bytes` without copying them (shared_ptr aliasing
  // keeps the vector alive).  Implicit: lets call sites keep passing
  // byte-vector rvalues where a Buffer is expected.
  Buffer(std::vector<std::uint8_t>&& bytes) {  // NOLINT(google-explicit-constructor)
    auto vec = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(bytes));
    data_ = vec->data();
    size_ = vec->size();
    owner_ = std::shared_ptr<const std::uint8_t[]>(std::move(vec), data_);
  }

  Buffer(std::initializer_list<std::uint8_t> bytes)
      : Buffer(std::vector<std::uint8_t>(bytes)) {}

  [[nodiscard]] static Buffer adopt(std::vector<std::uint8_t> bytes) {
    return Buffer(std::move(bytes));
  }

  // Takes ownership of a writer-built array block: the single-allocation
  // path (see Writer::take()).
  [[nodiscard]] static Buffer adopt_shared(
      std::shared_ptr<const std::uint8_t[]> storage, std::size_t size) {
    const std::uint8_t* data = storage.get();
    return Buffer(std::move(storage), data, size);
  }

  // Deep copy — the counted slow path.
  [[nodiscard]] static Buffer copy(std::span<const std::uint8_t> bytes);

  // Bumps the deep-copy counters without producing a buffer; gather paths
  // (multi-fragment flatten, cross-fragment reads) account through this.
  static void note_deep_copy(std::size_t bytes);

  // A view of [offset, offset+length) sharing this buffer's storage.
  // Throws SerializationError when the range is out of bounds.
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t length) const;

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data_, size_};
  }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }

  // Byte-wise equality (tests compare payloads).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Buffer& a,
                         const std::vector<std::uint8_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<std::uint8_t>& a, const Buffer& b) {
    return b == a;
  }

  // --- deep-copy accounting (the bench's zero-copy assertion hook) ---------

  [[nodiscard]] static std::uint64_t deep_copy_count();
  [[nodiscard]] static std::uint64_t deep_copy_bytes();
  static void reset_copy_counters();

 private:
  Buffer(std::shared_ptr<const std::uint8_t[]> owner, const std::uint8_t* data,
         std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  std::shared_ptr<const std::uint8_t[]> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace mage::serial
