// Polymorphic factory registry: class name -> default-constructed instance.
//
// This is the C++ analogue of the JVM's loaded-class table.  Deserializing
// an object requires its class to be present here first; the MAGE runtime
// layers a per-node class *cache* on top (src/rts/class_manager) and ships
// class images between nodes, but the executable code itself — the factory
// and method bodies — lives process-wide, just as the paper's MAGE
// "implicitly defines mobile classes globally" by cloning class files.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serial/serializable.hpp"

namespace mage::serial {

class TypeRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Serializable>()>;

  // Registers a factory under `name`.  Re-registration replaces the old
  // factory (convenient for tests); returns false when replacing.
  bool register_type(const std::string& name, Factory factory);

  // Convenience: registers T under T{}.class_name().
  template <typename T>
  bool register_type() {
    static_assert(std::is_base_of_v<Serializable, T>);
    T probe;
    return register_type(probe.class_name(),
                         [] { return std::make_unique<T>(); });
  }

  [[nodiscard]] bool contains(const std::string& name) const;

  // Creates a default instance; throws SerializationError if unknown.
  [[nodiscard]] std::unique_ptr<Serializable> create(
      const std::string& name) const;

  // Full round trip: instantiate `name` and restore its state from `r`.
  [[nodiscard]] std::unique_ptr<Serializable> deserialize_object(
      const std::string& name, Reader& r) const;

  [[nodiscard]] std::vector<std::string> registered_names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace mage::serial
