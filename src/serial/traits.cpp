#include "serial/traits.hpp"

#include "common/error.hpp"

namespace mage::serial::detail {
namespace {

const char* tag_name(WireTag tag) {
  switch (tag) {
    case WireTag::Bool:
      return "bool";
    case WireTag::I32:
      return "i32";
    case WireTag::U32:
      return "u32";
    case WireTag::I64:
      return "i64";
    case WireTag::U64:
      return "u64";
    case WireTag::F64:
      return "f64";
    case WireTag::Str:
      return "string";
    case WireTag::Vec:
      return "vector";
    case WireTag::Pair:
      return "pair";
    case WireTag::Opt:
      return "optional";
    case WireTag::Map:
      return "map";
    case WireTag::Unit:
      return "unit";
  }
  return "?";
}

}  // namespace

void expect_tag(Reader& r, WireTag expected) {
  const auto raw = r.read_u8();
  if (raw != static_cast<std::uint8_t>(expected)) {
    throw common::SerializationError(
        std::string("wire type mismatch: expected ") + tag_name(expected) +
        ", found tag 0x" + std::to_string(raw));
  }
}

}  // namespace mage::serial::detail
