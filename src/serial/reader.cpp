#include "serial/reader.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace mage::serial {
namespace {

template <typename T>
T read_le(std::span<const std::uint8_t> bytes, std::size_t offset) {
  T v;
  if constexpr (std::endian::native == std::endian::big) {
    std::uint8_t raw[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = bytes[offset + sizeof(T) - 1 - i];
    }
    std::memcpy(&v, raw, sizeof(T));
  } else {
    std::memcpy(&v, bytes.data() + offset, sizeof(T));
  }
  return v;
}

}  // namespace

void Reader::require(std::size_t n) const {
  if (remaining() < n) {
    throw common::SerializationError(
        "truncated payload: need " + std::to_string(n) + " bytes, have " +
        std::to_string(remaining()));
  }
}

std::uint8_t Reader::read_u8() {
  require(1);
  return bytes_[offset_++];
}

std::uint16_t Reader::read_u16() {
  require(2);
  auto v = read_le<std::uint16_t>(bytes_, offset_);
  offset_ += 2;
  return v;
}

std::uint32_t Reader::read_u32() {
  require(4);
  auto v = read_le<std::uint32_t>(bytes_, offset_);
  offset_ += 4;
  return v;
}

std::uint64_t Reader::read_u64() {
  require(8);
  auto v = read_le<std::uint64_t>(bytes_, offset_);
  offset_ += 8;
  return v;
}

std::int32_t Reader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

std::int64_t Reader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

bool Reader::read_bool() { return read_u8() != 0; }

double Reader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::read_string() {
  const std::uint32_t size = read_u32();
  require(size);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + offset_),
                  size);
  offset_ += size;
  return out;
}

std::string_view Reader::read_view() {
  const std::uint32_t size = read_u32();
  require(size);
  std::string_view out(reinterpret_cast<const char*>(bytes_.data() + offset_),
                       size);
  offset_ += size;
  return out;
}

Buffer Reader::read_bytes() {
  const std::uint32_t size = read_u32();
  require(size);
  Buffer out;
  if (size > 0) {
    if (!owner_.empty()) {
      out = owner_.slice(offset_, size);
    } else {
      out = Buffer::copy(bytes_.subspan(offset_, size));
    }
  }
  offset_ += size;
  return out;
}

std::span<const std::uint8_t> Reader::read_span(std::size_t size) {
  require(size);
  auto out = bytes_.subspan(offset_, size);
  offset_ += size;
  return out;
}

void Reader::read_raw(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, bytes_.data() + offset_, size);
  offset_ += size;
}

}  // namespace mage::serial
