// Scatter-gather payload chain: the envelope body as a fragment list.
//
// A BufferChain is an ordered list of ref-counted serial::Buffer fragments
// whose concatenation is the logical byte stream.  It is what lets the rts
// proto layer append an already-serialized payload (InvokeRequest::args, a
// migrating object's state, an InvokeReply result) to a message body by
// refcount instead of re-copying it at encode time:
//
//   ChainWriter w;                      // fields build in a Writer region
//   w.write_string(name);
//   w.append_payload(args);             // u32 prefix + zero-copy fragment
//   BufferChain body = w.take();        // [prefix-fragment, args-fragment]
//
// The logical stream a ChainWriter produces is byte-identical to what a
// plain Writer with write_bytes() would have produced — fragmentation is
// framing, not encoding.  ChainReader reads the logical stream back across
// fragment boundaries; reads that fall inside one fragment (every read, for
// writer-produced chains) are zero-copy, a read straddling a boundary
// gathers through the counted deep-copy path.
//
// Fragment count is capped at kMaxFragments so a chain lives inline (no
// heap node list) and rides in event captures; docs/WIRE_FORMAT.md is the
// byte-level contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "serial/buffer.hpp"
#include "serial/writer.hpp"

namespace mage::serial {

class BufferChain {
 public:
  // Inline fragment capacity.  The wire format allows up to 255 fragments
  // per message; this implementation caps senders at 4 (field prefix +
  // payload + field suffix + slack), which every proto struct fits in.
  static constexpr std::size_t kMaxFragments = 4;

  BufferChain() = default;

  // A single-fragment chain.  Implicit: lets every call site that used to
  // pass a Buffer body keep compiling unchanged.
  BufferChain(Buffer fragment) {  // NOLINT(google-explicit-constructor)
    append(std::move(fragment));
  }
  BufferChain(std::vector<std::uint8_t>&& bytes)  // NOLINT(google-explicit-constructor)
      : BufferChain(Buffer(std::move(bytes))) {}

  // Fragments live in raw inline storage, placement-constructed on append
  // (a fixed-capacity small-vector).  A chain is constructed, moved, and
  // destroyed roughly ten times per message on its way through envelope ->
  // wire message -> event capture -> handler, so every special member must
  // cost O(active fragments) — usually one — not O(kMaxFragments):
  // default-initializing four Buffer slots per construction measurably
  // throttled the RMI storm when this type was introduced.
  BufferChain(const BufferChain& other) { assign_from(other); }
  BufferChain& operator=(const BufferChain& other) {
    if (this != &other) {
      clear();
      assign_from(other);
    }
    return *this;
  }
  BufferChain(BufferChain&& other) noexcept { steal(other); }
  BufferChain& operator=(BufferChain&& other) noexcept {
    if (this != &other) {
      clear();
      steal(other);
    }
    return *this;
  }
  ~BufferChain() { clear(); }

  // Appends a fragment (refcount, never a copy).  Empty fragments are legal
  // (the wire carries a zero size).  Throws SerializationError past
  // kMaxFragments.
  void append(Buffer fragment);

  [[nodiscard]] std::size_t fragments() const { return count_; }
  [[nodiscard]] const Buffer& fragment(std::size_t i) const {
    return *slot(i);
  }

  // Logical byte count (sum of fragment sizes).
  [[nodiscard]] std::size_t size() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  // The logical stream as one contiguous Buffer.  Free for 0- and
  // 1-fragment chains (shares storage); a counted deep-copy gather
  // otherwise — test/tool convenience, not the hot path.
  [[nodiscard]] Buffer flatten() const;

  // Appends the logical stream to `w` (the gather half of batch framing:
  // a pre-reserved Writer takes many chains with one allocation total).
  void write_to(Writer& w) const;

  // Byte-wise equality over the logical stream (tests compare payloads).
  friend bool operator==(const BufferChain& a, const BufferChain& b);
  friend bool operator==(const BufferChain& a, const Buffer& b);
  friend bool operator==(const Buffer& a, const BufferChain& b) {
    return b == a;
  }
  friend bool operator==(const BufferChain& a,
                         const std::vector<std::uint8_t>& b);
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const BufferChain& b) {
    return b == a;
  }

 private:
  [[nodiscard]] Buffer* slot(std::size_t i) {
    return std::launder(reinterpret_cast<Buffer*>(storage_) + i);
  }
  [[nodiscard]] const Buffer* slot(std::size_t i) const {
    return std::launder(reinterpret_cast<const Buffer*>(storage_) + i);
  }

  void clear() noexcept {
    for (std::uint8_t i = 0; i < count_; ++i) slot(i)->~Buffer();
    count_ = 0;
    total_ = 0;
  }

  void steal(BufferChain& other) noexcept {
    count_ = other.count_;
    total_ = other.total_;
    for (std::uint8_t i = 0; i < count_; ++i) {
      ::new (static_cast<void*>(slot(i))) Buffer(std::move(*other.slot(i)));
      other.slot(i)->~Buffer();
    }
    other.count_ = 0;
    other.total_ = 0;
  }

  void assign_from(const BufferChain& other) {
    count_ = other.count_;
    total_ = other.total_;
    for (std::uint8_t i = 0; i < count_; ++i) {
      ::new (static_cast<void*>(slot(i))) Buffer(*other.slot(i));
    }
  }

  alignas(Buffer) unsigned char storage_[kMaxFragments * sizeof(Buffer)];
  std::uint8_t count_ = 0;
  std::size_t total_ = 0;
};

// Writer for scatter-gather bodies: primitives accumulate in a Writer
// region; append_payload() closes the region as a fragment and splices the
// payload in by refcount.  take() yields the chain.
class ChainWriter {
 public:
  ChainWriter() = default;
  explicit ChainWriter(std::size_t reserve_bytes) : writer_(reserve_bytes) {}

  void write_u8(std::uint8_t v) { writer_.write_u8(v); }
  void write_u16(std::uint16_t v) { writer_.write_u16(v); }
  void write_u32(std::uint32_t v) { writer_.write_u32(v); }
  void write_u64(std::uint64_t v) { writer_.write_u64(v); }
  void write_i32(std::int32_t v) { writer_.write_i32(v); }
  void write_i64(std::int64_t v) { writer_.write_i64(v); }
  void write_bool(bool v) { writer_.write_bool(v); }
  void write_f64(double v) { writer_.write_f64(v); }
  void write_string(std::string_view v) { writer_.write_string(v); }
  void write_bytes(std::span<const std::uint8_t> v) { writer_.write_bytes(v); }
  void write_raw(const void* data, std::size_t size) {
    writer_.write_raw(data, size);
  }
  void write_fill(std::uint8_t value, std::size_t count) {
    writer_.write_fill(value, count);
  }

  // Writes the u32 length prefix inline, then splices `payload` in as its
  // own fragment — the zero-copy equivalent of write_bytes(payload.span()).
  // An empty payload degenerates to the bare prefix (no fragment spent).
  void append_payload(const Buffer& payload);

  [[nodiscard]] BufferChain take();

 private:
  // Closes the current writer region as a fragment, if non-empty.
  void seal();

  Writer writer_;
  BufferChain chain_;
};

// Bounds-checked reader over a BufferChain's logical stream, mirror of
// ChainWriter (and byte-compatible with Writer/Reader).  read_bytes() is a
// zero-copy sub-slice whenever the block lies within one fragment — always
// true for chains a ChainWriter produced, since append_payload aligns
// fragment boundaries with block boundaries.
class ChainReader {
 public:
  // Both constructors retain the fragments (refcounts), so sub-slices
  // returned by read_bytes() outlive the reader.
  explicit ChainReader(BufferChain chain)
      : chain_(std::move(chain)), remaining_(chain_.size()) {}
  explicit ChainReader(const Buffer& buffer)
      : chain_(buffer), remaining_(buffer.size()) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  bool read_bool();
  double read_f64();
  std::string read_string();
  // Length-prefixed byte block: zero-copy slice when contiguous, counted
  // gather otherwise.
  Buffer read_bytes();
  void read_raw(void* out, std::size_t size);
  // Advances past `size` bytes without materialising them (bounds-checked
  // up front, so a wire-declared size is validated before anything is
  // allocated).
  void skip(std::size_t size);

  [[nodiscard]] std::size_t remaining() const { return remaining_; }
  [[nodiscard]] bool at_end() const { return remaining_ == 0; }

 private:
  void require(std::size_t n) const;
  // Positions the cursor on a fragment with unread bytes (skips exhausted
  // and empty fragments).  Only valid when remaining_ > 0.
  void normalize();
  // Unread bytes left in the current fragment after normalize().
  [[nodiscard]] std::size_t fragment_remaining() const {
    return chain_.fragment(frag_).size() - offset_;
  }
  template <typename T>
  T read_le();
  // Cross-fragment block read through the counted deep-copy path.
  Buffer gather(std::size_t size);

  BufferChain chain_;
  std::size_t frag_ = 0;       // current fragment index
  std::size_t offset_ = 0;     // read offset within the current fragment
  std::size_t remaining_ = 0;  // logical bytes left
};

}  // namespace mage::serial
